"""Figure 5: response time and memory as the requested k grows.

Panels (a,b) X1/X2 on Doc2, (c,d) M1/M2 on Doc5, (e,f) D1/D2 on Doc6,
with k in {10, 20, 30, 40}.  The paper's shape: both algorithms grow
with k, PrStack barely (it always scans everything once) while
EagerTopK's advantage narrows — a sharp EagerTopK increase appears once
k exceeds the number of clearly-separated high-probability answers.
"""

import pytest

from repro.bench.runner import run_query
from repro.core.api import topk_search
from repro.datagen import query_keywords

K_VALUES = (10, 20, 30, 40)
PANELS = [
    ("doc2", "Figure 5(a,b) - XMark Doc2", ("X1", "X2")),
    ("doc5", "Figure 5(c,d) - Mondial Doc5", ("M1", "M2")),
    ("doc6", "Figure 5(e,f) - DBLP Doc6", ("D1", "D2")),
]
CELLS = [
    (doc, section, query_id, k, algorithm)
    for doc, section, queries in PANELS
    for query_id in queries
    for k in K_VALUES
    for algorithm in ("prstack", "eager")
]


@pytest.mark.parametrize(
    "doc,section,query_id,k,algorithm", CELLS,
    ids=[f"{doc}-{query_id}-k{k}-{algorithm}"
         for doc, _, query_id, k, algorithm in CELLS])
def test_fig5_cell(benchmark, dataset, report, doc, section, query_id,
                   k, algorithm):
    database = dataset(doc)
    keywords = query_keywords(query_id)

    benchmark.pedantic(topk_search, args=(database, keywords, k,
                                          algorithm),
                       rounds=3, iterations=1)
    measurement = run_query(database, keywords, k, algorithm, repeats=1)

    assert measurement.result_count <= k
    report.add_row(
        section,
        ["query", "k", "algorithm", "time_ms", "memory_mb", "results"],
        [query_id, f"{k:02d}", algorithm,
         f"{measurement.response_time_ms:9.2f}",
         f"{measurement.peak_memory_mb:7.3f}",
         measurement.result_count])
