"""Table III: the experiment's keyword queries.

Reports the query table and micro-benchmarks query normalisation (the
only per-query preprocessing both algorithms share).
"""

from repro.datagen import QUERIES
from repro.index.tokenizer import normalize_query


def test_table3_queries(benchmark, report):
    def normalise_all():
        return [normalize_query(keywords)
                for keywords in QUERIES.values()]

    terms = benchmark(normalise_all)
    assert len(terms) == 15
    for (query_id, keywords), normalised in zip(QUERIES.items(), terms):
        report.add_row(
            "Table III - keyword queries",
            ["id", "keywords", "terms"],
            [query_id, ", ".join(keywords), " ".join(normalised)])
