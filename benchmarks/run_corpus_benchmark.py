#!/usr/bin/env python3
"""Record the corpus scatter-gather benchmark as ``BENCH_corpus.json``.

Generates many distinct DBLP-style p-documents, shards them into a
corpus, and measures the bound-driven scatter-gather search against
single-document brute force over the concatenated corpus: wall-time
speedup, per-shard prune/skip rates, and bit-identity of every
answer list (serial, thread, and process executors).

Run:  python benchmarks/run_corpus_benchmark.py [--quick]
"""

import argparse
import json
import os
import sys
import tempfile

from repro.bench.corpus import run_corpus_benchmark
from repro.datagen.dblp import generate_dblp
from repro.datagen.probabilistic import make_probabilistic

_DEFAULT_OUTPUT = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "BENCH_corpus.json")


def _make_documents(count: int, publications: int, seed: int):
    documents = []
    for position in range(count):
        doc_seed = seed + 101 * position
        plain = generate_dblp(publications=publications, seed=doc_seed)
        documents.append((f"dblp-{position:02d}",
                          make_probabilistic(plain, seed=doc_seed)))
    return documents


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--documents", type=int, default=12,
                        help="distinct p-documents (default 12)")
    parser.add_argument("--publications", type=int, default=400,
                        help="DBLP records per document (default 400)")
    parser.add_argument("--shards", type=int, default=4,
                        help="corpus shard count (default 4)")
    parser.add_argument("--strategy", default="hash",
                        choices=("hash", "size"))
    parser.add_argument("--queries", type=int, default=10,
                        help="distinct sampled queries (default 10)")
    parser.add_argument("-k", type=int, default=5)
    parser.add_argument("--workers", type=int, default=4,
                        help="thread fan-out width (default 4)")
    parser.add_argument("--seed", type=int, default=673)
    parser.add_argument("--quick", action="store_true",
                        help="small workload for smoke runs: 6 "
                             "documents x 120 records, 3 shards, "
                             "6 queries")
    parser.add_argument("-o", "--output", default=_DEFAULT_OUTPUT)
    options = parser.parse_args(argv)

    if options.quick:
        options.documents, options.publications = 6, 120
        options.shards, options.queries = 3, 6

    documents = _make_documents(options.documents,
                                options.publications, options.seed)
    with tempfile.TemporaryDirectory(prefix="repro-bench-corpus-") \
            as directory:
        report = run_corpus_benchmark(
            documents, directory, shards=options.shards,
            strategy=options.strategy,
            distinct_queries=options.queries, k=options.k,
            workers=options.workers, seed=options.seed)

    with open(options.output, "w", encoding="utf-8") as sink:
        json.dump(report, sink, indent=2)
        sink.write("\n")

    corpus = report["corpus"]
    print(f"corpus: {corpus['documents']} documents, "
          f"{corpus['nodes']} nodes, {corpus['shards']} shards "
          f"({corpus['strategy']}), built in {corpus['build_ms']} ms")
    print(f"baseline brute force: {report['baseline']['total_ms']} ms "
          f"over {report['workload']['distinct_queries']} queries")
    for name, phase in report["executors"].items():
        print(f"{name}: {phase['total_ms']} ms "
              f"(speedup vs baseline {phase['speedup_vs_baseline']}x), "
              f"{phase['shards_searched']} searched / "
              f"{phase['shards_pruned']} pruned / "
              f"{phase['shards_no_match']} no-match "
              f"of {phase['shard_visits']} shard visits "
              f"(prune rate {phase['prune_rate']})")
    print(f"scatter-gather speedup (serial/thread): "
          f"{report['scatter_gather_speedup']}x")
    print(f"identical_results={report['identical_results']} "
          f"prunes_fired={report['prunes_fired']}")
    print(f"report written to {options.output}")
    ok = report["identical_results"] and report["prunes_fired"]
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
