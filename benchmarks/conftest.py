"""Shared infrastructure for the benchmark suite.

* ``dataset`` — session-cached access to the Table II datasets (built
  deterministically on first use; doc1-doc6).
* ``report`` — a collector; every benchmark contributes one row to the
  figure panel it reproduces, and the whole report is printed in the
  terminal summary so the paper-vs-measured comparison can be read
  straight off a ``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

import gc
from typing import Dict, List

import pytest

from repro.bench.tables import format_table
from repro.datagen import make_dataset
from repro.index.storage import Database

_DATASET_CACHE: Dict[str, Database] = {}


@pytest.fixture(scope="session")
def dataset():
    """Factory fixture: ``dataset("doc2")`` -> cached Database.

    Built datasets are ``gc.freeze()``-d: their object graphs are
    permanent for the session, and keeping millions of document nodes
    out of the collector prevents full-GC pauses from landing inside
    whichever query benchmark happens to allocate next.
    """
    def get(name: str) -> Database:
        if name not in _DATASET_CACHE:
            _DATASET_CACHE[name] = make_dataset(name)
            gc.collect()
            gc.freeze()
        return _DATASET_CACHE[name]
    return get


@pytest.fixture(scope="session")
def dataset_cache() -> Dict[str, Database]:
    """Direct access to the session cache (the Table II benchmark seeds
    it with the databases it just built)."""
    return _DATASET_CACHE


class ReportCollector:
    """Accumulates (section -> header + rows) across benchmark tests."""

    def __init__(self):
        self.sections: Dict[str, Dict] = {}

    def add_row(self, section: str, header: List[str],
                row: List[object]) -> None:
        entry = self.sections.setdefault(section,
                                         {"header": header, "rows": []})
        entry["rows"].append([str(cell) for cell in row])

    def render(self) -> str:
        blocks = []
        for section in sorted(self.sections):
            entry = self.sections[section]
            blocks.append(format_table(section, entry["header"],
                                       sorted(entry["rows"])))
        return "\n\n".join(blocks)


_COLLECTOR = ReportCollector()


@pytest.fixture(scope="session")
def report() -> ReportCollector:
    return _COLLECTOR


def pytest_terminal_summary(terminalreporter):
    if not _COLLECTOR.sections:
        return
    terminalreporter.write_sep("=", "reproduction report (paper Section V)")
    terminalreporter.write_line(_COLLECTOR.render())
