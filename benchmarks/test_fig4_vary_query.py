"""Figure 4: response time and memory per query, k = 10.

Panels (a,b) run X1-X5 on Doc2, (c,d) M1-M5 on Doc5, (e,f) D1-D5 on
Doc6 — one benchmark per (query, algorithm) cell.  The terminal report
prints each panel as a series table; the paper's shape to verify is
EagerTopK at least ~50% faster than PrStack on most queries (up to >5x
when matches are plentiful but results few), at slightly higher memory.
"""

import pytest

from repro.bench.runner import run_query
from repro.core.api import topk_search
from repro.datagen import query_keywords, queries_for_dataset

K = 10
PANELS = [
    ("doc2", "xmark", "Figure 4(a,b) - XMark Doc2"),
    ("doc5", "mondial", "Figure 4(c,d) - Mondial Doc5"),
    ("doc6", "dblp", "Figure 4(e,f) - DBLP Doc6"),
]
CELLS = [
    (doc, family, section, query_id, algorithm)
    for doc, family, section in PANELS
    for query_id in queries_for_dataset(family)
    for algorithm in ("prstack", "eager")
]


@pytest.mark.parametrize(
    "doc,family,section,query_id,algorithm", CELLS,
    ids=[f"{doc}-{query_id}-{algorithm}"
         for doc, _, _, query_id, algorithm in CELLS])
def test_fig4_cell(benchmark, dataset, report, doc, family, section,
                   query_id, algorithm):
    database = dataset(doc)
    keywords = query_keywords(query_id)

    benchmark.pedantic(topk_search, args=(database, keywords, K,
                                          algorithm),
                       rounds=3, iterations=1)
    measurement = run_query(database, keywords, K, algorithm, repeats=1)

    assert measurement.result_count <= K
    report.add_row(
        section,
        ["query", "algorithm", "time_ms", "memory_mb", "results",
         "matches"],
        [query_id, algorithm, f"{measurement.response_time_ms:9.2f}",
         f"{measurement.peak_memory_mb:7.3f}", measurement.result_count,
         measurement.stats.get("match_entries", "-")])
