#!/usr/bin/env python3
"""Record the batched-serving benchmark as ``BENCH_batch.json``.

Compares one cold :class:`repro.service.QueryService` batch against
the naive per-query ``topk_search`` loop on a shared-keyword workload
(sampled distinct queries, repeated and shuffled), verifies the
batched answers are exactly the naive answers (and that sanitized
replays match uncached sanitized searches), and writes the JSON
report next to the repository root.

Run:  python benchmarks/run_batch_benchmark.py [--quick]
"""

import argparse
import json
import os
import sys

from repro.bench.batch import run_batch_benchmark
from repro.datagen import make_dataset

_DEFAULT_OUTPUT = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "BENCH_batch.json")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="doc1",
                        help="Table II dataset name (default doc1)")
    parser.add_argument("--queries", type=int, default=15,
                        help="distinct sampled queries (default 15)")
    parser.add_argument("--repetitions", type=int, default=4,
                        help="repetitions per query (default 4)")
    parser.add_argument("-k", type=int, default=10)
    parser.add_argument("--workers", type=int, default=4,
                        help="also measure a thread fan-out this wide "
                             "(0 disables; default 4)")
    parser.add_argument("--quick", action="store_true",
                        help="small workload for smoke runs: 6 "
                             "distinct queries x 3 repetitions, no "
                             "thread pass")
    parser.add_argument("-o", "--output", default=_DEFAULT_OUTPUT)
    options = parser.parse_args(argv)

    if options.quick:
        options.queries, options.repetitions, options.workers = 6, 3, 0

    database = make_dataset(options.dataset)
    report = run_batch_benchmark(
        database, distinct_queries=options.queries,
        repetitions=options.repetitions, k=options.k,
        workers=options.workers or None)
    report["dataset"] = options.dataset

    with open(options.output, "w", encoding="utf-8") as sink:
        json.dump(report, sink, indent=2)
        sink.write("\n")

    workload = report["workload"]
    print(f"{workload['queries']} queries "
          f"({workload['distinct_queries']} distinct) on "
          f"{options.dataset}: naive {report['naive_ms']:.1f} ms, "
          f"batch {report['batch_ms']:.1f} ms "
          f"-> {report['speedup']}x")
    if "threads" in report:
        threads = report["threads"]
        print(f"thread x{threads['workers']}: "
              f"{threads['batch_ms']:.1f} ms "
              f"-> {threads['speedup']}x")
    print(f"identical_results={report['identical_results']} "
          f"sanitize_identical={report['sanitize_identical']}")
    print(f"report written to {options.output}")
    ok = report["identical_results"] and report["sanitize_identical"]
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
