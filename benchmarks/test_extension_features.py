"""Benchmarks for the extension features (DESIGN.md E1-E4).

Not paper figures — these keep the extensions honest: EXP documents
must not blow up the core algorithms, ELCA must cost about as much as
SLCA (same single scan), the threshold variant must track PrStack, and
the Monte-Carlo estimator's cost must scale with the sample count.
"""

import random

import pytest

from repro.bench.runner import measure_callable
from repro.core.monte_carlo import monte_carlo_search
from repro.core.prstack import prstack_search
from repro.core.threshold import threshold_search
from repro.datagen import generate_mondial, make_probabilistic
from repro.index.storage import Database

_CACHE = {}


def exp_database() -> Database:
    """Mondial with a third of injected nodes being EXP."""
    if "db" not in _CACHE:
        document = make_probabilistic(
            generate_mondial(), mux_fraction=0.34, exp_fraction=0.33,
            seed=673)
        _CACHE["db"] = Database.from_document(document)
    return _CACHE["db"]


KEYWORDS = ["united", "states", "organization"]


@pytest.mark.parametrize("variant", ["slca", "elca"])
def test_semantics_cost(benchmark, report, variant):
    database = exp_database()

    def search():
        return prstack_search(database.index, KEYWORDS, 10,
                              elca=variant == "elca")

    benchmark.pedantic(search, rounds=3, iterations=1)
    measurement = measure_callable(search, repeats=1)
    report.add_row(
        "Extensions - semantics and variants (Mondial with EXP nodes)",
        ["feature", "time_ms", "results"],
        [f"prstack-{variant}", f"{measurement.response_time_ms:9.2f}",
         measurement.result_count])


def test_threshold_cost(benchmark, report):
    database = exp_database()

    def search():
        return threshold_search(database.index, KEYWORDS, 0.05)

    benchmark.pedantic(search, rounds=3, iterations=1)
    measurement = measure_callable(search, repeats=1)
    report.add_row(
        "Extensions - semantics and variants (Mondial with EXP nodes)",
        ["feature", "time_ms", "results"],
        ["threshold-0.05", f"{measurement.response_time_ms:9.2f}",
         measurement.result_count])


@pytest.mark.parametrize("samples", [25, 100])
def test_monte_carlo_cost(benchmark, report, samples):
    database = exp_database()

    def search():
        return monte_carlo_search(database.index, KEYWORDS, 10,
                                  samples=samples,
                                  rng=random.Random(673))

    measurement = benchmark.pedantic(
        lambda: measure_callable(search, repeats=1),
        rounds=1, iterations=1)
    report.add_row(
        "Extensions - semantics and variants (Mondial with EXP nodes)",
        ["feature", "time_ms", "results"],
        [f"monte-carlo-{samples}",
         f"{measurement.response_time_ms:9.2f}",
         measurement.result_count])
