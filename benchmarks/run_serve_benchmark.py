#!/usr/bin/env python3
"""Record the HTTP serving benchmark as ``BENCH_serve.json``.

Starts a real :class:`repro.serve.ServeServer` on an ephemeral port,
drives it with concurrent keep-alive clients on a shared-keyword
workload, and records sustained QPS plus p50/p99 tail latency; a
second overloaded server (``max_inflight=1`` + an injected
``slow_query`` fault) must shed the burst with 429s and stay healthy.
Served answers are verified bit-identical to in-process
``topk_search``.

Run:  python benchmarks/run_serve_benchmark.py [--quick]
"""

import argparse
import json
import os
import sys

from repro.bench.serve import run_serve_benchmark
from repro.datagen import make_dataset

_DEFAULT_OUTPUT = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "BENCH_serve.json")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="doc1",
                        help="Table II dataset name (default doc1)")
    parser.add_argument("--queries", type=int, default=10,
                        help="distinct sampled queries (default 10)")
    parser.add_argument("--requests", type=int, default=30,
                        help="requests per client thread (default 30)")
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent client threads (default 4)")
    parser.add_argument("-k", type=int, default=10)
    parser.add_argument("--quick", action="store_true",
                        help="small workload for smoke runs: 5 "
                             "distinct queries, 2 clients x 8 "
                             "requests")
    parser.add_argument("-o", "--output", default=_DEFAULT_OUTPUT)
    options = parser.parse_args(argv)

    if options.quick:
        options.queries, options.clients, options.requests = 5, 2, 8

    database = make_dataset(options.dataset)
    report = run_serve_benchmark(
        database, distinct_queries=options.queries,
        requests_per_client=options.requests,
        clients=options.clients, k=options.k)
    report["dataset"] = options.dataset

    with open(options.output, "w", encoding="utf-8") as sink:
        json.dump(report, sink, indent=2)
        sink.write("\n")

    sustained = report["sustained"]
    latency = sustained["latency_ms"]
    overload = report["overload"]
    print(f"{sustained['requests']} requests on {options.dataset} "
          f"({report['workload']['clients']} clients): "
          f"{sustained['qps']} qps, p50 {latency['p50']} ms, "
          f"p99 {latency['p99']} ms, {sustained['errors']} errors")
    print(f"overload (cap 1, {overload['clients']} clients): "
          f"{overload['accepted_200']}x200 "
          f"{overload['rejected_429']}x429, "
          f"healthy_after={overload['healthy_after']}")
    print(f"identical_results={report['identical_results']}")
    print(f"report written to {options.output}")
    ok = (report["identical_results"] and not sustained["errors"]
          and sustained["server_exit"] == 0
          and overload["server_exit"] == 0
          and overload["healthy_after"]
          and not overload["other_statuses"]
          and overload["rejected_429"] > 0)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
