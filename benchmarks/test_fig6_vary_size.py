"""Figure 6: scalability in document size (XMark x1/x2/x4/x8), k = 10.

The paper's shape: both algorithms grow linearly with document size;
EagerTopK grows distinctly slower, so the gap widens with scale.
"""

import pytest

from repro.bench.runner import run_query
from repro.core.api import topk_search
from repro.datagen import query_keywords

K = 10
SIZES = [("doc1", 1), ("doc2", 2), ("doc3", 4), ("doc4", 8)]
CELLS = [
    (doc, scale, query_id, algorithm)
    for doc, scale in SIZES
    for query_id in ("X1", "X2")
    for algorithm in ("prstack", "eager")
]


@pytest.mark.parametrize(
    "doc,scale,query_id,algorithm", CELLS,
    ids=[f"{doc}-x{scale}-{query_id}-{algorithm}"
         for doc, scale, query_id, algorithm in CELLS])
def test_fig6_cell(benchmark, dataset, report, doc, scale, query_id,
                   algorithm):
    database = dataset(doc)
    keywords = query_keywords(query_id)

    benchmark.pedantic(topk_search, args=(database, keywords, K,
                                          algorithm),
                       rounds=3, iterations=1)
    measurement = run_query(database, keywords, K, algorithm, repeats=1)

    report.add_row(
        "Figure 6(a,b) - XMark size scaling",
        ["query", "scale", "algorithm", "time_ms", "memory_mb",
         "nodes"],
        [query_id, f"x{scale}", algorithm,
         f"{measurement.response_time_ms:9.2f}",
         f"{measurement.peak_memory_mb:7.3f}",
         len(database.document)])
