"""Batched serving vs. the naive loop (the docs/SERVICE.md claim).

A shared-keyword workload (sampled distinct queries repeated and
shuffled) must run at least twice as fast through one cold
:class:`repro.service.QueryService` batch as through fresh per-query
``topk_search`` calls — and the batched answers must be exactly the
naive answers, with sanitized replays matching uncached sanitized
searches.  The standalone ``run_batch_benchmark.py`` records the same
measurement as ``BENCH_batch.json``.
"""

import pytest

from repro.bench.batch import run_batch_benchmark


@pytest.mark.parametrize("workers", [None, 4],
                         ids=["serial", "threads-4"])
def test_batch_beats_naive_loop(benchmark, dataset, report, workers):
    database = dataset("doc1")

    def run():
        return run_batch_benchmark(database, distinct_queries=15,
                                   repetitions=4, k=10,
                                   workers=workers)

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    assert measured["identical_results"]
    assert measured["sanitize_identical"]
    assert measured["workload"]["queries"] >= 50
    assert measured["speedup"] >= 2.0, measured
    report.add_row(
        "Batched serving (QueryService vs naive loop, XMark x1)",
        ["mode", "queries", "naive_ms", "batch_ms", "speedup"],
        ["serial" if workers is None else f"threads-{workers}",
         measured["workload"]["queries"],
         f"{measured['naive_ms']:9.1f}",
         f"{measured['batch_ms']:9.1f}",
         f"{measured['speedup']:6.2f}x"])
