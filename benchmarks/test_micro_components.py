"""Micro-benchmarks of the substrate components.

Not a paper figure — these isolate the building blocks (encoding,
index construction, the three deterministic SLCA algorithms) so that a
regression in any layer is visible independently of the end-to-end
numbers.
"""

import pytest

from repro import build_index, encode_document
from repro.datagen import generate_mondial, make_probabilistic
from repro.index.matchlist import build_match_entries, keyword_code_lists
from repro.slca import indexed_lookup_eager, scan_eager, stack_based_slca

_STATE = {}


def prepared():
    if not _STATE:
        document = make_probabilistic(generate_mondial(), seed=673)
        encoded = encode_document(document)
        index = build_index(encoded)
        keywords = ["united states", "organization"]
        _, code_lists = keyword_code_lists(index, keywords)
        _, entries = build_match_entries(index, keywords)
        _STATE.update(document=document, encoded=encoded, index=index,
                      code_lists=code_lists, entries=entries)
    return _STATE


def test_encode_document(benchmark, report):
    state = prepared()
    encoded = benchmark(encode_document, state["document"])
    report.add_row("Micro - substrate components",
                   ["component", "size"],
                   ["encode_document", len(encoded)])


def test_build_inverted_index(benchmark, report):
    state = prepared()
    index = benchmark(build_index, state["encoded"])
    report.add_row("Micro - substrate components",
                   ["component", "size"],
                   ["build_index", len(index)])


@pytest.mark.parametrize("name,algorithm", [
    ("indexed_lookup_eager", indexed_lookup_eager),
    ("scan_eager", scan_eager),
])
def test_deterministic_slca(benchmark, report, name, algorithm):
    state = prepared()
    answers = benchmark(algorithm, state["code_lists"])
    report.add_row("Micro - substrate components",
                   ["component", "size"],
                   [name, len(answers)])


def test_stack_based_slca(benchmark, report):
    state = prepared()
    answers = benchmark(stack_based_slca, state["entries"], 3)
    report.add_row("Micro - substrate components",
                   ["component", "size"],
                   ["stack_based_slca", len(answers)])
