#!/usr/bin/env python3
"""Record the hedged-scatter chaos benchmark as ``BENCH_chaos.json``.

Builds a replicated corpus from distinct DBLP-style p-documents and
measures the replication layer's two availability claims: with every
primary replica straggling, a fixed-trigger hedge collapses the cold
p99 from ``slow_ms`` to roughly ``hedge_ms``; with every primary
replica *dead*, failover answers 100% of queries bit-identical with
zero PARTIAL outcomes.  See ``repro.bench.chaos`` for the pass
design (cold vs steady routers).

Run:  python benchmarks/run_chaos_benchmark.py [--quick]
"""

import argparse
import json
import os
import sys
import tempfile

from repro.bench.chaos import run_chaos_benchmark
from repro.datagen.dblp import generate_dblp
from repro.datagen.probabilistic import make_probabilistic

_DEFAULT_OUTPUT = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "BENCH_chaos.json")


def _make_documents(count: int, publications: int, seed: int):
    documents = []
    for position in range(count):
        doc_seed = seed + 211 * position
        plain = generate_dblp(publications=publications, seed=doc_seed)
        documents.append((f"dblp-{position:02d}",
                          make_probabilistic(plain, seed=doc_seed)))
    return documents


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--documents", type=int, default=9,
                        help="distinct p-documents (default 9)")
    parser.add_argument("--publications", type=int, default=300,
                        help="DBLP records per document (default 300)")
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument("--queries", type=int, default=10,
                        help="distinct sampled queries (default 10)")
    parser.add_argument("-k", type=int, default=5)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--slow-ms", type=float, default=120.0,
                        help="injected primary straggle (default 120)")
    parser.add_argument("--hedge-ms", type=float, default=25.0,
                        help="fixed hedge trigger (default 25)")
    parser.add_argument("--seed", type=int, default=673)
    parser.add_argument("--quick", action="store_true",
                        help="small workload for smoke runs: 6 "
                             "documents x 100 records, 2 shards, "
                             "6 queries")
    parser.add_argument("-o", "--output", default=_DEFAULT_OUTPUT)
    options = parser.parse_args(argv)

    if options.quick:
        options.documents, options.publications = 6, 100
        options.shards, options.queries = 2, 6

    documents = _make_documents(options.documents,
                                options.publications, options.seed)
    with tempfile.TemporaryDirectory(prefix="repro-bench-chaos-") \
            as directory:
        report = run_chaos_benchmark(
            documents, directory, shards=options.shards,
            replicas=options.replicas,
            distinct_queries=options.queries, k=options.k,
            workers=options.workers, slow_ms=options.slow_ms,
            hedge_ms=options.hedge_ms, seed=options.seed)

    with open(options.output, "w", encoding="utf-8") as sink:
        json.dump(report, sink, indent=2)
        sink.write("\n")

    corpus = report["corpus"]
    print(f"corpus: {corpus['documents']} documents, "
          f"{corpus['nodes']} nodes, {corpus['shards']} shards x "
          f"{corpus['replicas']} replicas")
    cold = report["cold_unhedged"]["latency_ms"]
    hedged = report["cold_hedged"]["latency_ms"]
    print(f"cold unhedged: p50={cold['p50']}ms p99={cold['p99']}ms")
    print(f"cold hedged:   p50={hedged['p50']}ms "
          f"p99={hedged['p99']}ms "
          f"(fired={report['cold_hedged']['hedge']['fired']})")
    print(f"p99 speedup (unhedged/hedged): {report['p99_speedup']}x")
    steady = report["steady_hedged"]
    print(f"steady hedged: p50={steady['latency_ms']['p50']}ms, "
          f"hedges {steady['hedge']['fired']}/"
          f"{steady['hedge']['worst_case']} "
          f"(fire rate {steady['hedge']['fire_rate']}; routing "
          f"learned)")
    loss = report["replica_loss"]
    print(f"replica loss: {loss['answered']}/{loss['queries']} "
          f"answered, {loss['partial']} partial, "
          f"{loss['failovers']} failovers "
          f"(available={loss['available']})")
    print(f"identical_results={report['identical_results']} "
          f"ok={report['ok']}")
    print(f"report written to {options.output}")
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
