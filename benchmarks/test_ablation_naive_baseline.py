"""Ablation: the naive possible-world baseline (Section II's strawman).

The paper argues enumeration is "time-consuming or even infeasible";
this benchmark quantifies it: on documents with a growing number of
distributional nodes, the naive algorithm's cost explodes with the
world count while PrStack stays flat.
"""

import pytest

from repro import DocumentBuilder
from repro.bench.runner import run_query
from repro.index.storage import Database

# 4**n raw worlds: 16, 256, 4096 — enumeration cost multiplies by ~16
# per step (2.4 s already at n=6) while the direct algorithms stay
# flat at a few milliseconds.
DIST_NODE_COUNTS = (2, 4, 6)


def build_document(dist_nodes: int) -> Database:
    """A chain of independent optional (k1, k2) pairs: every IND node
    doubles the raw world count twice over."""
    builder = DocumentBuilder("root")
    for index in range(dist_nodes):
        with builder.element(f"section{index}"):
            with builder.ind():
                builder.leaf("a", text="k1", prob=0.6)
                builder.leaf("b", text="k2", prob=0.7)
    return Database.from_document(builder.build())


@pytest.mark.parametrize("dist_nodes", DIST_NODE_COUNTS)
@pytest.mark.parametrize("algorithm", ["possible_worlds", "prstack",
                                       "eager"])
def test_naive_baseline_blowup(benchmark, report, dist_nodes, algorithm):
    database = build_document(dist_nodes)
    worlds = database.document.theoretical_world_count()

    measurement = benchmark.pedantic(
        run_query, args=(database, ["k1", "k2"], 10, algorithm),
        kwargs={"repeats": 1}, rounds=1, iterations=1)

    report.add_row(
        "Ablation - naive possible-world baseline",
        ["dist_nodes", "raw_worlds", "algorithm", "time_ms"],
        [f"{dist_nodes:02d}", worlds, algorithm,
         f"{measurement.response_time_ms:10.3f}"])
