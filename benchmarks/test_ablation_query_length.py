"""Ablation: sensitivity to the number of query keywords.

Table III queries have 2-4 terms; this sweep runs 1-4 term prefixes of
an XMark query to expose how the ``2**|Q|`` distribution-table width
and the shrinking seed count interact.  Expected shape: PrStack's cost
grows mildly with terms (larger tables, more matches); EagerTopK
benefits from rarer full co-occurrence (fewer seeds to evaluate).
"""

import pytest

from repro.bench.runner import run_query

# Prefixes of an X2-style query: united, states, credit, ship.
TERM_SETS = [
    ("1-term", ["united"]),
    ("2-term", ["united", "states"]),
    ("3-term", ["united", "states", "credit"]),
    ("4-term", ["united", "states", "credit", "ship"]),
]


@pytest.mark.parametrize("label,keywords", TERM_SETS,
                         ids=[label for label, _ in TERM_SETS])
@pytest.mark.parametrize("algorithm", ["prstack", "eager"])
def test_query_length_sweep(benchmark, dataset, report, label, keywords,
                            algorithm):
    database = dataset("doc2")

    measurement = benchmark.pedantic(
        run_query, args=(database, keywords, 10, algorithm),
        kwargs={"repeats": 1}, rounds=2, iterations=1)

    report.add_row(
        "Ablation - query length (XMark doc2)",
        ["terms", "algorithm", "time_ms", "matches", "results"],
        [label, algorithm, f"{measurement.response_time_ms:9.2f}",
         measurement.stats.get("match_entries", "-"),
         measurement.result_count])
