#!/usr/bin/env python3
"""Regenerate every table and figure of Section V as one text report.

This is the standalone companion to the pytest benchmark suite: it
builds the Table II datasets, runs all Figure 4/5/6 measurements, and
prints paper-style series tables (the numbers recorded in
EXPERIMENTS.md come from this script).

Run:  python benchmarks/run_experiments.py [--quick]

``--quick`` restricts the run to the smaller datasets (doc1, doc2,
doc5) and two k values, finishing in well under a minute.
"""

import argparse
import sys
import time

from repro.bench.experiments import (table2_rows, table3_rows, vary_k,
                                     vary_query, vary_size)
from repro.bench.tables import format_table
from repro.datagen import DATASET_SPECS, make_dataset, queries_for_dataset


def banner(text: str) -> None:
    print(f"\n{text}")
    print("=" * len(text))


def measurement_rows(per_query):
    rows = []
    for query_id, by_algorithm in per_query.items():
        for algorithm, measurement in by_algorithm.items():
            rows.append([query_id, algorithm,
                         f"{measurement.response_time_ms:.2f}",
                         f"{measurement.peak_memory_mb:.3f}",
                         measurement.result_count])
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small datasets and fewer k values")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions per cell (default 3)")
    options = parser.parse_args(argv)

    names = (["doc1", "doc2", "doc5"] if options.quick
             else list(DATASET_SPECS))
    k_values = (10, 20) if options.quick else (10, 20, 30, 40)

    started = time.perf_counter()
    print("building datasets:", ", ".join(names))
    databases = {name: make_dataset(name) for name in names}

    banner("Table II - dataset properties")
    print(format_table(
        "", ["dataset", "total", "#IND", "#MUX", "#Ordinary"],
        table2_rows(databases)))

    banner("Table III - keyword queries")
    print(format_table("", ["id", "keywords"], table3_rows()))

    figure4_panels = {
        "doc2": "Figure 4(a,b) XMark",
        "doc5": "Figure 4(c,d) Mondial",
        "doc6": "Figure 4(e,f) DBLP",
    }
    for name, title in figure4_panels.items():
        if name not in databases:
            continue
        family = DATASET_SPECS[name].family
        banner(f"{title} - time/memory per query, k=10")
        data = vary_query(databases[name], queries_for_dataset(family),
                          k=10, repeats=options.repeats)
        print(format_table(
            "", ["query", "algorithm", "time_ms", "memory_mb",
                 "results"],
            measurement_rows(data)))

    figure5_panels = {
        "doc2": ("Figure 5(a,b) XMark", ("X1", "X2")),
        "doc5": ("Figure 5(c,d) Mondial", ("M1", "M2")),
        "doc6": ("Figure 5(e,f) DBLP", ("D1", "D2")),
    }
    for name, (title, query_ids) in figure5_panels.items():
        if name not in databases:
            continue
        banner(f"{title} - time/memory vs k")
        data = vary_k(databases[name], query_ids, k_values,
                      repeats=options.repeats)
        rows = []
        for query_id, by_k in data.items():
            for k, by_algorithm in by_k.items():
                for algorithm, measurement in by_algorithm.items():
                    rows.append([query_id, k, algorithm,
                                 f"{measurement.response_time_ms:.2f}",
                                 f"{measurement.peak_memory_mb:.3f}"])
        print(format_table(
            "", ["query", "k", "algorithm", "time_ms", "memory_mb"],
            rows))

    size_names = [name for name in ("doc1", "doc2", "doc3", "doc4")
                  if name in databases]
    if len(size_names) >= 2:
        banner("Figure 6(a,b) - XMark size scaling, k=10")
        scaled = {name: databases[name] for name in size_names}
        data = vary_size(scaled, ("X1", "X2"), k=10,
                         repeats=options.repeats)
        rows = []
        for query_id, by_size in data.items():
            for name, by_algorithm in by_size.items():
                for algorithm, measurement in by_algorithm.items():
                    rows.append([query_id, name, algorithm,
                                 f"{measurement.response_time_ms:.2f}",
                                 f"{measurement.peak_memory_mb:.3f}"])
        print(format_table(
            "", ["query", "dataset", "algorithm", "time_ms",
                 "memory_mb"],
            rows))

    print(f"\nreport complete in {time.perf_counter() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
