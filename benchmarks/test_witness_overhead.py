"""Null-witness overhead on the BENCH_batch workload.

Acceptance bar for the concurrency pass: with no witness attached
(``NULL_WITNESS``, the library default) the instrumented-lock hook
points must cost <2% of the batched-serving workload of
``BENCH_batch.json``.

The methodology mirrors ``test_observability_overhead.py``: a direct
A/B against a hook-free build is impossible (the ``witness.enabled``
branches *are* the build), so the bound is conservative:

1. run the workload with a **live** witness whose locks count every
   acquisition — an overcount of the null path, which constructs
   plain ``threading.Lock`` objects and never reaches a witness hook;
2. measure the per-call cost of the null path's only residual work
   (the ``enabled`` attribute check plus a null hook call) in a tight
   loop;
3. bound the overhead by ``acquisitions x null_cost / batch_time`` on
   a defaults (null-witness) run of the same cold workload.
"""

import random

from repro.analysis.concurrency import LockWitness, NULL_WITNESS
from repro.datagen.workload import WorkloadSpec, sample_workload
from repro.obs.metrics import Stopwatch
from repro.service import QueryService

DISTINCT_QUERIES = 15
REPETITIONS = 4
K = 10
SEED = 673  # BENCH_batch's workload seed


def bench_workload(database):
    rng = random.Random(SEED)
    spec = WorkloadSpec(queries=DISTINCT_QUERIES, terms_per_query=2,
                        min_frequency=20, max_frequency=2000)
    workload = sample_workload(database.index, spec, rng=rng)
    queries = [list(query) for query in workload
               for _ in range(REPETITIONS)]
    rng.shuffle(queries)
    return queries


def run_cold_batch(database, queries, witness=None):
    service = QueryService(database, cache_size=256, witness=witness)
    with Stopwatch() as watch:
        service.batch_search(queries, k=K)
    return watch.elapsed_ms


def null_witness_cost_ms(iterations=200_000):
    """Per-acquisition cost of the null path: the ``enabled`` check a
    locking call site performs, plus one null hook call for margin."""
    null = NULL_WITNESS
    with Stopwatch() as watch:
        for _ in range(iterations):
            if null.enabled:  # pragma: no cover - never taken
                pass
            null.assert_holding("bench._lock")
    return watch.elapsed_ms / iterations


def test_null_witness_costs_under_two_percent(benchmark, dataset,
                                              report):
    database = dataset("doc1")
    queries = bench_workload(database)

    # Acquisition census on a witnessed run — every lock round-trip
    # the workload can perform; the null path skips all of them.
    witness = LockWitness(strict=False)
    witnessed_ms = run_cold_batch(database, queries, witness)
    acquisitions = sum(witness.acquisitions.values())
    assert acquisitions > 0, \
        "the workload must exercise the instrumented locks"
    assert witness.violations == [], \
        f"BENCH_batch violated lock discipline: {witness.violations}"

    def run():
        return run_cold_batch(database, queries)

    null_ms = sorted(run() for _ in range(3))[1]
    benchmark.pedantic(run, rounds=1, iterations=1)

    per_acq_ms = null_witness_cost_ms()
    bound_ms = acquisitions * per_acq_ms
    overhead_pct = 100.0 * bound_ms / null_ms
    witnessed_pct = 100.0 * (witnessed_ms - null_ms) / null_ms

    assert overhead_pct < 2.0, (
        f"null-witness path bound at {overhead_pct:.3f}% "
        f"({acquisitions} acquisitions x {per_acq_ms * 1e6:.0f} ns "
        f"over {null_ms:.1f} ms)")

    report.add_row(
        "Lock-witness overhead (null witness, BENCH_batch workload)",
        ["queries", "acquisitions", "acq_ns", "batch_ms", "bound_pct",
         "witnessed_delta_pct"],
        [len(queries), acquisitions, f"{per_acq_ms * 1e6:7.0f}",
         f"{null_ms:8.1f}", f"{overhead_pct:6.3f}%",
         f"{witnessed_pct:+6.1f}%"])
