"""Null-object observability overhead on the BENCH_batch workload.

The acceptance bar for the tracing/flight-recorder work: with nothing
attached (``NULL_COLLECTOR`` / ``NULL_TRACER`` / ``NULL_RECORDER`` —
the library default) the instrumentation hooks must cost <2% of the
batched-serving workload of ``BENCH_batch.json``.

Direct A/B timing against a hook-free build is impossible (the hooks
*are* the build), so the overhead is measured as a conservative upper
bound:

1. run the workload once with a **counting** collector that tallies
   every hook invocation the workload performs (an overcount of the
   null path, which skips the ``enabled``-guarded hooks entirely);
2. measure the per-call cost of the null hooks in a tight loop;
3. bound the overhead by ``hooks x null_cost / batch_time`` on a
   defaults (null-path) run of the same cold workload.

The attached-collector delta is reported alongside for context, but
only the null bound is asserted — wall-clock A/B deltas of a few
percent are noise on shared CI hardware.
"""

import random

from repro.datagen.workload import WorkloadSpec, sample_workload
from repro.obs.metrics import (MetricsCollector, NULL_COLLECTOR,
                               Stopwatch)
from repro.service import QueryService

DISTINCT_QUERIES = 15
REPETITIONS = 4
K = 10
SEED = 673  # BENCH_batch's workload seed


class CountingCollector(MetricsCollector):
    """A real collector that also tallies every hook invocation."""

    def __init__(self):
        super().__init__()
        self.calls = 0

    def count(self, name, value=1):
        self.calls += 1
        super().count(name, value)

    def observe(self, name, value):
        self.calls += 1
        super().observe(name, value)

    def observe_time(self, name, seconds):
        self.calls += 1
        super().observe_time(name, seconds)

    def time(self, name):
        self.calls += 1
        return super().time(name)

    def event(self, name, **fields):
        self.calls += 1
        super().event(name, **fields)

    def mark(self, key, value=1):
        self.calls += 1
        super().mark(key, value)


def bench_workload(database):
    rng = random.Random(SEED)
    spec = WorkloadSpec(queries=DISTINCT_QUERIES, terms_per_query=2,
                        min_frequency=20, max_frequency=2000)
    workload = sample_workload(database.index, spec, rng=rng)
    queries = [list(query) for query in workload
               for _ in range(REPETITIONS)]
    rng.shuffle(queries)
    return queries


def run_cold_batch(database, queries, collector=None):
    service = QueryService(database, cache_size=256,
                           collector=collector)
    with Stopwatch() as watch:
        service.batch_search(queries, k=K)
    return watch.elapsed_ms


def null_hook_cost_ms(iterations=200_000):
    """Per-invocation cost of the three null hook shapes (counter,
    timer context, span mark), measured in a tight loop."""
    null = NULL_COLLECTOR
    with Stopwatch() as watch:
        for _ in range(iterations):
            null.count("bench.counter")
            with null.time("bench.timer"):
                pass
            null.mark("bench.mark")
    return watch.elapsed_ms / (3 * iterations)


def test_null_hooks_cost_under_two_percent(benchmark, dataset, report):
    database = dataset("doc1")
    queries = bench_workload(database)

    # Hook census on an attached run: every hook the workload can
    # perform, including the enabled-guarded ones the null path skips.
    counting = CountingCollector()
    attached_ms = run_cold_batch(database, queries, counting)
    hooks = counting.calls
    assert hooks > 0, "the workload must exercise the hook points"

    def run():
        return run_cold_batch(database, queries)

    # Median of repeated cold runs: the null-path denominator.
    null_ms = sorted(run() for _ in range(3))[1]
    benchmark.pedantic(run, rounds=1, iterations=1)

    per_hook_ms = null_hook_cost_ms()
    bound_ms = hooks * per_hook_ms
    overhead_pct = 100.0 * bound_ms / null_ms
    attached_pct = 100.0 * (attached_ms - null_ms) / null_ms

    assert overhead_pct < 2.0, (
        f"null-object hooks bound at {overhead_pct:.3f}% "
        f"({hooks} hooks x {per_hook_ms * 1e6:.0f} ns over "
        f"{null_ms:.1f} ms)")

    report.add_row(
        "Observability overhead (null hooks, BENCH_batch workload)",
        ["queries", "hooks", "hook_ns", "batch_ms", "bound_pct",
         "attached_delta_pct"],
        [len(queries), hooks, f"{per_hook_ms * 1e6:7.0f}",
         f"{null_ms:8.1f}", f"{overhead_pct:6.3f}%",
         f"{attached_pct:+6.1f}%"])
