"""Table II: properties of the experimental p-documents.

Benchmarks dataset construction (generation + probabilistic injection +
encoding + indexing) once per dataset and reports the node-type
breakdown rows the paper tabulates.
"""

import pytest

from repro.datagen import DATASET_SPECS, make_dataset
from repro.prxml.stats import document_stats

HEADER = ["dataset", "family", "total", "#IND", "#MUX", "#Ordinary",
          "dist%", "height"]


@pytest.mark.parametrize("name", list(DATASET_SPECS))
def test_table2_dataset(benchmark, name, dataset_cache, report):
    database = benchmark.pedantic(make_dataset, args=(name,),
                                  rounds=1, iterations=1)
    # Register in the shared cache so figure benchmarks reuse it.
    dataset_cache.setdefault(name, database)

    stats = document_stats(database.document)
    assert stats.total_nodes > 1000
    assert 0.08 <= stats.distributional_ratio <= 0.25
    report.add_row(
        "Table II - dataset properties", HEADER,
        [name, DATASET_SPECS[name].family, stats.total_nodes,
         stats.ind_nodes, stats.mux_nodes, stats.ordinary_nodes,
         f"{stats.distributional_ratio:.1%}", stats.height])
