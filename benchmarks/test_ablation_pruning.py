"""Ablation: how much do EagerTopK's two pruning devices buy?

Runs EagerTopK with path bounds (DeleteSet) and node bounds
(suspension) independently disabled — the design choices Section IV-B
motivates.  Expected shape: both devices cut consumed match entries;
with both disabled EagerTopK degenerates to a region-by-region full
evaluation and loses to PrStack.
"""

import pytest

from repro.bench.runner import measure_callable
from repro.core.eager import eager_topk_search
from repro.datagen import query_keywords

VARIANTS = [
    ("full", True, True, True),
    ("no-path-bounds", False, True, True),
    ("no-node-bounds", True, False, True),
    ("no-pruning", False, False, True),
    ("paper-ties", True, True, False),
]
CELLS = [
    (doc, query_id, variant)
    for doc, query_id in (("doc2", "X1"), ("doc2", "X5"),
                          ("doc6", "D2"), ("doc6", "D4"))
    for variant in VARIANTS
]


@pytest.mark.parametrize(
    "doc,query_id,variant", CELLS,
    ids=[f"{doc}-{query_id}-{variant[0]}"
         for doc, query_id, variant in CELLS])
def test_pruning_ablation(benchmark, dataset, report, doc, query_id,
                          variant):
    name, path_bounds, node_bounds, exact_ties = variant
    database = dataset(doc)
    keywords = query_keywords(query_id)

    def search():
        return eager_topk_search(database.index, keywords, 10,
                                 use_path_bounds=path_bounds,
                                 use_node_bounds=node_bounds,
                                 exact_ties=exact_ties)

    benchmark.pedantic(search, rounds=3, iterations=1)
    measurement = measure_callable(search, repeats=1)

    stats = measurement.stats
    report.add_row(
        "Ablation - EagerTopK pruning devices",
        ["dataset", "query", "variant", "time_ms", "consumed",
         "matches", "pruned", "suspended"],
        [doc, query_id, name, f"{measurement.response_time_ms:9.2f}",
         stats["entries_consumed"], stats["match_entries"],
         stats["candidates_pruned"], stats["candidates_suspended"]])
