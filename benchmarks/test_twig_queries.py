"""Benchmarks for the probabilistic twig engine (DESIGN.md extension).

Structured queries on the Mondial-like corpus: per-pattern response
time of the direct DP, against pattern size and selectivity.  Shape to
verify: cost tracks the candidate count (selective labels are fast,
wildcard steps force full scans), not the 2^(2 * steps) state width.
"""

import pytest

from repro.bench.runner import measure_callable
from repro.datagen import generate_mondial, make_probabilistic
from repro.index.storage import Database
from repro.twig import topk_twig_search

_CACHE = {}


def mondial_db() -> Database:
    if "db" not in _CACHE:
        document = make_probabilistic(generate_mondial(), seed=673)
        _CACHE["db"] = Database.from_document(document)
    return _CACHE["db"]


PATTERNS = [
    ("1-step", 'religion[name ~ "muslim"]'),
    ("2-step", 'country[government ~ "multiparty"]'),
    ("3-step", 'country[religion/name ~ "muslim"]'
               '[government ~ "multiparty"]'),
    ("deep", "country/province/city/located_at/coordinates"),
    ("desc-axis", 'country[//name ~ "muslim"][//name ~ "chinese"]'),
]


@pytest.mark.parametrize("label,pattern", PATTERNS,
                         ids=[label for label, _ in PATTERNS])
def test_twig_pattern(benchmark, report, label, pattern):
    database = mondial_db()

    def search():
        return topk_twig_search(database.index, pattern, 10)

    benchmark.pedantic(search, rounds=3, iterations=1)
    measurement = measure_callable(search, repeats=1)

    report.add_row(
        "Extension - twig queries (Mondial)",
        ["pattern", "time_ms", "candidates", "bindings"],
        [label, f"{measurement.response_time_ms:9.2f}",
         measurement.stats.get("candidates", "-"),
         measurement.result_count])
