"""Random-workload study (beyond Table III's hand-picked queries).

Samples reproducible 2- and 3-term workloads from the XMark corpus in
a mid-selectivity band and reports aggregate response times, so the
Figure 4 conclusions can be checked against queries nobody cherry-
picked.  Expected shape: EagerTopK's median win holds across the
workload, with its worst case (few-answer queries) approaching parity.
"""

import random
import statistics

import pytest

from repro.bench.runner import run_query
from repro.datagen.workload import WorkloadSpec, sample_workload

SPECS = [
    ("2-term", WorkloadSpec(queries=12, terms_per_query=2,
                            min_frequency=20, max_frequency=2000)),
    ("3-term", WorkloadSpec(queries=12, terms_per_query=3,
                            min_frequency=20, max_frequency=2000)),
]


@pytest.mark.parametrize("label,spec", SPECS,
                         ids=[label for label, _ in SPECS])
@pytest.mark.parametrize("algorithm", ["prstack", "eager"])
def test_random_workload(benchmark, dataset, report, label, spec,
                         algorithm):
    database = dataset("doc1")
    workload = sample_workload(database.index, spec,
                               rng=random.Random(673))

    def run_all():
        return [run_query(database, query, 10, algorithm, repeats=1)
                for query in workload]

    measurements = benchmark.pedantic(run_all, rounds=1, iterations=1)
    times = sorted(m.response_time_ms for m in measurements)
    report.add_row(
        "Random workload (XMark x1, sampled queries)",
        ["workload", "algorithm", "median_ms", "p90_ms", "max_ms",
         "queries"],
        [label, algorithm,
         f"{statistics.median(times):9.2f}",
         f"{times[int(len(times) * 0.9) - 1]:9.2f}",
         f"{times[-1]:9.2f}", len(times)])
