"""Ablation: sensitivity to the distributional-node ratio.

The paper fixes the ratio at 10-20% of all nodes; this sweep varies it
from 5% to 35% on the XMark corpus to show how distributional density
affects both algorithms (more MUX/IND nodes mean deeper Dewey codes,
more table promotions, and lower result probabilities).
"""

import pytest

from repro.bench.runner import run_query
from repro.datagen import generate_xmark, make_probabilistic, query_keywords
from repro.index.storage import Database

RATIOS = (0.05, 0.15, 0.25, 0.35)
_BASE = {}
_CACHE = {}


def database_for(ratio: float) -> Database:
    if ratio not in _CACHE:
        if "doc" not in _BASE:
            _BASE["doc"] = generate_xmark(scale=1)
        probabilistic = make_probabilistic(
            _BASE["doc"], distributional_ratio=ratio, seed=673)
        _CACHE[ratio] = Database.from_document(probabilistic)
    return _CACHE[ratio]


@pytest.mark.parametrize("ratio", RATIOS)
@pytest.mark.parametrize("algorithm", ["prstack", "eager"])
def test_dist_ratio_sweep(benchmark, report, ratio, algorithm):
    database = database_for(ratio)
    keywords = query_keywords("X1")

    measurement = benchmark.pedantic(
        run_query, args=(database, keywords, 10, algorithm),
        kwargs={"repeats": 1}, rounds=1, iterations=1)

    report.add_row(
        "Ablation - distributional-node ratio (XMark x1, X1)",
        ["ratio", "algorithm", "time_ms", "results", "nodes"],
        [f"{ratio:.2f}", algorithm,
         f"{measurement.response_time_ms:9.2f}",
         measurement.result_count, len(database.document)])
