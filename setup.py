"""Setup shim (pyproject.toml carries the metadata).

Kept so editable installs work in offline environments without the
``wheel`` package: ``python setup.py develop`` or ``pip install -e .``.
"""

from setuptools import setup

setup()
