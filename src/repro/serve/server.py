"""The asyncio HTTP server around one :class:`QueryService`.

Stdlib only: ``asyncio.start_server`` accepts connections, request
heads are framed with ``readuntil(b"\\r\\n\\r\\n")``, bodies by
``Content-Length``, and connections are keep-alive until the client
opts out.  The event loop never runs a query: every admitted request
is handed to a bounded :class:`~concurrent.futures.ThreadPoolExecutor`
(as many workers as admission slots, so an admitted request never
queues behind another), keeping ``/health`` and ``/metrics``
responsive while searches run.

Request lifecycle (the admission order is deliberate)::

    rate limit (429 per client) -> admission slot (429 overloaded /
        503 draining) -> parse/validate (400, structured)
        -> executor thread: fault hook, span, QueryService -> 200

Draining (SIGTERM or :meth:`ServeServer.request_stop`) closes the
listener, flips the admission latch, and proactively closes idle
keep-alive connections — their handlers are parked in ``readuntil()``
and would otherwise never observe the latch (on Python >= 3.12.1
``Server.wait_closed()`` waits for every handler, so shutdown never
awaits it).  In-flight requests finish on the generation they
captured (`stats["service_state"]` proves it) with ``Connection:
close`` on the response; connections still open after
``drain_timeout_s`` are cancelled, and the process exits 0.
``POST /reload`` delegates to the same
:meth:`QueryService.reload` hot-swap path the SIGHUP handler uses,
answering 409 while one is already in flight.

Every ``/search`` and ``/batch`` request runs under its own
:class:`~repro.obs.spans.SpanTracer` with a deterministic
content-derived trace id, so a served query produces the same span
tree (``http.request`` -> ``query`` -> engine timer spans) as a CLI
query; the response carries ``trace_id`` and, on request, the
exported spans.

Single-writer loop-thread state: ``_reload_inflight`` and
``_sequence`` are only ever touched from the event-loop thread
(executor threads receive them as call arguments), so they need no
lock.
"""

from __future__ import annotations

import asyncio
import signal
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.exceptions import QueryError, ReproError, StorageError
from repro.obs import (MetricsCollector, SpanTracer, Stopwatch,
                       build_report_v2, derive_trace_id,
                       format_sample, prometheus_lines, quantile_lines)
from repro.obs.logging import get_logger
from repro.resilience.deadline import Deadline
from repro.resilience.faults import NULL_FAULTS, FaultsLike
from repro.serve.admission import AdmissionController
from repro.serve.protocol import (DEFAULT_MAX_BODY, ApiError,
                                  BatchRequest, HttpRequest,
                                  ProtocolError, SearchRequest,
                                  error_response, json_response,
                                  outcome_payload, parse_batch_request,
                                  parse_head, parse_search_request,
                                  query_error_to_api, render_response)
from repro.serve.ratelimit import (NULL_RATE_LIMITER, RateLimiter,
                                   RateLimiterLike)

_log = get_logger("serve")

#: Default Retry-After (seconds) for an overloaded 429 — long enough
#: to shed herd retries, short enough that a draining peer recovers.
DEFAULT_RETRY_AFTER_S = 1.0


@dataclass
class ServeConfig:
    """Knobs of one server instance (docs/SERVING.md).

    Attributes:
        host/port: bind address; port 0 picks an ephemeral port
            (read it back from :attr:`ServeServer.port`).
        max_inflight: global admission cap — requests running at
            once; overflow answers 429 with ``Retry-After``.
        rate/burst: per-client token bucket (requests/second and
            bucket depth); ``rate <= 0`` disables rate limiting.
        client_header: header naming the client for rate limiting —
            only consulted when ``trust_client_header`` is set
            (falls back to the peer address).
        trust_client_header: key rate-limit buckets on the
            client-supplied ``client_header`` value.  Off by default:
            an unauthenticated caller could rotate ids to dodge its
            own bucket and churn the bounded LRU, so identity is the
            peer address unless an authenticating proxy upstream
            pins the header (docs/SERVING.md).
        max_body: request body byte cap (413 beyond it).
        drain_timeout_s: how long shutdown waits for in-flight
            requests before cancelling the stragglers.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_inflight: int = 8
    rate: float = 0.0
    burst: float = 20.0
    client_header: str = "x-client-id"
    trust_client_header: bool = False
    max_body: int = DEFAULT_MAX_BODY
    drain_timeout_s: float = 30.0


@dataclass
class _Connection:
    """Per-connection drain state (loop-thread-only, like the rest
    of the single-writer server state)."""

    writer: asyncio.StreamWriter
    #: True from request-head read until the response is written —
    #: drain closes only connections that are *not* busy.
    busy: bool = False


class ServeServer:
    """One HTTP front door over one :class:`QueryService`."""

    def __init__(self, service: Any,
                 config: Optional[ServeConfig] = None,
                 collector: Optional[MetricsCollector] = None,
                 faults: Optional[FaultsLike] = None,
                 ratelimiter: Optional[RateLimiterLike] = None) -> None:
        self._service = service
        self._config = config if config is not None else ServeConfig()
        if collector is not None:
            self._collector = collector
        elif getattr(service.collector, "enabled", False):
            self._collector = service.collector
        else:
            self._collector = MetricsCollector()
        self._faults = faults if faults is not None else NULL_FAULTS
        self._admission = AdmissionController(self._config.max_inflight)
        if ratelimiter is not None:
            self._ratelimit: RateLimiterLike = ratelimiter
        elif self._config.rate > 0:
            self._ratelimit = RateLimiter(self._config.rate,
                                          self._config.burst)
        else:
            self._ratelimit = NULL_RATE_LIMITER
        self._executor = ThreadPoolExecutor(
            max_workers=self._config.max_inflight,
            thread_name_prefix="repro-serve")
        self._watch = Stopwatch().start()
        # Loop-thread-only state (see the module docstring).
        self._reload_inflight = False
        self._sequence = 0
        self._connections: "Dict[asyncio.Task, _Connection]" = {}
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.port: Optional[int] = None

    # -- lifecycle ------------------------------------------------------------

    async def run_async(self, ready: Optional[threading.Event] = None,
                        install_signals: bool = False,
                        on_ready: Optional[Any] = None) -> int:
        """Serve until stopped, then drain; returns the exit code (0).

        ``ready`` is set once the listener is bound (and
        :attr:`port` is readable); ``on_ready`` is called with the
        bound port at the same moment (the CLI prints the serving
        line from it).  ``install_signals`` arms SIGTERM / SIGINT as
        graceful-drain triggers and SIGHUP as a hot reload via
        ``loop.add_signal_handler`` (main thread only).
        """
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._stop = asyncio.Event()
        # A bind failure propagates to the caller; start_in_thread's
        # runner records it *before* its finally sets the ready event,
        # so the spawning thread always observes the error.
        server = await asyncio.start_server(
            self._on_connection, self._config.host, self._config.port,
            limit=self._config.max_body + (1 << 16))
        self.port = server.sockets[0].getsockname()[1]
        restored: List[int] = []
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(signum, self._stop.set)
                restored.append(signum)
            if hasattr(signal, "SIGHUP"):
                loop.add_signal_handler(signal.SIGHUP,
                                        self._hup_reload)
                restored.append(signal.SIGHUP)
        if ready is not None:
            ready.set()
        if on_ready is not None:
            on_ready(self.port)
        _log.info("serving on http://%s:%d (max_inflight=%d)",
                  self._config.host, self.port,
                  self._config.max_inflight)
        try:
            await self._stop.wait()
        finally:
            self._admission.begin_drain()
            server.close()
            for signum in restored:
                loop.remove_signal_handler(signum)
        # The listener is closed but wait_closed() is deliberately
        # never awaited: on Python >= 3.12.1 it blocks until every
        # connection handler returns, and a handler parked in
        # readuntil() on an idle keep-alive connection would park
        # shutdown forever.  Closing idle connections wakes those
        # handlers; the bounded wait below is the real drain barrier.
        idle = self._close_idle_connections()
        _log.info("draining %d in-flight request(s); closed %d idle "
                  "connection(s)", self._admission.inflight(), idle)
        timed_out = False
        if self._connections:
            _done, pending = await asyncio.wait(
                set(self._connections),
                timeout=self._config.drain_timeout_s)
            if pending:
                timed_out = True
                _log.warning(
                    "cancelling %d connection(s) still open after the "
                    "%.1fs drain timeout", len(pending),
                    self._config.drain_timeout_s)
                for task in pending:
                    task.cancel()
                await asyncio.wait(pending, timeout=1.0)
        # A cancelled straggler's query thread cannot be interrupted;
        # let it finish on its own rather than blocking the exit.
        self._executor.shutdown(wait=not timed_out,
                                cancel_futures=timed_out)
        _log.info("drained; exiting")
        return 0

    def request_stop(self) -> None:
        """Trigger graceful drain from any thread (idempotent)."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:  # repro: ignore[R006] loop already closed: drain is done
                pass

    # -- connection handling --------------------------------------------------

    def _close_idle_connections(self) -> int:
        """Close every connection with no request mid-flight.

        Runs on the loop thread during drain.  Closing the transport
        wakes the handler out of its ``readuntil()`` with EOF; busy
        connections are left alone — they finish their request,
        observe the drain latch, and close themselves.
        """
        closed = 0
        for state in list(self._connections.values()):
            if not state.busy:
                state.writer.close()
                closed += 1
        return closed

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        state = _Connection(writer)
        if task is not None:
            self._connections[task] = state
        try:
            await self._handle_connection(reader, writer, state)
        finally:
            if task is not None:
                self._connections.pop(task, None)

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter,
                                 state: _Connection) -> None:
        peer = writer.get_extra_info("peername")
        # The host element of the address tuple is carried separately
        # from the display string: an IPv6 host contains colons, so
        # anything that string-parses ``host:port`` back apart (the
        # rate limiter used to) would key ``::1:54321`` on ``::1:``'s
        # prefix instead of the host.
        if isinstance(peer, tuple) and len(peer) >= 2:
            client_host = str(peer[0])
            display_host = f"[{client_host}]" if ":" in client_host \
                else client_host
            client = f"{display_host}:{peer[1]}"
        else:
            client_host = ""
            client = "unknown"
        try:
            while True:
                if self._admission.draining:
                    return
                state.busy = False
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (asyncio.IncompleteReadError, ConnectionError):
                    return  # client went away between requests
                except asyncio.LimitOverrunError:
                    writer.write(error_response(
                        ApiError(400, "bad_request",
                                 "request head too large"),
                        keep_alive=False))
                    await writer.drain()
                    return
                state.busy = True
                try:
                    request = parse_head(head, client=client,
                                     client_host=client_host)
                except ProtocolError as error:
                    writer.write(error_response(
                        ApiError(400, "bad_request", str(error)),
                        keep_alive=False))
                    await writer.drain()
                    return
                raw_length = request.headers.get("content-length", "0")
                try:
                    length = int(raw_length)
                except ValueError:
                    length = -1
                if length < 0:
                    writer.write(error_response(
                        ApiError(400, "bad_request",
                                 f"malformed Content-Length: "
                                 f"{raw_length!r}"), keep_alive=False))
                    await writer.drain()
                    return
                if length > self._config.max_body:
                    # The body is not read, so the framing is lost —
                    # answer and close rather than desync.
                    writer.write(error_response(
                        ApiError(413, "payload_too_large",
                                 f"request body of {length} bytes "
                                 f"exceeds the {self._config.max_body}"
                                 f"-byte cap"), keep_alive=False))
                    await writer.drain()
                    return
                if length:
                    try:
                        request.body = await reader.readexactly(length)
                    except (asyncio.IncompleteReadError,
                            ConnectionError):
                        return
                response = await self._dispatch(request)
                writer.write(response)
                await writer.drain()
                if not request.keep_alive or self._admission.draining:
                    return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # repro: ignore[R006] peer already gone on close
                pass

    # -- routing --------------------------------------------------------------

    def _keep(self, request: HttpRequest) -> bool:
        """Keep-alive unless the client opts out or we are draining —
        drain responses advertise ``Connection: close`` so the client
        does not park an idle connection on a dying server."""
        return request.keep_alive and not self._admission.draining

    async def _dispatch(self, request: HttpRequest) -> bytes:
        """Route one request; every failure becomes a structured
        JSON error (the second satellite bugfix: a QueryError is the
        *client's* 400, never this server's 500)."""
        if self._collector.enabled:
            self._collector.count("serve.requests")
        try:
            if request.path == "/health":
                self._require_method(request, "GET")
                return json_response(200, self._health_payload(),
                                     keep_alive=self._keep(request))
            if request.path == "/metrics":
                self._require_method(request, "GET")
                return self._metrics_response(request)
            if request.path == "/search":
                self._require_method(request, "POST")
                return await self._search(request)
            if request.path == "/batch":
                self._require_method(request, "POST")
                return await self._batch(request)
            if request.path == "/reload":
                self._require_method(request, "POST")
                return await self._reload(request)
            raise ApiError(404, "not_found",
                           f"unknown path {request.path!r}")
        except ApiError as error:
            self._count_error(error.code)
            return error_response(error, keep_alive=self._keep(request))
        except QueryError as error:
            api = query_error_to_api(error)
            self._count_error(api.code)
            return error_response(api, keep_alive=self._keep(request))
        except Exception as error:  # noqa: BLE001 - boundary backstop
            _log.exception("unhandled error serving %s %s",
                           request.method, request.path)
            self._count_error("internal")
            return error_response(
                ApiError(500, "internal",
                         f"{type(error).__name__}: {error}"),
                keep_alive=self._keep(request))

    def _require_method(self, request: HttpRequest,
                        method: str) -> None:
        if request.method != method:
            raise ApiError(405, "method_not_allowed",
                           f"{request.path} only accepts {method}")

    def _count_error(self, code: str) -> None:
        if self._collector.enabled:
            self._collector.count(f"serve.errors.{code}")

    # -- admission ------------------------------------------------------------

    def _admit(self, request: HttpRequest) -> None:
        """Rate limit then claim a slot (raises the 429/503 family).

        Runs *before* the body is parsed, so a rejected client never
        costs a JSON decode on the event-loop thread.  The rate-limit
        identity is the host element of the peer's socket address
        tuple (one bucket per host, not per connection) — taken from
        ``client_host``, never parsed out of the display string, so an
        IPv6 peer like ``::1`` keys one bucket instead of one per
        source port.  The ``client_header`` value is honoured only
        under ``trust_client_header``, because an unauthenticated
        caller could rotate ids to dodge its bucket and churn the LRU.
        """
        client = request.client_host or request.client
        if self._config.trust_client_header:
            client = request.headers.get(self._config.client_header,
                                         "") or client
        delay = self._ratelimit.check(client)
        if delay is not None:
            raise ApiError(429, "rate_limited",
                           f"client {client!r} is over its request "
                           f"rate", retry_after=delay)
        if not self._admission.try_acquire():
            if self._admission.draining:
                # A drain is transient: a retrying client will reach
                # the restarted (or load-balanced sibling) server, so
                # 503 carries Retry-After exactly like the 429s do.
                raise ApiError(503, "draining",
                               "server is draining for shutdown",
                               retry_after=DEFAULT_RETRY_AFTER_S)
            raise ApiError(429, "overloaded",
                           f"server is at its in-flight cap of "
                           f"{self._config.max_inflight}",
                           retry_after=DEFAULT_RETRY_AFTER_S)

    # -- /search and /batch ---------------------------------------------------

    async def _search(self, request: HttpRequest) -> bytes:
        self._admit(request)
        try:
            params = parse_search_request(request.json())
            # The deadline is stamped *here*, at admission on the
            # event-loop thread: the executor queue wait, the corpus
            # scatter and every per-shard child budget all draw from
            # this one shrinking wall clock, so the end-to-end request
            # cannot overshoot what the client asked for no matter
            # where the time goes.
            deadline = Deadline.after_ms(params.deadline_ms) \
                if params.deadline_ms is not None else None
            self._sequence += 1
            loop = asyncio.get_running_loop()
            payload = await loop.run_in_executor(
                self._executor, self._run_search, params, deadline,
                self._sequence, request.client)
        finally:
            self._admission.release()
        return json_response(200, payload,
                             keep_alive=self._keep(request))

    def _run_search(self, params: SearchRequest,
                    deadline: Optional[Deadline], sequence: int,
                    client: str) -> Dict[str, Any]:
        """Executor-thread body of one /search request."""
        tracer = SpanTracer(trace_id=derive_trace_id(
            "serve", sequence, " ".join(params.keywords), params.k,
            params.algorithm, params.semantics))
        watch = Stopwatch().start()
        with self._collector.time("serve.search"):
            with tracer.span("http.request", method="POST",
                             path="/search", client=client):
                self._faults.before_query(params.keywords)
                outcome = self._service.search(
                    params.keywords, k=params.k,
                    algorithm=params.algorithm,
                    semantics=params.semantics,
                    deadline=deadline, tracer=tracer)
        spans = tracer.export() if params.spans else None
        payload = outcome_payload(outcome, watch.elapsed * 1000.0,
                                  spans=spans)
        payload["trace_id"] = tracer.trace_id
        return payload

    async def _batch(self, request: HttpRequest) -> bytes:
        self._admit(request)
        try:
            params = parse_batch_request(request.json())
            self._sequence += 1
            loop = asyncio.get_running_loop()
            payload = await loop.run_in_executor(
                self._executor, self._run_batch, params,
                self._sequence, request.client)
        finally:
            self._admission.release()
        return json_response(200, payload,
                             keep_alive=self._keep(request))

    def _run_batch(self, params: BatchRequest, sequence: int,
                   client: str) -> Dict[str, Any]:
        """Executor-thread body of one /batch request."""
        tracer = SpanTracer(trace_id=derive_trace_id(
            "serve.batch", sequence, params.k, params.algorithm,
            params.semantics,
            *(" ".join(query) for query in params.queries)))
        with self._collector.time("serve.batch"):
            with tracer.span("http.request", method="POST",
                             path="/batch", client=client):
                for query in params.queries:
                    self._faults.before_query(query)
                batch = self._service.batch_search(
                    params.queries, k=params.k,
                    algorithm=params.algorithm,
                    semantics=params.semantics,
                    workers=params.workers, executor=params.executor,
                    deadline_ms=params.deadline_ms, tracer=tracer)
        outcomes = [outcome_payload(outcome, None)
                    for outcome in batch.outcomes]
        return {"outcomes": outcomes,
                "elapsed_ms": round(batch.elapsed_ms, 3),
                "trace_id": tracer.trace_id,
                "stats": {
                    "queries": len(batch.outcomes),
                    "partial": sum(1 for outcome in batch.outcomes
                                   if outcome.partial),
                    "errors": sum(
                        1 for outcome in batch.outcomes
                        if outcome.termination_reason == "error"),
                }}

    # -- /health, /metrics, /reload -------------------------------------------

    def _service_snapshot(self) -> Dict[str, Any]:
        """One coherent service view for ``/health`` and JSON
        ``/metrics``: generation, epoch, reload counters and breaker
        taken together under the service's locks
        (:meth:`QueryService.health_snapshot`), so a concurrent reload
        can never yield a payload mixing old and new generations.
        Falls back to the field-by-field reads for service objects
        that predate ``health_snapshot``."""
        snapshot = getattr(self._service, "health_snapshot", None)
        if callable(snapshot):
            return dict(snapshot())
        storage = dict(self._service.storage_stats())
        storage["breaker"] = self._service.breaker_stats()
        return storage

    def _health_payload(self) -> Dict[str, Any]:
        service = self._service_snapshot()
        payload = {"status": ("draining" if self._admission.draining
                              else "ok"),
                   "generation": service["generation"],
                   "epoch": service["epoch"],
                   "reloads": service.get("reloads"),
                   "breaker": service.get("breaker"),
                   "admission": self._admission.stats(),
                   "ratelimit": self._ratelimit.stats(),
                   "reload_in_flight": self._reload_inflight,
                   "uptime_ms": round(self._watch.elapsed * 1000.0, 3)}
        # A corpus service reports its per-shard generations/epochs.
        if "shards" in service:
            payload["shards"] = service["shards"]
        return payload

    def _serve_sample_lines(self) -> List[str]:
        """Serve-layer gauges, incl. a labelled generation info sample
        (label values are escaped — the first satellite bugfix)."""
        storage = self._service.storage_stats()
        lines = [format_sample(
            "serve.generation.info", 1,
            {"generation": storage["generation"] or "adhoc",
             "directory": storage["directory"] or ""})]
        for name, value in sorted(self._admission.stats().items()):
            lines.append(format_sample(f"serve.admission.{name}",
                                       value))
        for name, value in sorted(self._ratelimit.stats().items()):
            lines.append(format_sample(f"serve.ratelimit.{name}",
                                       value))
        return lines

    def _metrics_response(self, request: HttpRequest) -> bytes:
        collector = self._collector
        if request.query.get("format") == "json":
            from repro.core.result import SearchOutcome
            outcome = SearchOutcome(stats={
                "metrics": collector.snapshot(),
                "quantiles": collector.quantile_snapshot(),
                "serve": {"admission": self._admission.stats(),
                          "ratelimit": self._ratelimit.stats(),
                          "service": self._service_snapshot()},
            })
            report = build_report_v2(
                [], 0, "serve", "slca", outcome,
                elapsed_ms=self._watch.elapsed * 1000.0)
            return json_response(200, report,
                                 keep_alive=self._keep(request))
        lines = prometheus_lines(collector.snapshot())
        lines.extend(quantile_lines(collector.quantile_snapshot()))
        lines.extend(self._serve_sample_lines())
        body = ("\n".join(lines) + "\n").encode("utf-8")
        return render_response(
            200, body,
            content_type="text/plain; version=0.0.4; charset=utf-8",
            keep_alive=self._keep(request))

    def _hup_reload(self) -> None:
        """The SIGHUP handler: same hot-swap path as ``POST /reload``
        (a signal while one is in flight is logged and dropped)."""
        if self._reload_inflight or self._loop is None:
            _log.warning("SIGHUP reload skipped: one is in flight")
            return
        self._reload_inflight = True
        future = self._loop.run_in_executor(None, self._service.reload)

        def finished(fut: "asyncio.Future[Any]") -> None:
            self._reload_inflight = False
            try:
                state = fut.result()
            except ReproError as error:
                _log.error("SIGHUP reload rejected: %s", error)
            else:
                _log.info("SIGHUP reload: now serving generation %s "
                          "(epoch %d)", state.generation, state.epoch)

        future.add_done_callback(finished)

    async def _reload(self, request: HttpRequest) -> bytes:
        if self._reload_inflight:
            raise ApiError(409, "reload_in_flight",
                           "a reload is already in flight")
        self._reload_inflight = True
        try:
            loop = asyncio.get_running_loop()
            # The default executor, not the request pool: a reload
            # must not queue behind slow admitted queries.
            state = await loop.run_in_executor(None,
                                               self._service.reload)
        except StorageError as error:
            raise ApiError(500, "reload_failed", str(error)) from error
        except ReproError as error:
            raise ApiError(500, "reload_failed", str(error)) from error
        finally:
            self._reload_inflight = False
        return json_response(200,
                             {"generation": state.generation,
                              "epoch": state.epoch},
                             keep_alive=self._keep(request))


# -- embedding helpers --------------------------------------------------------


class ServeHandle:
    """A server running on a background thread (tests, benchmark)."""

    def __init__(self, server: ServeServer, thread: threading.Thread,
                 outcome: Dict[str, Any]) -> None:
        self.server = server
        self._thread = thread
        self._outcome = outcome

    @property
    def port(self) -> int:
        port = self.server.port
        if port is None:
            raise ReproError("server is not listening")
        return port

    def stop(self, timeout_s: float = 30.0) -> int:
        """Graceful drain; returns the server's exit code."""
        self.server.request_stop()
        self._thread.join(timeout_s)
        if self._thread.is_alive():
            raise ReproError("server did not drain within "
                             f"{timeout_s}s")
        error = self._outcome.get("error")
        if error is not None:
            raise error
        return int(self._outcome.get("exit", 1))


def start_in_thread(service: Any,
                    config: Optional[ServeConfig] = None,
                    collector: Optional[MetricsCollector] = None,
                    faults: Optional[FaultsLike] = None,
                    ratelimiter: Optional[RateLimiterLike] = None
                    ) -> ServeHandle:
    """Run a :class:`ServeServer` on a daemon thread; returns once the
    listener is bound (``handle.port`` is the ephemeral port)."""
    server = ServeServer(service, config, collector=collector,
                         faults=faults, ratelimiter=ratelimiter)
    ready = threading.Event()
    outcome: Dict[str, Any] = {}

    def runner() -> None:
        try:
            outcome["exit"] = asyncio.run(server.run_async(ready=ready))
        except BaseException as error:  # noqa: BLE001 - reported via stop()
            outcome["error"] = error
        finally:
            ready.set()

    thread = threading.Thread(target=runner, daemon=True,
                              name="repro-serve")
    thread.start()
    if not ready.wait(30.0):
        raise ReproError("server failed to start within 30s")
    if "error" in outcome:
        raise ReproError(f"server failed to start: "
                         f"{outcome['error']}")
    if server.port is None:
        raise ReproError("server thread exited before binding")
    return ServeHandle(server, thread, outcome)
