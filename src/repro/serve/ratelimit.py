"""Per-client token-bucket rate limiting for the serving layer.

Each client — identified by the peer address by default, or by the
configured header (``X-Client-Id``) when the server is told to trust
it (``trust_client_header``, for deployments behind an authenticating
proxy) — owns one token bucket:
``burst`` tokens deep, refilled at ``rate`` tokens per second.  A
request costs one token; an empty bucket means 429 with the exact
``Retry-After`` until the next token lands.  Buckets live in a bounded
LRU so an adversarial client-id churn cannot grow memory without
bound (evicting a bucket forgives at most ``burst`` requests — the
global :class:`~repro.serve.admission.AdmissionController` still caps
actual work).

Time comes from an injectable monotonic clock (a
:class:`repro.obs.Stopwatch` by default — the library's one sanctioned
clock, R002), so tests drive the refill deterministically.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Optional, Union

from repro.obs import Stopwatch

#: Client buckets kept before the least-recently-seen is evicted.
DEFAULT_MAX_CLIENTS = 4096


class TokenBucket:
    """One client's bucket (not thread-safe; the limiter locks)."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated = now

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now

    def try_take(self, now: float) -> Optional[float]:
        """Take one token; None on success, else seconds until one
        is available (the ``Retry-After`` value)."""
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return None
        return (1.0 - self.tokens) / self.rate


class RateLimiter:
    """Bounded LRU of per-client :class:`TokenBucket` s."""

    enabled = True

    def __init__(self, rate: float, burst: float,
                 max_clients: int = DEFAULT_MAX_CLIENTS,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if rate <= 0 or burst < 1:
            raise ValueError(f"rate must be positive and burst >= 1, "
                             f"got rate={rate} burst={burst}")
        if max_clients <= 0:
            raise ValueError(f"max_clients must be positive, "
                             f"got {max_clients}")
        self.rate = rate
        self.burst = float(burst)
        self.max_clients = max_clients
        if clock is None:
            watch = Stopwatch().start()
            clock = lambda: watch.elapsed  # noqa: E731
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()  # repro: guarded-by[_lock]
        self._allowed = 0  # repro: guarded-by[_lock]
        self._limited = 0  # repro: guarded-by[_lock]
        self._evicted = 0  # repro: guarded-by[_lock]

    def check(self, client: str) -> Optional[float]:
        """One request from ``client``: None when admitted, else the
        retry-after delay in seconds."""
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, now)
                self._buckets[client] = bucket
                while len(self._buckets) > self.max_clients:
                    self._buckets.popitem(last=False)
                    self._evicted += 1
            else:
                self._buckets.move_to_end(client)
            delay = bucket.try_take(now)
            if delay is None:
                self._allowed += 1
            else:
                self._limited += 1
            return delay

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"clients": len(self._buckets),
                    "allowed": self._allowed,
                    "limited": self._limited,
                    "evicted": self._evicted}


class NullRateLimiter:
    """No limiting (the default when no rate is configured)."""

    enabled = False

    def check(self, client: str) -> Optional[float]:
        return None

    def stats(self) -> Dict[str, int]:
        return {"clients": 0, "allowed": 0, "limited": 0, "evicted": 0}


#: Shared no-op instance.
NULL_RATE_LIMITER = NullRateLimiter()

#: What the server accepts wherever a limiter is expected.
RateLimiterLike = Union[RateLimiter, NullRateLimiter]
