"""The HTTP serving layer: ``repro serve`` (docs/SERVING.md).

A stdlib-only asyncio front door over one
:class:`repro.service.QueryService`:

* :mod:`repro.serve.protocol` — head parsing, strict request
  validation, the structured JSON error contract, response rendering;
* :mod:`repro.serve.admission` — the global in-flight cap and the
  graceful-drain latch (429 / 503, never a silent drop);
* :mod:`repro.serve.ratelimit` — per-client token buckets in a
  bounded LRU (429 with an exact ``Retry-After``);
* :mod:`repro.serve.server` — the event loop, routes
  (``POST /search``, ``POST /batch``, ``GET /health``,
  ``GET /metrics``, ``POST /reload``), executor offload, per-request
  spans, and SIGTERM drain.
"""

from repro.serve.admission import AdmissionController
from repro.serve.protocol import (ApiError, BatchRequest, HttpRequest,
                                  ProtocolError, SearchRequest,
                                  classify_query_error, error_body,
                                  error_response, json_response,
                                  outcome_payload, parse_batch_request,
                                  parse_head, parse_search_request,
                                  query_error_to_api, render_response)
from repro.serve.ratelimit import (NULL_RATE_LIMITER, NullRateLimiter,
                                   RateLimiter, RateLimiterLike,
                                   TokenBucket)
from repro.serve.server import (ServeConfig, ServeHandle, ServeServer,
                                start_in_thread)

__all__ = [
    "ServeServer", "ServeConfig", "ServeHandle", "start_in_thread",
    "AdmissionController",
    "RateLimiter", "NullRateLimiter", "NULL_RATE_LIMITER",
    "RateLimiterLike", "TokenBucket",
    "HttpRequest", "SearchRequest", "BatchRequest",
    "ApiError", "ProtocolError",
    "parse_head", "parse_search_request", "parse_batch_request",
    "classify_query_error", "query_error_to_api",
    "render_response", "json_response", "error_response",
    "error_body", "outcome_payload",
]
