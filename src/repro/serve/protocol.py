"""Wire protocol of the ``repro serve`` HTTP front door.

Everything here is synchronous and stateless — head parsing, request
body validation, response rendering — so the whole protocol is unit
testable without a socket; the asyncio plumbing lives in
:mod:`repro.serve.server`.

The error contract (the second satellite bugfix of the serving PR) is
a single structured shape on every non-2xx response::

    {"error": {"code": "invalid_query",
               "message": "k must be positive, got 0",
               "field": "k"}}

``code`` is a stable machine-readable token (``bad_request`` /
``invalid_query`` / ``not_found`` / ``method_not_allowed`` /
``rate_limited`` / ``overloaded`` / ``draining`` /
``reload_in_flight`` / ``reload_failed`` / ``payload_too_large`` /
``internal``), ``message`` is human-readable, and ``field`` names the
offending request field when one can be attributed (``null``
otherwise).  :class:`~repro.exceptions.QueryError` raised by
``validate_query`` / ``normalize_query`` maps to a 400
``invalid_query`` with the field recovered by
:func:`classify_query_error` — never a 500.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core.api import Algorithm
from repro.exceptions import QueryError, ReproError

#: Largest request body accepted by default (1 MiB).
DEFAULT_MAX_BODY = 1 << 20

#: Reason phrases for every status the server emits.
_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}

_ALGORITHMS = frozenset(choice.value for choice in Algorithm)
_SEMANTICS = frozenset(("slca", "elca"))
_EXECUTORS = frozenset(("serial", "thread", "process"))

#: Request fields accepted by ``POST /search``.
_SEARCH_FIELDS = frozenset(("keywords", "k", "algorithm", "semantics",
                            "deadline_ms", "spans"))

#: Request fields accepted by ``POST /batch``.
_BATCH_FIELDS = frozenset(("queries", "k", "algorithm", "semantics",
                           "deadline_ms", "executor", "workers"))


class ProtocolError(ReproError):
    """A request could not be parsed at the HTTP framing layer."""


class ApiError(ReproError):
    """A request failed with a structured, client-attributable error.

    Carries everything :func:`error_body` needs; the server catches it
    at the top of the request handler and renders the JSON error.
    """

    def __init__(self, status: int, code: str, message: str,
                 field: Optional[str] = None,
                 retry_after: Optional[float] = None) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.field = field
        self.retry_after = retry_after


@dataclass
class HttpRequest:
    """One parsed request: head fields plus the raw body."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes = b""
    client: str = ""
    #: The host element of the peer's socket address tuple, verbatim.
    #: ``client`` is a *display* string (``host:port``, with IPv6
    #: hosts bracketed); anything keying on the peer — the rate
    #: limiter's buckets — must use this field instead of parsing the
    #: display string, which would truncate ``::1`` at its last colon.
    client_host: str = ""

    @property
    def keep_alive(self) -> bool:
        """HTTP/1.1 keep-alive semantics (``Connection: close`` opts out)."""
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> Dict[str, Any]:
        """The body as a JSON object (400 ``bad_request`` otherwise)."""
        if not self.body:
            raise ApiError(400, "bad_request", "request body is empty")
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise ApiError(400, "bad_request",
                           f"request body is not valid JSON: {error}") \
                from None
        if not isinstance(payload, dict):
            raise ApiError(400, "bad_request",
                           f"request body must be a JSON object, got "
                           f"{type(payload).__name__}")
        return payload


def parse_head(head: bytes, client: str = "",
               client_host: str = "") -> HttpRequest:
    """Parse the request line + headers (everything before the body).

    ``head`` is the byte block up to and including the blank line.
    Raises :class:`ProtocolError` on malformed framing — the server
    answers those with a plain 400 and closes the connection.
    """
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 total
        raise ProtocolError("request head is not decodable") from None
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise ProtocolError(f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    path, _, raw_query = target.partition("?")
    query: Dict[str, str] = {}
    if raw_query:
        for pair in raw_query.split("&"):
            name, _, value = pair.partition("=")
            if name:
                query[name] = value
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            raise ProtocolError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    return HttpRequest(method=method.upper(), path=path, query=query,
                       headers=headers, client=client,
                       client_host=client_host)


# -- request body validation --------------------------------------------------


def _reject_unknown(payload: Mapping[str, Any],
                    allowed: frozenset) -> None:
    for name in payload:
        if name not in allowed:
            raise ApiError(400, "bad_request",
                           f"unknown request field {name!r}",
                           field=str(name))


def _coerce_keywords(value: Any, field_name: str) -> List[str]:
    if isinstance(value, str):
        value = value.split()
    if not isinstance(value, list) \
            or not all(isinstance(item, str) for item in value):
        raise ApiError(400, "invalid_query",
                       f"{field_name} must be a list of strings or a "
                       f"whitespace-separated string", field=field_name)
    if not value:
        raise ApiError(400, "invalid_query",
                       f"{field_name} must not be empty",
                       field=field_name)
    return value


def _coerce_int(payload: Mapping[str, Any], name: str,
                default: int) -> int:
    value = payload.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ApiError(400, "invalid_query",
                       f"{name} must be an integer, got "
                       f"{type(value).__name__}", field=name)
    return value


def _coerce_choice(payload: Mapping[str, Any], name: str,
                   default: str, allowed: frozenset) -> str:
    value = payload.get(name, default)
    if not isinstance(value, str) or value.lower() not in allowed:
        raise ApiError(400, "invalid_query",
                       f"{name} must be one of "
                       f"{sorted(allowed)}, got {value!r}", field=name)
    return value.lower()


def _coerce_deadline(payload: Mapping[str, Any]) -> Optional[float]:
    value = payload.get("deadline_ms")
    if value is None:
        return None
    if isinstance(value, bool) \
            or not isinstance(value, (int, float)) or value <= 0:
        raise ApiError(400, "invalid_query",
                       f"deadline_ms must be a positive number, got "
                       f"{value!r}", field="deadline_ms")
    return float(value)


@dataclass
class SearchRequest:
    """Validated ``POST /search`` parameters."""

    keywords: List[str]
    k: int = 10
    algorithm: str = Algorithm.EAGER.value
    semantics: str = "slca"
    deadline_ms: Optional[float] = None
    spans: bool = False


@dataclass
class BatchRequest:
    """Validated ``POST /batch`` parameters."""

    queries: List[List[str]]
    k: int = 10
    algorithm: str = Algorithm.EAGER.value
    semantics: str = "slca"
    deadline_ms: Optional[float] = None
    executor: str = "thread"
    workers: Optional[int] = None


def parse_search_request(payload: Mapping[str, Any]) -> SearchRequest:
    """Validate a ``POST /search`` JSON body (strict: unknown fields
    are a 400, so a typo'd ``deadlin_ms`` cannot silently noop)."""
    _reject_unknown(payload, _SEARCH_FIELDS)
    if "keywords" not in payload:
        raise ApiError(400, "invalid_query",
                       "keywords is required", field="keywords")
    spans = payload.get("spans", False)
    if not isinstance(spans, bool):
        raise ApiError(400, "invalid_query",
                       "spans must be a boolean", field="spans")
    return SearchRequest(
        keywords=_coerce_keywords(payload["keywords"], "keywords"),
        k=_coerce_int(payload, "k", 10),
        algorithm=_coerce_choice(payload, "algorithm",
                                 Algorithm.EAGER.value, _ALGORITHMS),
        semantics=_coerce_choice(payload, "semantics", "slca",
                                 _SEMANTICS),
        deadline_ms=_coerce_deadline(payload),
        spans=spans)


def parse_batch_request(payload: Mapping[str, Any]) -> BatchRequest:
    """Validate a ``POST /batch`` JSON body (same strictness)."""
    _reject_unknown(payload, _BATCH_FIELDS)
    raw = payload.get("queries")
    if not isinstance(raw, list) or not raw:
        raise ApiError(400, "invalid_query",
                       "queries must be a non-empty list",
                       field="queries")
    queries = [_coerce_keywords(query, "queries") for query in raw]
    workers = payload.get("workers")
    if workers is not None:
        workers = _coerce_int(payload, "workers", 0)
        if workers <= 0:
            raise ApiError(400, "invalid_query",
                           f"workers must be positive, got {workers}",
                           field="workers")
    return BatchRequest(
        queries=queries,
        k=_coerce_int(payload, "k", 10),
        algorithm=_coerce_choice(payload, "algorithm",
                                 Algorithm.EAGER.value, _ALGORITHMS),
        semantics=_coerce_choice(payload, "semantics", "slca",
                                 _SEMANTICS),
        deadline_ms=_coerce_deadline(payload),
        executor=_coerce_choice(payload, "executor", "thread",
                                _EXECUTORS),
        workers=workers)


def classify_query_error(error: QueryError) -> Optional[str]:
    """Attribute a :class:`QueryError` to the request field it faults.

    ``validate_query`` raises for ``k <= 0`` and duplicate keywords;
    ``normalize_query`` for unindexable keywords.  The mapping keys off
    the stable leading words of those messages.
    """
    message = str(error)
    if message.startswith("k must be"):
        return "k"
    if "keyword" in message or "query" in message:
        return "keywords"
    return None


def query_error_to_api(error: QueryError) -> ApiError:
    """The 400 ``invalid_query`` response for a query-layer rejection."""
    return ApiError(400, "invalid_query", str(error),
                    field=classify_query_error(error))


# -- response rendering -------------------------------------------------------


def render_response(status: int, body: bytes,
                    content_type: str = "application/json",
                    keep_alive: bool = True,
                    extra_headers: Optional[Mapping[str, str]] = None
                    ) -> bytes:
    """Serialize one HTTP/1.1 response (head + body) to bytes."""
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}",
             f"Content-Type: {content_type}",
             f"Content-Length: {len(body)}",
             f"Connection: {'keep-alive' if keep_alive else 'close'}"]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body


def json_response(status: int, payload: Mapping[str, Any],
                  keep_alive: bool = True,
                  extra_headers: Optional[Mapping[str, str]] = None
                  ) -> bytes:
    """A JSON response (compact separators, sorted keys — stable)."""
    body = json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    return render_response(status, body, keep_alive=keep_alive,
                           extra_headers=extra_headers)


def error_body(error: ApiError) -> Dict[str, Any]:
    """The structured error payload for one :class:`ApiError`."""
    return {"error": {"code": error.code, "message": str(error),
                      "field": error.field}}


def error_response(error: ApiError, keep_alive: bool = True) -> bytes:
    """Render an :class:`ApiError` (adds ``Retry-After`` when set)."""
    headers: Dict[str, str] = {}
    if error.retry_after is not None:
        # Retry-After is delta-seconds; round up so a client sleeping
        # exactly that long is never early.
        headers["Retry-After"] = str(max(1, int(error.retry_after + 0.999)))
    return json_response(error.status, error_body(error),
                         keep_alive=keep_alive, extra_headers=headers)


def outcome_payload(outcome: Any, elapsed_ms: Optional[float] = None,
                    spans: Optional[List[Dict[str, Any]]] = None
                    ) -> Dict[str, Any]:
    """The ``POST /search`` response body for one SearchOutcome.

    Probabilities serialize through ``json`` (shortest-exact ``repr``
    floats), so the wire round-trip is bit-identical to the in-process
    answer — the acceptance contract of the serving PR.  ``elapsed_ms``
    is omitted for batch member outcomes (the batch carries one total).
    """
    payload: Dict[str, Any] = {
        "results": [{"code": str(result.code),
                     "label": result.label,
                     "probability": result.probability}
                    for result in outcome.results],
        "partial": outcome.partial,
        "termination_reason": outcome.termination_reason,
        "service_state": outcome.stats.get("service_state"),
    }
    # A corpus-level outcome carries its scatter/prune accounting;
    # exposing it keeps shard pruning observable over the wire.
    if "corpus" in outcome.stats:
        payload["corpus"] = outcome.stats["corpus"]
    if elapsed_ms is not None:
        payload["elapsed_ms"] = round(elapsed_ms, 3)
    if spans is not None:
        payload["spans"] = spans
    return payload
