"""Global in-flight admission control for the serving layer.

One :class:`AdmissionController` guards the whole server: a request is
admitted only while fewer than ``max_inflight`` requests hold a slot
and the server is not draining.  Overflow is the *client's* signal to
back off — the server answers 429 with ``Retry-After`` — never a queue
that grows without bound or a silent drop.

Draining (SIGTERM) flips one latch: new work is refused with 503 while
every admitted request keeps its slot until it finishes on the
generation it captured; :meth:`wait_idle` is the shutdown path's
barrier.  All state is guarded by one lock, held only for counter
flips (R010: nothing blocking runs under it — ``wait_idle`` polls with
the sleep *outside* the lock instead of a condition wait).
"""

from __future__ import annotations

import threading
import time
from typing import Dict

from repro.obs import Stopwatch


class AdmissionController:
    """Bounded in-flight slots plus the drain latch."""

    def __init__(self, max_inflight: int) -> None:
        if max_inflight <= 0:
            raise ValueError(f"max_inflight must be positive, "
                             f"got {max_inflight}")
        self.max_inflight = max_inflight
        self._lock = threading.Lock()
        self._inflight = 0  # repro: guarded-by[_lock]
        self._draining = False  # repro: guarded-by[_lock]
        self._admitted = 0  # repro: guarded-by[_lock]
        self._rejected = 0  # repro: guarded-by[_lock]
        self._refused_draining = 0  # repro: guarded-by[_lock]
        self._peak = 0  # repro: guarded-by[_lock]

    def try_acquire(self) -> bool:
        """Claim one slot; False when full or draining (no blocking)."""
        with self._lock:
            if self._draining:
                self._refused_draining += 1
                return False
            if self._inflight >= self.max_inflight:
                self._rejected += 1
                return False
            self._inflight += 1
            self._admitted += 1
            if self._inflight > self._peak:
                self._peak = self._inflight
            return True

    def release(self) -> None:
        """Return a slot (every successful ``try_acquire`` must pair)."""
        with self._lock:
            if self._inflight <= 0:
                raise RuntimeError("release() without a matching "
                                   "try_acquire()")
            self._inflight -= 1

    def begin_drain(self) -> None:
        """Refuse all new work from now on (idempotent)."""
        with self._lock:
            self._draining = True

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def wait_idle(self, timeout_s: float, poll_s: float = 0.02) -> bool:
        """Block until every slot is free; False on timeout.

        Polls outside the lock — the slots are released from executor
        threads, and a condition wait here would hold the lock across
        a blocking call (the R010 hazard this package lints for).
        """
        watch = Stopwatch().start()
        while True:
            if self.inflight() == 0:
                return True
            if watch.elapsed >= timeout_s:
                return self.inflight() == 0
            time.sleep(poll_s)

    def stats(self) -> Dict[str, int]:
        """Cumulative admission counters (one consistent snapshot)."""
        with self._lock:
            return {"inflight": self._inflight,
                    "max_inflight": self.max_inflight,
                    "admitted": self._admitted,
                    "rejected": self._rejected,
                    "refused_draining": self._refused_draining,
                    "peak_inflight": self._peak,
                    "draining": int(self._draining)}
