"""Command-line interface.

Subcommands::

    repro generate xmark --scale 1 --ratio 0.15 -o site.pxml
    repro index site.pxml site.db
    repro stats site.db
    repro search site.db united states graduate -k 10
    repro search site.db united states --profile --metrics-json m.json
    repro batch site.db queries.txt --workers 4 --cache-size 128
    repro batch site.db queries.txt --deadline-ms 50 --max-retries 2
    repro batch site.db queries.txt --faults 'worker_crash:times=1' \
        --workers 2 --executor process
    repro batch site.db queries.txt --trace-dir trace/ --workers 2
    repro trace trace/spans.jsonl
    repro trace trace/flight-001-query_errors.json
    repro explain site.db --code 1.2.3 united states graduate
    repro twig site.db 'person[profile/education ~ "graduate"]'
    repro worlds small.pxml
    repro lint src/repro --format json -o lint.json
    repro check site.db united states --sanitize
    repro fsck site.db --repair
    repro snapshot site.db --list
    repro batch site.db queries.txt --reload-on HUP
    repro corpus build a.pxml b.pxml c.pxml -o corpus.db --shards 4
    repro corpus search corpus.db united states -k 10 --executor thread
    repro corpus fsck corpus.db --repair
    repro serve corpus.db --port 8080

``python -m repro ...`` works identically.  The global ``-v/--verbose``
flag (before the subcommand) enables DEBUG logging for the whole
``repro`` logger hierarchy.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.api import Algorithm, topk_search
from repro.core.explain import explain_result, profile_lines
from repro.datagen.dblp import generate_dblp
from repro.datagen.mondial import generate_mondial
from repro.datagen.probabilistic import make_probabilistic
from repro.datagen.xmark import generate_xmark
from repro.encoding.dewey import DeweyCode
from repro.exceptions import ReproError
from repro.index.storage import Database, load_database, save_database
from repro.obs import (FlightRecorder, MetricsCollector, SpanTracer,
                       Stopwatch, build_report, build_report_v2,
                       configure_logging, derive_trace_id,
                       render_prometheus, validate_report,
                       workers_block, write_spans)
from repro.prxml.parser import parse_pxml_file
from repro.prxml.possible_worlds import enumerate_possible_worlds
from repro.prxml.serializer import write_pxml_file
from repro.prxml.stats import document_stats
from repro.prxml.validate import validate_document


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Top-k keyword search over probabilistic XML data "
                    "(ICDE 2011 reproduction)")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="enable DEBUG logging on the 'repro' "
                             "logger hierarchy (stderr)")
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="emit a synthetic p-document")
    generate.add_argument("corpus",
                          choices=("xmark", "mondial", "dblp"))
    generate.add_argument("--scale", type=int, default=1,
                          help="XMark size factor (default 1)")
    generate.add_argument("--publications", type=int, default=5000,
                          help="DBLP record count (default 5000)")
    generate.add_argument("--ratio", type=float, default=0.15,
                          help="distributional-node ratio (default 0.15)")
    generate.add_argument("--seed", type=int, default=673)
    generate.add_argument("-o", "--output", required=True,
                          help="output .pxml path")

    index = commands.add_parser(
        "index", help="encode and index a p-document into a database dir")
    index.add_argument("document", help="input .pxml file")
    index.add_argument("database", help="output database directory")

    stats = commands.add_parser(
        "stats", help="node-type breakdown (Table II row)")
    stats.add_argument("source", help="database directory or .pxml file")

    search = commands.add_parser(
        "search", help="top-k probabilistic SLCA keyword search")
    search.add_argument("source", help="database directory or .pxml file")
    search.add_argument("keywords", nargs="+")
    search.add_argument("-k", type=int, default=10)
    search.add_argument("--algorithm", default="eager",
                        choices=[choice.value for choice in Algorithm])
    search.add_argument("--semantics", default="slca",
                        choices=("slca", "elca"),
                        help="result semantics (elca needs --algorithm "
                             "prstack or possible_worlds)")
    search.add_argument("--profile", action="store_true",
                        help="collect metrics + a per-query trace and "
                             "print the profile after the results")
    search.add_argument("--metrics-json", metavar="PATH",
                        help="write the query's repro.metrics/v1 JSON "
                             "report to PATH (docs/OBSERVABILITY.md)")
    search.add_argument("--sanitize", action="store_true",
                        help="run under the runtime invariant sanitizer "
                             "(docs/ANALYSIS.md); also enabled by "
                             "REPRO_SANITIZE=1")
    search.add_argument("--deadline-ms", type=float, default=None,
                        metavar="MS", dest="deadline_ms",
                        help="per-query wall-clock budget; on expiry "
                             "the heap so far comes back marked "
                             "partial (docs/RESILIENCE.md)")

    batch = commands.add_parser(
        "batch", help="run a query batch through one shared "
                      "QueryService (docs/SERVICE.md)")
    batch.add_argument("source", help="database directory or .pxml file")
    batch.add_argument("queries",
                       help="query file: one query per line, keywords "
                            "whitespace-separated; blank lines and "
                            "'#' comments are skipped")
    batch.add_argument("-k", type=int, default=10)
    batch.add_argument("--algorithm", default="eager",
                       choices=[choice.value for choice in Algorithm])
    batch.add_argument("--semantics", default="slca",
                       choices=("slca", "elca"))
    batch.add_argument("--workers", type=int, default=None,
                       help="fan-out width (default: serial)")
    batch.add_argument("--executor", default="thread",
                       choices=("serial", "thread", "process"),
                       help="worker model when --workers > 1: threads "
                            "share the hot caches, processes each "
                            "index their own document copy "
                            "(docs/SERVICE.md)")
    batch.add_argument("--cache-size", type=int, default=256,
                       metavar="M", dest="cache_size",
                       help="entries per service cache (default 256)")
    batch.add_argument("--metrics-json", metavar="PATH",
                       help="write the batch's repro.metrics/v2 JSON "
                            "report to PATH, with process-worker "
                            "counters merged in "
                            "(docs/OBSERVABILITY.md)")
    batch.add_argument("--metrics-prom", metavar="PATH",
                       dest="metrics_prom",
                       help="write the merged metrics as Prometheus "
                            "text exposition (0.0.4) to PATH")
    batch.add_argument("--trace-dir", metavar="DIR", dest="trace_dir",
                       help="enable end-to-end span tracing and the "
                            "flight recorder; writes spans.jsonl and "
                            "a v2 metrics.json into DIR, plus "
                            "flight-*.json dumps on query errors, "
                            "partial answers, breaker trips or "
                            "SIGUSR2 (docs/OBSERVABILITY.md)")
    batch.add_argument("--sanitize", action="store_true",
                       help="run every query under the runtime "
                            "invariant sanitizer (docs/ANALYSIS.md)")
    batch.add_argument("--deadline-ms", type=float, default=None,
                       metavar="MS", dest="deadline_ms",
                       help="per-query wall-clock budget; expired "
                            "queries return partial anytime answers "
                            "(docs/RESILIENCE.md)")
    batch.add_argument("--max-retries", type=int, default=2,
                       metavar="N", dest="max_retries",
                       help="recovery attempts per failed query "
                            "before it becomes an error outcome "
                            "(default 2)")
    batch.add_argument("--faults", metavar="SPEC", default=None,
                       help="deterministic fault injection spec, e.g. "
                            "'worker_crash:times=1' — for testing the "
                            "degradation chain (docs/RESILIENCE.md); "
                            "also via REPRO_FAULTS")
    batch.add_argument("--faults-seed", type=int, default=0,
                       metavar="N", dest="faults_seed",
                       help="seed for probabilistic (rate=) faults")
    batch.add_argument("--reload-on", choices=("HUP",), default=None,
                       metavar="SIGNAL", dest="reload_on",
                       help="hot-reload the database directory on this "
                            "signal while the batch runs; in-flight "
                            "queries drain on the old generation "
                            "(docs/STORAGE.md)")

    trace = commands.add_parser(
        "trace", help="render a span dump (spans.jsonl) or a flight-"
                      "recorder dump written by 'repro batch "
                      "--trace-dir' (docs/OBSERVABILITY.md)")
    trace.add_argument("dump",
                       help="a spans.jsonl file (rendered as the span "
                            "tree) or a flight-*.json dump (rendered "
                            "as the event window)")
    trace.add_argument("--limit", type=int, default=200,
                       help="maximum spans/records printed "
                            "(default 200)")

    explain = commands.add_parser(
        "explain", help="decompose one node's SLCA probability")
    explain.add_argument("source", help="database directory or .pxml file")
    explain.add_argument("keywords", nargs="+")
    explain.add_argument("--code", required=True,
                         help="extended Dewey code, e.g. 1.M1.I2.1")

    twig = commands.add_parser(
        "twig", help="probabilistic twig (tree-pattern) query")
    twig.add_argument("source", help="database directory or .pxml file")
    twig.add_argument("pattern",
                      help='e.g. \'movie[title ~ "texas"]//actor\'')
    twig.add_argument("-k", type=int, default=10)

    worlds = commands.add_parser(
        "worlds", help="enumerate the possible worlds of a small p-doc")
    worlds.add_argument("document", help="input .pxml file")
    worlds.add_argument("--limit", type=int, default=20,
                        help="print at most this many worlds")

    lint = commands.add_parser(
        "lint", help="run the probability-aware static analysis "
                     "(rules R001-R007, docs/ANALYSIS.md)")
    lint.add_argument("paths", nargs="+",
                      help="python files or directories to lint")
    lint.add_argument("--format", choices=("text", "json"),
                      default="text", help="output format")
    lint.add_argument("-o", "--output", metavar="PATH",
                      help="write the report there instead of stdout")
    lint.add_argument("--rules", metavar="IDS",
                      help="comma-separated rule ids to run "
                           "(default: all)")

    check = commands.add_parser(
        "check", help="validate a p-document / database; with keywords, "
                      "cross-check the algorithms on a query")
    check.add_argument("source", help="database directory or .pxml file")
    check.add_argument("keywords", nargs="*",
                       help="optional query: run PrStack and EagerTopK "
                            "and require identical answers")
    check.add_argument("-k", type=int, default=10)
    check.add_argument("--sanitize", action="store_true",
                       help="run the query under the runtime invariant "
                            "sanitizer (docs/ANALYSIS.md)")
    check.add_argument("--concurrency", action="store_true",
                       help="stress the service from many threads under "
                            "the instrumented-lock witness "
                            "(docs/ANALYSIS.md, rules R008-R012)")
    check.add_argument("--threads", type=int, default=None,
                       help="worker threads for --concurrency "
                            "(default 6)")
    check.add_argument("--iterations", type=int, default=None,
                       help="operations per worker for --concurrency "
                            "(default 40)")

    fsck = commands.add_parser(
        "fsck", help="verify a database directory against its "
                     "manifests; classify and optionally repair "
                     "corruption (docs/STORAGE.md)")
    fsck.add_argument("database", help="database directory")
    fsck.add_argument("--repair", action="store_true",
                      help="quarantine damaged files, rebuild exact "
                           "postings from an intact document, or roll "
                           "CURRENT back to the newest loadable "
                           "generation")

    snapshot = commands.add_parser(
        "snapshot", help="list a database's snapshot generations, or "
                         "write the current data as a new generation "
                         "(also migrates a legacy flat layout)")
    snapshot.add_argument("database", help="database directory")
    snapshot.add_argument("--list", action="store_true", dest="list_",
                          help="list generations instead of writing "
                               "a new one")

    serve = commands.add_parser(
        "serve", help="serve top-k search over HTTP: POST /search, "
                      "POST /batch, GET /health, GET /metrics, "
                      "POST /reload (docs/SERVING.md)")
    serve.add_argument("source", help="database directory or .pxml file")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="listen port; 0 picks an ephemeral port "
                            "(printed on startup)")
    serve.add_argument("--max-inflight", type=int, default=8,
                       metavar="N", dest="max_inflight",
                       help="global in-flight request cap; overflow "
                            "answers 429 with Retry-After (default 8)")
    serve.add_argument("--rate", type=float, default=0.0,
                       help="per-client token-bucket rate in "
                            "requests/second (0 disables limiting)")
    serve.add_argument("--burst", type=float, default=20.0,
                       help="token-bucket depth (default 20)")
    serve.add_argument("--client-header", default="x-client-id",
                       metavar="NAME", dest="client_header",
                       help="header naming the rate-limit client; "
                            "only consulted with "
                            "--trust-client-header (falls back to "
                            "the peer address)")
    serve.add_argument("--trust-client-header", action="store_true",
                       dest="trust_client_header",
                       help="key rate-limit buckets on the "
                            "client-supplied header; only safe "
                            "behind an authenticating proxy "
                            "(default: key on the peer address)")
    serve.add_argument("--cache-size", type=int, default=256,
                       metavar="M", dest="cache_size",
                       help="entries per service cache (default 256)")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       metavar="S", dest="drain_timeout",
                       help="seconds shutdown waits for in-flight "
                            "requests (default 30)")
    serve.add_argument("--faults", metavar="SPEC", default=None,
                       help="deterministic fault injection spec "
                            "(docs/RESILIENCE.md); also via "
                            "REPRO_FAULTS")
    serve.add_argument("--faults-seed", type=int, default=0,
                       metavar="N", dest="faults_seed",
                       help="seed for probabilistic (rate=) faults")

    corpus = commands.add_parser(
        "corpus", help="shard many p-documents into one searchable "
                       "corpus; scatter-gather top-k with bound-driven "
                       "shard pruning (docs/CORPUS.md)")
    corpus_commands = corpus.add_subparsers(dest="corpus_command",
                                            required=True)

    corpus_build = corpus_commands.add_parser(
        "build", help="shard .pxml documents into a corpus directory")
    corpus_build.add_argument("documents", nargs="+",
                              help=".pxml files; argument order is the "
                                   "corpus's global document order")
    corpus_build.add_argument("-o", "--out", required=True,
                              help="corpus directory to create/overwrite")
    corpus_build.add_argument("--shards", type=int, default=4,
                              help="shard count (default 4)")
    corpus_build.add_argument("--strategy", default="hash",
                              choices=("hash", "size"),
                              help="document placement: 'hash' is "
                                   "stable under re-builds, 'size' "
                                   "balances node counts (default hash)")
    corpus_build.add_argument("--replicas", type=int, default=1,
                              help="bit-identical copies of every "
                                   "shard; queries fail over and "
                                   "hedge across them "
                                   "(docs/CORPUS.md; default 1)")

    corpus_search = corpus_commands.add_parser(
        "search", help="top-k search across all shards, merged into "
                       "one global answer list")
    corpus_search.add_argument("corpus", help="corpus directory")
    corpus_search.add_argument("keywords", nargs="+")
    corpus_search.add_argument("-k", type=int, default=10)
    corpus_search.add_argument("--algorithm", default="eager",
                               choices=[choice.value
                                        for choice in Algorithm])
    corpus_search.add_argument("--semantics", default="slca",
                               choices=("slca", "elca"))
    corpus_search.add_argument("--executor", default="serial",
                               choices=("serial", "thread", "process"),
                               help="shard fan-out model (default "
                                    "serial)")
    corpus_search.add_argument("--workers", type=int, default=None,
                               help="concurrent shard searches "
                                    "(default: min(4, shards))")
    corpus_search.add_argument("--deadline-ms", type=float, default=None,
                               metavar="MS", dest="deadline_ms",
                               help="whole-query wall-clock budget "
                                    "shared by every shard")
    corpus_search.add_argument("--json", action="store_true",
                               help="print the outcome as JSON (results "
                                    "plus corpus scatter/prune stats)")

    corpus_fsck = corpus_commands.add_parser(
        "fsck", help="fsck every shard's database directory; damaged "
                     "shards quarantine without taking the corpus down")
    corpus_fsck.add_argument("corpus", help="corpus directory")
    corpus_fsck.add_argument("--repair", action="store_true",
                             help="repair/quarantine damaged shard "
                                  "files (docs/STORAGE.md)")

    chaos = commands.add_parser(
        "chaos", help="seeded chaos suite against a live served "
                      "replicated corpus: replica kills, stragglers "
                      "with hedging, torn reads, clock skew; exits "
                      "non-zero on any invariant violation "
                      "(docs/RESILIENCE.md)")
    chaos.add_argument("corpus", help="corpus directory built with "
                                      "--replicas 2 or more")
    chaos.add_argument("--seed", type=int, default=7,
                       help="workload + fault RNG seed (default 7)")
    chaos.add_argument("--queries", type=int, default=12,
                       help="queries per phase (default 12)")
    chaos.add_argument("-k", type=int, default=5)
    chaos.add_argument("--deadline-ms", type=float, default=None,
                       metavar="MS", dest="deadline_ms",
                       help="per-request deadline each chaos query "
                            "carries (default 1500)")
    chaos.add_argument("--epsilon-ms", type=float, default=None,
                       metavar="MS", dest="epsilon_ms",
                       help="allowed overshoot past the deadline "
                            "before it counts as a violation "
                            "(default 750)")
    chaos.add_argument("--json", action="store_true",
                       help="print the full repro.chaos/v1 report")
    chaos.add_argument("--out", metavar="FILE", default=None,
                       help="also write the report JSON to FILE")
    return parser


def _open_database(source: str) -> Database:
    if source.endswith(".pxml"):
        document = parse_pxml_file(source)
        return Database.from_document(document)
    return load_database(source)


def _cmd_generate(options) -> int:
    if options.corpus == "xmark":
        document = generate_xmark(scale=options.scale, seed=options.seed)
    elif options.corpus == "mondial":
        document = generate_mondial(seed=options.seed)
    else:
        document = generate_dblp(publications=options.publications,
                                 seed=options.seed)
    probabilistic = make_probabilistic(
        document, distributional_ratio=options.ratio, seed=options.seed)
    validate_document(probabilistic)
    write_pxml_file(probabilistic, options.output)
    stats = document_stats(probabilistic)
    print(stats.as_table_row(options.output))
    return 0


def _cmd_index(options) -> int:
    with Stopwatch() as watch:
        document = parse_pxml_file(options.document)
        database = Database.from_document(document)
        save_database(database, options.database)
    print(f"indexed {len(document)} nodes, "
          f"{len(database.index)} terms into {options.database} "
          f"in {watch.elapsed:.2f}s")
    return 0


def _cmd_stats(options) -> int:
    database = _open_database(options.source)
    stats = document_stats(database.document)
    print(stats.as_table_row(options.source))
    print(f"height={stats.height} leaves={stats.leaf_nodes:,} "
          f"max_fanout={stats.max_fanout} "
          f"distributional={stats.distributional_ratio:.1%}")
    return 0


def _cmd_search(options) -> int:
    database = _open_database(options.source)
    instrumented = options.profile or options.metrics_json
    collector = (MetricsCollector(trace=options.profile)
                 if instrumented else None)
    with Stopwatch() as watch:
        outcome = topk_search(database, options.keywords, options.k,
                              options.algorithm,
                              semantics=options.semantics,
                              collector=collector,
                              sanitize=True if options.sanitize else None,
                              deadline=options.deadline_ms)
    marker = (f" [PARTIAL: {outcome.termination_reason}]"
              if outcome.partial else "")
    print(f"{len(outcome)} answer(s) in {watch.elapsed_ms:.1f} ms "
          f"({options.algorithm}, {options.semantics}){marker}")
    if outcome.partial:
        print("partial anytime answer: each probability is exact for "
              "its node; more answers may exist (docs/RESILIENCE.md)")
    sanitizer_summary = outcome.stats.get("sanitizer")
    if sanitizer_summary:
        print(f"sanitizer: {sanitizer_summary['checks']} checks, "
              f"{sanitizer_summary['violations']} violations")
    for rank, result in enumerate(outcome, start=1):
        print(f"{rank:3d}. Pr={result.probability:.6f}  "
              f"<{result.label}> {result.code}")
    if options.profile:
        print("\n".join(profile_lines(outcome)))
    if options.metrics_json:
        report = build_report(options.keywords, options.k,
                              options.algorithm, options.semantics,
                              outcome, watch.elapsed_ms)
        try:
            with open(options.metrics_json, "w", encoding="utf-8") as sink:
                json.dump(report, sink, indent=2)
                sink.write("\n")
        except OSError as error:
            print(f"error: cannot write metrics report: {error}",
                  file=sys.stderr)
            return 1
        print(f"metrics report written to {options.metrics_json}")
    return 0


def _cmd_batch(options) -> int:
    from repro.resilience import parse_faults
    from repro.service import QueryService, load_query_file
    # The reload handler is armed before the (slow) initial load so an
    # early signal is absorbed instead of killing the process; it
    # late-binds the service through this cell.
    service_cell: List[object] = []
    restore_signal = _install_reload_handler(options, service_cell)
    recorder = FlightRecorder() if options.trace_dir else None
    restore_dump = _install_dump_handler(options, recorder)
    try:
        queries = load_query_file(options.queries)
        database = _open_database(options.source)
        collector = MetricsCollector()
        service = QueryService(database, cache_size=options.cache_size,
                               collector=collector, recorder=recorder)
        service_cell.append(service)
        faults = (parse_faults(options.faults,
                               seed=options.faults_seed)
                  if options.faults else None)
        tracer = _build_tracer(options, queries, recorder)
        return _run_batch(options, queries, service, collector, faults,
                          tracer, recorder)
    finally:
        restore_dump()
        restore_signal()


def _build_tracer(options, queries, recorder):
    """A span tracer for ``--trace-dir`` runs, or None.

    The trace id is derived from the workload, not drawn at random, so
    a seeded fault-injected batch reproduces the same id run after run
    (the determinism contract the span tests pin down).
    """
    if not options.trace_dir:
        return None
    trace_id = derive_trace_id(
        options.source, options.algorithm, options.semantics,
        options.k, options.faults or "", options.faults_seed,
        *(" ".join(query) for query in queries))
    return SpanTracer(trace_id=trace_id, recorder=recorder)


def _run_batch(options, queries, service, collector, faults,
               tracer=None, recorder=None) -> int:
    batch = service.batch_search(
        queries, k=options.k, algorithm=options.algorithm,
        semantics=options.semantics, workers=options.workers,
        executor=options.executor,
        sanitize=True if options.sanitize else None,
        deadline_ms=options.deadline_ms,
        max_retries=options.max_retries, faults=faults,
        tracer=tracer)
    stats = batch.stats
    print(f"{len(batch)} queries ({stats['distinct_term_sets']} "
          f"distinct term sets) in {batch.elapsed_ms:.1f} ms "
          f"({stats['executor']} x{stats['workers']}, "
          f"{options.algorithm}, {options.semantics})")
    cache = stats["cache"]
    for name in ("match_entries", "code_lists", "results"):
        counters = cache[name]
        print(f"cache {name}: {counters['hits']} hits, "
              f"{counters['misses']} misses, "
              f"{counters['evictions']} evictions")
    resilience = stats["resilience"]
    flagged = {name: value for name, value in resilience.items()
               if isinstance(value, int) and value
               and name not in ("max_retries", "deadline_ms")}
    if flagged:
        print("resilience: " + ", ".join(
            f"{name}={value}" for name, value in sorted(flagged.items())))
    storage = stats["storage"]
    if storage["generation"] is not None:
        reloads = storage["reloads"]
        print(f"storage: generation {storage['generation']} "
              f"(epoch {storage['epoch']}), reloads "
              f"{reloads['successes']}/{reloads['attempts']} ok")
    for query, outcome in zip(queries, batch):
        top = outcome.results[0] if outcome.results else None
        answer = (f"top Pr={top.probability:.6f} <{top.label}> "
                  f"{top.code}" if top else "no answers")
        if outcome.termination_reason == "error":
            answer = f"ERROR: {outcome.stats.get('error', 'unknown')}"
        elif outcome.partial:
            answer += f" [partial: {outcome.termination_reason}]"
        print(f"  {' '.join(query)}: {len(outcome)} answer(s), "
              f"{answer}")
    if options.metrics_json:
        report = _build_batch_report(options, queries, batch, collector)
        try:
            with open(options.metrics_json, "w",
                      encoding="utf-8") as sink:
                json.dump(report, sink, indent=2)
                sink.write("\n")
        except OSError as error:
            print(f"error: cannot write metrics report: {error}",
                  file=sys.stderr)
            return 1
        print(f"metrics report written to {options.metrics_json}")
    if options.metrics_prom:
        try:
            with open(options.metrics_prom, "w",
                      encoding="utf-8") as sink:
                sink.write(render_prometheus(collector.snapshot()))
        except OSError as error:
            print(f"error: cannot write Prometheus exposition: "
                  f"{error}", file=sys.stderr)
            return 1
        print(f"Prometheus exposition written to "
              f"{options.metrics_prom}")
    if options.trace_dir:
        return _write_trace_outputs(options, queries, batch, collector,
                                    tracer, recorder)
    return 0


def _build_batch_report(options, queries, batch, collector,
                        spans=None):
    """The batch's ``repro.metrics/v2`` report: the v1 shape with the
    merged (coordinator + process workers) metrics block, plus the
    worker-provenance / resilience / span blocks when present."""
    from repro.core.result import SearchOutcome
    stats = batch.stats
    summary = SearchOutcome(results=[], stats=dict(stats))
    summary.stats["metrics"] = collector.snapshot()
    merged = stats.get("workers_merged")
    workers = (workers_block(list(merged["pids"]),
                             merged["merged_snapshots"])
               if merged else None)
    resilience = dict(stats.get("resilience") or {}) or None
    return validate_report(build_report_v2(
        [" ".join(query) for query in queries], options.k,
        options.algorithm, options.semantics, summary,
        batch.elapsed_ms, spans=spans, workers=workers,
        resilience=resilience))


def _write_trace_outputs(options, queries, batch, collector, tracer,
                         recorder) -> int:
    """Materialize a ``--trace-dir``: spans.jsonl, the v2 metrics.json
    (spans included), and a flight dump when the batch hit trouble."""
    import os
    directory = options.trace_dir
    spans = tracer.export()
    try:
        os.makedirs(directory, exist_ok=True)
        write_spans(spans, os.path.join(directory, "spans.jsonl"))
        report = _build_batch_report(options, queries, batch,
                                     collector, spans=spans)
        with open(os.path.join(directory, "metrics.json"), "w",
                  encoding="utf-8") as sink:
            json.dump(report, sink, indent=2)
            sink.write("\n")
    except (OSError, ReproError) as error:
        print(f"error: cannot write trace outputs: {error}",
              file=sys.stderr)
        return 1
    print(f"trace {tracer.trace_id}: {len(spans)} span(s) written "
          f"to {directory}")
    resilience = batch.stats.get("resilience", {})
    trouble = {name: resilience[name]
               for name in ("query_errors", "deadline_expired",
                            "circuit_open_skips")
               if resilience.get(name)}
    partials = sum(1 for outcome in batch if outcome.partial)
    if partials:
        trouble["partial_answers"] = partials
    if trouble:
        # Most severe trouble names the dump file.
        order = ("query_errors", "circuit_open_skips",
                 "deadline_expired", "partial_answers")
        reason = next(name for name in order if name in trouble)
        path = recorder.dump(directory, reason,
                             extra={"trace_id": tracer.trace_id,
                                    "trouble": trouble})
        print(f"flight recorder dumped to {path} "
              f"({', '.join(f'{k}={v}' for k, v in sorted(trouble.items()))})")
    return 0


def _install_dump_handler(options, recorder):
    """Arm SIGUSR2 -> on-demand flight dump; returns the restore
    callback.  Active only with ``--trace-dir`` (the dump needs a
    destination); the handler must never take the batch down, so a
    failed dump is reported on stderr and ignored."""
    if not options.trace_dir or recorder is None:
        return lambda: None
    import signal
    from repro.service.signals import safe_signal
    if not hasattr(signal, "SIGUSR2"):  # pragma: no cover - windows
        return lambda: None

    def handle(signum, frame):
        try:
            path = recorder.dump(options.trace_dir, "sigusr2")
        except ReproError as error:
            print(f"flight dump failed: {error}", file=sys.stderr)
        else:
            print(f"flight recorder dumped to {path}", file=sys.stderr)

    return safe_signal(signal.SIGUSR2, handle, "SIGUSR2 flight dump")


def _cmd_trace(options) -> int:
    from repro.obs import (load_flight_dump, load_spans,
                           render_flight_dump, render_span_tree,
                           validate_spans)
    if options.dump.endswith(".jsonl"):
        spans = validate_spans(load_spans(options.dump))
        trace_id = spans[0]["trace_id"] if spans else "(empty)"
        print(f"trace {trace_id}: {len(spans)} span(s)")
        print("\n".join(render_span_tree(spans, limit=options.limit)))
        return 0
    document = load_flight_dump(options.dump)
    print(f"flight dump {options.dump}")
    print("\n".join(render_flight_dump(document, limit=options.limit)))
    return 0


def _install_reload_handler(options, service_cell):
    """Arm ``--reload-on HUP``; returns the restore callback.

    The handler hot-reloads the service from its database directory.
    A reload that fails (corrupt snapshot, missing directory) is
    reported on stderr and the old generation keeps serving — a signal
    must never take the batch down.  ``service_cell`` is a list the
    caller appends the service to once it exists; a signal arriving
    before that is acknowledged and dropped.
    """
    if options.reload_on is None:
        return lambda: None
    import signal
    from repro.service.signals import safe_signal
    if options.source.endswith(".pxml"):
        raise ReproError("--reload-on needs a database directory "
                         "source (a .pxml file has no snapshot "
                         "generations to reload)")
    if not hasattr(signal, "SIGHUP"):  # pragma: no cover - windows
        raise ReproError("--reload-on HUP: this platform has no SIGHUP")

    def handle(signum, frame):
        if not service_cell:
            print("reload requested before the service finished "
                  "loading; ignored", file=sys.stderr)
            return
        try:
            state = service_cell[-1].reload()
        except ReproError as error:
            print(f"reload rejected: {error}", file=sys.stderr)
        else:
            print(f"reloaded: now serving generation "
                  f"{state.generation} (epoch {state.epoch})",
                  file=sys.stderr)

    return safe_signal(signal.SIGHUP, handle, "SIGHUP hot reload")


def _cmd_fsck(options) -> int:
    from repro.index.fsck import fsck_database
    report = fsck_database(options.database, repair=options.repair)
    print("\n".join(report.lines()))
    return report.exit_code()


def _cmd_snapshot(options) -> int:
    from repro.index.storage import (current_generation, is_legacy_layout,
                                     list_generations, read_manifest,
                                     snapshot_path)
    if options.list_:
        if is_legacy_layout(options.database):
            print(f"{options.database}: legacy flat layout (no "
                  f"generations); 'repro snapshot' migrates it")
            return 0
        generations = list_generations(options.database)
        if not generations:
            raise ReproError(f"{options.database} is not a database "
                             f"directory: no snapshots")
        current = current_generation(options.database)
        for generation in generations:
            marker = " *" if generation == current else ""
            try:
                manifest = read_manifest(
                    snapshot_path(options.database, generation))
                detail = (f"{manifest['nodes']} nodes, "
                          f"{manifest['terms']} terms")
            except ReproError as error:
                detail = f"unreadable manifest: {error}"
            print(f"{generation}{marker}  {detail}")
        return 0
    database = load_database(options.database)
    generation = save_database(database, options.database)
    print(f"wrote generation {generation} to {options.database}")
    return 0


def _cmd_explain(options) -> int:
    database = _open_database(options.source)
    code = DeweyCode.parse(options.code)
    explanation = explain_result(database.index, options.keywords, code)
    print("\n".join(explanation.lines()))
    return 0


def _cmd_twig(options) -> int:
    from repro.twig import topk_twig_search, twig_match_probability
    database = _open_database(options.source)
    with Stopwatch() as watch:
        outcome = topk_twig_search(database.index, options.pattern,
                                   options.k)
    anywhere = twig_match_probability(database.index, options.pattern)
    print(f"{len(outcome)} binding(s) in {watch.elapsed_ms:.1f} ms; "
          f"P(matches anywhere) = {anywhere:.6f}")
    for rank, result in enumerate(outcome, start=1):
        print(f"{rank:3d}. Pr={result.probability:.6f}  "
              f"<{result.label}> {result.code}")
    return 0


def _cmd_worlds(options) -> int:
    document = parse_pxml_file(options.document)
    worlds = enumerate_possible_worlds(document)
    print(f"{len(worlds)} distinct possible worlds "
          f"(raw {document.theoretical_world_count()})")
    for world in worlds[:options.limit]:
        labels = [node.label for node in world.root.iter_subtree()]
        print(f"  p={world.probability:.6g}  nodes={len(labels)}  "
              f"{' '.join(labels[:12])}"
              f"{' ...' if len(labels) > 12 else ''}")
    if len(worlds) > options.limit:
        print(f"  ... and {len(worlds) - options.limit} more")
    return 0


def _cmd_lint(options) -> int:
    from repro.analysis import (build_lint_report, default_rules,
                                lint_paths, select_rules)
    rules = (select_rules(options.rules.split(","))
             if options.rules else default_rules())
    result = lint_paths(options.paths, rules=rules)
    if options.format == "json":
        report = build_lint_report(result, options.paths, rules)
        rendered = json.dumps(report, indent=2) + "\n"
    else:
        rendered = "\n".join(result.render_lines()) + "\n"
    if options.output:
        try:
            with open(options.output, "w", encoding="utf-8") as sink:
                sink.write(rendered)
        except OSError as error:
            print(f"error: cannot write lint report: {error}",
                  file=sys.stderr)
            return 2
        print(f"lint report written to {options.output}")
    else:
        sys.stdout.write(rendered)
    return 0 if result.clean else 1


def _run_concurrency_check(database, options) -> int:
    """``check --concurrency``: stress the service under the witness."""
    import tempfile

    from repro.analysis.concurrency.stress import (DEFAULT_ITERATIONS,
                                                   DEFAULT_THREADS,
                                                   run_stress)
    threads = options.threads or DEFAULT_THREADS
    iterations = options.iterations or DEFAULT_ITERATIONS
    with tempfile.TemporaryDirectory(prefix="repro-stress-") as dumps:
        summary = run_stress(database, threads=threads,
                             iterations=iterations, dump_dir=dumps)
    ops = summary["ops"]
    witness = summary["witness"]
    print(f"concurrency: {threads} threads x {iterations} ops over "
          f"{summary['queries']} queries — "
          f"{ops['searches']} searches, {ops['batches']} batches, "
          f"{ops['reloads']} reloads, {ops['dumps']} signal dumps")
    print(f"witness: {witness['total_acquisitions']} lock "
          f"acquisitions, {len(witness['order_edges'])} order "
          f"edge(s), {len(witness['violations'])} violation(s)")
    for violation in witness["violations"]:
        print(f"  violation: {violation}", file=sys.stderr)
    for error in summary["errors"]:
        print(f"  error: {error}", file=sys.stderr)
    if not summary["ok"]:
        print("concurrency check FAILED", file=sys.stderr)
        return 1
    print("concurrency check ok: answers stable, lock order respected")
    return 0


def _cmd_check(options) -> int:
    database = _open_database(options.source)
    validate_document(database.document)
    print(f"document ok: {len(database.document)} nodes validate")
    if options.concurrency:
        status = _run_concurrency_check(database, options)
        if status != 0:
            return status
    if not options.keywords:
        return 0
    sanitize = True if options.sanitize else None
    outcomes = {}
    for algorithm in ("prstack", "eager"):
        with Stopwatch() as watch:
            outcomes[algorithm] = topk_search(
                database, options.keywords, options.k, algorithm,
                sanitize=sanitize)
        outcome = outcomes[algorithm]
        line = (f"{algorithm}: {len(outcome)} answer(s) "
                f"in {watch.elapsed_ms:.1f} ms")
        summary = outcome.stats.get("sanitizer")
        if summary:
            line += (f", sanitizer ran {summary['checks']} checks "
                     f"({summary['bounds_recorded']} bounds recorded)")
        print(line)
    left = [(r.code, round(r.probability, 9))
            for r in outcomes["prstack"].results]
    right = [(r.code, round(r.probability, 9))
             for r in outcomes["eager"].results]
    if left != right:
        print("error: PrStack and EagerTopK disagree on the answers",
              file=sys.stderr)
        return 1
    print("check ok: PrStack and EagerTopK agree")
    return 0


def _cmd_corpus(options) -> int:
    if options.corpus_command == "build":
        return _cmd_corpus_build(options)
    if options.corpus_command == "search":
        return _cmd_corpus_search(options)
    return _cmd_corpus_fsck(options)


def _cmd_corpus_build(options) -> int:
    from repro.corpus import build_corpus
    documents = []
    for path in options.documents:
        documents.append((path, parse_pxml_file(path)))
    with Stopwatch() as watch:
        manifest = build_corpus(documents, options.out,
                                shards=options.shards,
                                strategy=options.strategy,
                                replicas=options.replicas)
    total_nodes = sum(doc.nodes for doc in manifest.documents)
    replica_note = (f", {manifest.replicas} replica(s) each"
                    if manifest.replicas > 1 else "")
    print(f"built corpus {options.out}: {len(manifest.documents)} "
          f"document(s), {total_nodes} nodes across "
          f"{manifest.shard_count} shard(s) ({manifest.strategy}"
          f"{replica_note}) in {watch.elapsed:.2f}s")
    for shard in range(manifest.shard_count):
        members = manifest.shard_documents(shard)
        nodes = sum(doc.nodes for doc in members)
        print(f"  {manifest.shard_names[shard]}: {len(members)} "
              f"document(s), {nodes} nodes")
    return 0


def _cmd_corpus_search(options) -> int:
    from repro.corpus import CorpusService
    collector = MetricsCollector()
    service = CorpusService(options.corpus, collector=collector)
    with Stopwatch() as watch:
        outcome = service.search(options.keywords, k=options.k,
                                 algorithm=options.algorithm,
                                 semantics=options.semantics,
                                 executor=options.executor,
                                 workers=options.workers,
                                 deadline=options.deadline_ms)
    corpus_stats = outcome.stats["corpus"]
    if options.json:
        payload = {
            "results": [{"code": str(result.code),
                         "label": result.label,
                         "probability": result.probability}
                        for result in outcome],
            "partial": outcome.partial,
            "termination_reason": outcome.termination_reason,
            "corpus": corpus_stats,
            "elapsed_ms": watch.elapsed_ms,
        }
        json.dump(payload, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0
    marker = (f" [PARTIAL: {outcome.termination_reason}]"
              if outcome.partial else "")
    print(f"{len(outcome)} answer(s) in {watch.elapsed_ms:.1f} ms "
          f"({options.algorithm}, {options.semantics}, "
          f"{corpus_stats['executor']}){marker}")
    print(f"shards: {corpus_stats['searched']} searched, "
          f"{corpus_stats['pruned']} pruned, "
          f"{corpus_stats['no_match']} without matches, "
          f"{corpus_stats['failed']} failed "
          f"of {corpus_stats['shards']}")
    for rank, result in enumerate(outcome, start=1):
        print(f"{rank:3d}. Pr={result.probability:.6f}  "
              f"<{result.label}> {result.code}")
    return 0


def _cmd_corpus_fsck(options) -> int:
    from repro.corpus import corpus_fsck
    status = 0
    for shard, report in corpus_fsck(options.corpus,
                                     repair=options.repair):
        for line in report.lines():
            print(f"[{shard}] {line}")
        status = max(status, report.exit_code())
    return status


def _cmd_chaos(options) -> int:
    from repro.resilience.chaos import (DEFAULT_DEADLINE_MS,
                                        DEFAULT_EPSILON_MS, run_chaos)
    deadline_ms = options.deadline_ms if options.deadline_ms \
        is not None else DEFAULT_DEADLINE_MS
    epsilon_ms = options.epsilon_ms if options.epsilon_ms \
        is not None else DEFAULT_EPSILON_MS
    report = run_chaos(options.corpus, seed=options.seed,
                       queries=options.queries, k=options.k,
                       deadline_ms=deadline_ms,
                       epsilon_ms=epsilon_ms)
    if options.out:
        with open(options.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
    if options.json:
        json.dump(report, sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        for phase in report["phases"]:
            hedges = phase["hedges"]
            print(f"[{phase['phase']}] {phase['answered']}/"
                  f"{phase['queries']} answered, "
                  f"{phase['partial']} partial, "
                  f"{phase['mismatches']} mismatched, "
                  f"{phase['overshoots']} overshot "
                  f"(max {phase['max_wall_ms']:.0f}ms); hedges "
                  f"fired={hedges['fired']} won={hedges['won']} "
                  f"lost={hedges['lost']}")
        for violation in report["violations"]:
            print(f"VIOLATION: {violation}")
        verdict = "OK" if report["ok"] else \
            f"{len(report['violations'])} violation(s)"
        print(f"chaos seed {report['seed']}: {verdict}")
    return 0 if report["ok"] else 1


def _cmd_serve(options) -> int:
    import asyncio
    from repro.corpus import CorpusService, is_corpus_directory
    from repro.resilience import parse_faults
    from repro.resilience.faults import faults_from_env
    from repro.serve import ServeConfig, ServeServer
    from repro.service import QueryService

    collector = MetricsCollector()
    if (not options.source.endswith(".pxml")
            and is_corpus_directory(options.source)):
        service = CorpusService(options.source,
                                cache_size=options.cache_size,
                                collector=collector)
    else:
        database = _open_database(options.source)
        service = QueryService(database, cache_size=options.cache_size,
                               collector=collector)
    faults = (parse_faults(options.faults, seed=options.faults_seed)
              if options.faults else faults_from_env())
    config = ServeConfig(host=options.host, port=options.port,
                         max_inflight=options.max_inflight,
                         rate=options.rate, burst=options.burst,
                         client_header=options.client_header.lower(),
                         trust_client_header=options.trust_client_header,
                         drain_timeout_s=options.drain_timeout)
    server = ServeServer(service, config, collector=collector,
                         faults=faults)

    def announce(port):
        # Flushed eagerly so a parent process polling stdout (the CI
        # smoke job, the e2e tests) can discover an ephemeral port.
        print(f"serving on http://{options.host}:{port} "
              f"(max_inflight={options.max_inflight})", flush=True)

    return asyncio.run(server.run_async(install_signals=True,
                                        on_ready=announce))


_HANDLERS = {
    "generate": _cmd_generate,
    "index": _cmd_index,
    "stats": _cmd_stats,
    "search": _cmd_search,
    "batch": _cmd_batch,
    "trace": _cmd_trace,
    "explain": _cmd_explain,
    "twig": _cmd_twig,
    "worlds": _cmd_worlds,
    "lint": _cmd_lint,
    "check": _cmd_check,
    "fsck": _cmd_fsck,
    "snapshot": _cmd_snapshot,
    "serve": _cmd_serve,
    "corpus": _cmd_corpus,
    "chaos": _cmd_chaos,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    options = build_parser().parse_args(argv)
    configure_logging(verbose=options.verbose)
    try:
        return _HANDLERS[options.command](options)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        # Executor-backed commands shut their pools down on the way up
        # (cancel_futures=True), so no worker is orphaned; report the
        # conventional 128+SIGINT code instead of a raw traceback.
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
