"""Persistent query serving over one prepared database.

The :class:`QueryService` keeps a prepared
:class:`~repro.index.storage.Database` (or bare index) together with
the reusable per-document caches of :mod:`repro.index.cache`, executes
single queries and whole batches without redundant per-query work, and
reports cache traffic through the :mod:`repro.obs` collector.  See
docs/SERVICE.md for the architecture, the cache keys, and the worker
model.
"""

from repro.service.service import (BatchOutcome, QueryService,
                                   load_query_file)

__all__ = ["QueryService", "BatchOutcome", "load_query_file"]
