"""Persistent query serving over one prepared database.

The :class:`QueryService` keeps a prepared
:class:`~repro.index.storage.Database` (or bare index) together with
the reusable per-document caches of :mod:`repro.index.cache`, executes
single queries and whole batches without redundant per-query work, and
reports cache traffic through the :mod:`repro.obs` collector.  It can
also be built straight from a database directory and hot-reloaded to a
newer snapshot generation without dropping in-flight queries
(docs/STORAGE.md).  See docs/SERVICE.md for the architecture, the
cache keys, and the worker model.
"""

from repro.service.service import (BatchOutcome, QueryService,
                                   ServiceSource, load_query_file)
from repro.service.signals import on_main_thread, safe_signal

__all__ = ["QueryService", "BatchOutcome", "ServiceSource",
           "load_query_file", "on_main_thread", "safe_signal"]
