"""The :class:`QueryService`: batched serving over one prepared index.

One service wraps one prepared :class:`~repro.index.storage.Database`
(or bare index) and executes single queries and whole batches without
repeating per-query preparation work:

* a bundle of :class:`repro.index.cache.QueryCaches` — match-entry
  lists keyed by the normalised term tuple, per-keyword Dewey lists,
  and the query-independent path-probability memo — is threaded into
  every search it runs;
* a result-level LRU replays whole answers for repeated
  ``(terms, k, algorithm, semantics)`` queries, bypassed whenever the
  caller instruments, sanitizes or deadlines the query (those must
  really run);
* :meth:`QueryService.batch_search` executes many queries through the
  shared caches, sorting the execution order by term set so cache
  neighbours run back to back, optionally fanning out over
  ``concurrent.futures`` workers — threads share this service's hot
  caches (right for cache-heavy replay traffic), processes each build
  their own index copy once and then amortise it over their chunk
  (right for CPU-bound cold PrStack/EagerTopK work, which the GIL
  serialises under threads).

Batches degrade gracefully instead of failing wholesale
(docs/RESILIENCE.md): every query gets a per-query ``deadline_ms``
budget (expiry yields a marked *partial* outcome, never an exception),
a crashed or broken process-pool chunk is harvested around — completed
chunks keep their results — and its queries are retried down the
degradation chain (thread pool, then serial, then a per-query *error
outcome*), paced by :class:`repro.resilience.RetryPolicy` and guarded
by a :class:`repro.resilience.CircuitBreaker` that stops re-spawning a
repeatedly-dying pool.  A seeded
:class:`repro.resilience.FaultInjector` (or the ``REPRO_FAULTS``
environment variable) can strike any of those failure paths
deterministically; everything is reported as ``resilience.*`` counters
through :mod:`repro.obs` and a ``resilience`` block in the batch
stats.

The service also supports **hot reload** (docs/STORAGE.md): the index,
caches and result LRU live together in one immutable
:class:`_ServiceState`, every query dereferences that state exactly
once, and :meth:`QueryService.reload` builds a *new* state — loading
and checksum-verifying a snapshot directory off to the side — before
swapping it in with a single atomic reference assignment.  In-flight
queries drain on the generation they started with; a reload that fails
verification is rejected while the old generation keeps serving.

Keyword order is canonicalised (terms are sorted) before any cache is
consulted, so ``["a", "b"]`` and ``["b", "a"]`` hit the same entries —
the answer set only depends on the term *set*, while raw match masks
depend on term order.  See docs/SERVICE.md for the full architecture.
"""

from __future__ import annotations

import copy
import os
import threading
import time
from concurrent.futures import (BrokenExecutor, Future,
                                ProcessPoolExecutor, ThreadPoolExecutor)
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import (Any, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple, Union)

from repro.analysis.concurrency.witness import (InstrumentedLock,
                                                NULL_WITNESS,
                                                WitnessLike)
from repro.analysis.sanitizer import sanitize_from_env
from repro.core.api import (Algorithm, Source, _as_index,
                            _coerce_algorithm, topk_search,
                            validate_query)
from repro.core.result import SLCAResult, SearchOutcome
from repro.encoding.dewey import DeweyCode
from repro.exceptions import QueryError, StorageError
from repro.index.cache import (DEFAULT_CACHE_SIZE, LRUCache, QueryCaches)
from repro.index.inverted import InvertedIndex
from repro.index.storage import Database, load_database
from repro.index.tokenizer import normalize_query
from repro.obs.logging import get_logger
from repro.obs.metrics import (Collector, MetricsCollector,
                               NULL_COLLECTOR, Stopwatch)
from repro.obs.recorder import NULL_RECORDER, RecorderLike
from repro.obs.spans import (Span, SpanTracer, STATUS_ERROR,
                             STATUS_PARTIAL, TracerLike)
from repro.resilience.deadline import (Deadline, DeadlineLike,
                                       REASON_DEADLINE,
                                       REASON_STEP_BUDGET)
from repro.resilience.faults import (FaultsLike, NULL_FAULTS,
                                     faults_from_env, parse_faults)
from repro.resilience.retry import (CircuitBreaker, DEFAULT_BACKOFF_MS,
                                    DEFAULT_MAX_RETRIES, RetryPolicy)

_log = get_logger("service")

#: One query of a batch: a whitespace-separated string or a keyword
#: sequence (exactly what ``topk_search`` accepts).
Query = Union[str, Sequence[str]]

#: Executor choices understood by :meth:`QueryService.batch_search`.
EXECUTORS = ("serial", "thread", "process")

#: ``termination_reason`` of a service-synthesised error outcome.
REASON_ERROR = "error"


@dataclass
class BatchOutcome:
    """All outcomes of one batch, in the caller's original order.

    Attributes:
        outcomes: one :class:`SearchOutcome` per input query, aligned
            with the input order (execution order is the service's
            business, not the caller's).  A query that exhausted its
            deadline is marked ``partial`` with its heap so far; a
            query whose every retry failed is an *error outcome* —
            empty results, ``termination_reason == "error"`` and the
            message in ``stats["error"]`` — never a raised traceback.
        elapsed_ms: wall time of the whole batch.
        stats: batch-level counters — query counts, distinct term
            sets, executor/worker shape, the service's cumulative
            cache counters after the batch, and a ``resilience`` block
            (retries, degradations, deadline expiries, breaker state;
            docs/RESILIENCE.md).
    """

    outcomes: List[SearchOutcome]
    elapsed_ms: float
    stats: Dict[str, object] = field(default_factory=dict)

    def __iter__(self) -> Iterator[SearchOutcome]:
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)


class _ResilienceTracker:
    """Thread-safe counters for one batch's failure handling.

    Every bump is mirrored to the service collector as a
    ``resilience.<name>`` counter *and* trace event, so a metrics
    report shows the same numbers the batch stats block does, and is
    appended to the flight recorder's ring so a post-failure dump
    replays the exact retry/degradation sequence.
    """

    FIELDS = ("retries", "recovered_queries", "query_errors",
              "deadline_expired", "worker_crashes", "chunk_failures",
              "chunk_failure_queries", "pool_spawn_failures",
              "degraded_to_thread", "degraded_to_serial",
              "circuit_open_skips", "backoff_waits")

    __slots__ = ("counts", "collector", "recorder", "_lock")

    def __init__(self, collector: Collector,
                 recorder: RecorderLike = NULL_RECORDER) -> None:
        self.counts: Dict[str, int] = {name: 0 for name in self.FIELDS}
        self.collector = collector
        self.recorder = recorder
        self._lock = threading.Lock()

    def bump(self, name: str, value: int = 1) -> None:
        with self._lock:
            self.counts[name] += value
        if self.collector.enabled:
            self.collector.count(f"resilience.{name}", value)
            self.collector.event(f"resilience.{name}", value=value)
        if self.recorder.enabled:
            self.recorder.record("resilience", name, value=value)

    def backoff(self, policy: RetryPolicy, attempt: int) -> None:
        """Apply the policy's backoff for ``attempt``, counted and
        timed as ``resilience.backoff_waits`` / ``resilience.backoff``
        so retry pacing is visible in the merged report, not only in
        the wall clock."""
        delay = policy.delay_ms(attempt)
        if delay <= 0:
            return
        self.bump("backoff_waits")
        if self.collector.enabled:
            self.collector.observe_time("resilience.backoff",
                                        delay / 1000.0)
        time.sleep(delay / 1000.0)

    def note_partial(self, reason: str) -> None:
        """Count a deadline-cut outcome (not error outcomes)."""
        if reason in (REASON_DEADLINE, REASON_STEP_BUDGET):
            self.bump("deadline_expired")

    def summary(self, policy: RetryPolicy,
                deadline_ms: Optional[float], breaker: CircuitBreaker,
                injector: FaultsLike) -> Dict[str, object]:
        with self._lock:
            block: Dict[str, object] = dict(self.counts)
        block["max_retries"] = policy.max_retries
        block["deadline_ms"] = deadline_ms
        block["circuit_breaker"] = breaker.summary()
        if injector.enabled:
            block["faults"] = injector.summary()
        return block


@dataclass(frozen=True)
class _ServiceState:
    """One served generation: index plus every cache warmed against it.

    Immutable and swapped wholesale by :meth:`QueryService.reload` —
    a query that captured this state keeps a consistent view (index,
    match/Dewey/path caches and result LRU all from the *same*
    generation) no matter how many reloads land while it runs.  Caches
    are never shared across states: a cached answer from generation N
    replayed against generation N+1 could be silently wrong.

    Attributes:
        index: the inverted index being served.
        caches: the per-term and per-query caches for this index.
        results: the whole-answer replay LRU for this index.
        generation: snapshot generation name (``gNNNNNNNN``) when the
            state came from a snapshot directory, ``None`` otherwise.
        directory: the database directory the state was loaded from,
            enabling argument-less :meth:`QueryService.reload`.
        epoch: 1 for the state the service was constructed with,
            incremented by every successful reload.
    """

    index: InvertedIndex
    caches: QueryCaches
    results: LRUCache
    generation: Optional[str]
    directory: Optional[str]
    epoch: int


#: What :class:`QueryService` and :meth:`QueryService.reload` accept as
#: a data source: everything ``topk_search`` does, plus a database
#: directory path (loaded — and checksum-verified — via
#: :func:`repro.index.storage.load_database`).
ServiceSource = Union[Source, str, "os.PathLike[str]"]


class QueryService:
    """Persistent query execution over one prepared database.

    Args:
        source: what :func:`repro.core.api.topk_search` accepts — a
            p-document (indexed once, here), a prepared
            :class:`Database`, or a bare :class:`InvertedIndex` — or a
            database *directory* path, loaded and checksum-verified
            like ``load_database`` would (and hot-reloadable later via
            :meth:`reload`).
        cache_size: capacity of the match-entry and result caches (the
            per-term Dewey cache is proportionally larger; see
            :class:`repro.index.cache.QueryCaches`).
        collector: service-level :class:`repro.obs.MetricsCollector`
            receiving cache hit/miss/eviction counters
            (``service.cache.*``), query/batch counts and timings, and
            the ``resilience.*`` failure-handling counters.  Distinct
            from a per-query collector passed to :meth:`search`, which
            instruments that query alone and bypasses the result
            cache.
        breaker: the :class:`repro.resilience.CircuitBreaker` guarding
            process-pool respawns across this service's batches; the
            default opens after 2 consecutive pool breakages and
            half-opens after 30 s.
        recorder: a :class:`repro.obs.FlightRecorder` ring buffer fed
            by reloads and every ``resilience.*`` event; the CLI dumps
            it on error / partial / breaker-open / ``SIGUSR2``
            (docs/OBSERVABILITY.md).  Defaults to the no-op recorder.
        witness: an opt-in
            :class:`repro.analysis.concurrency.LockWitness`; when
            enabled the reload/stats locks and every per-state cache
            lock become named :class:`InstrumentedLock` wrappers, so
            stress tests can assert the declared lock order and the
            guarded-access discipline at runtime (docs/ANALYSIS.md).
            Defaults to :data:`~repro.analysis.concurrency.NULL_WITNESS`
            — plain locks, zero overhead.
    """

    def __init__(self, source: ServiceSource,
                 cache_size: int = DEFAULT_CACHE_SIZE,
                 collector: Optional[Collector] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 verify: bool = True,
                 recorder: Optional[RecorderLike] = None,
                 witness: Optional[WitnessLike] = None) -> None:
        self.collector = collector if collector is not None \
            else NULL_COLLECTOR
        self.recorder = recorder if recorder is not None \
            else NULL_RECORDER
        self._witness = witness if witness is not None else NULL_WITNESS
        self._cache_size = cache_size
        self._breaker = breaker if breaker is not None \
            else CircuitBreaker()
        if self._witness.enabled:
            self._reload_lock: Any = InstrumentedLock(
                "QueryService._reload_lock", self._witness)
            self._stats_lock: Any = InstrumentedLock(
                "QueryService._stats_lock", self._witness)
        else:
            self._reload_lock = threading.Lock()
            self._stats_lock = threading.Lock()
        self._reload_counts = {  # repro: guarded-by[_stats_lock]
            "attempts": 0, "successes": 0, "rejected": 0}
        self._reload_last_error: Optional[str] = None  # repro: guarded-by[_stats_lock]
        # Single-writer atomic-reference swap: writes happen under
        # _reload_lock, reads are deliberately lock-free (a query
        # captures one immutable generation and drains on it).
        self._state = self._build_state(  # repro: guarded-by[_reload_lock, writes]
            source, epoch=1, verify=verify)

    # -- state construction / hot reload --------------------------------------

    def _build_state(self, source: ServiceSource, epoch: int,
                     verify: bool = True) -> _ServiceState:
        """Load/index ``source`` into a fresh, fully-independent state."""
        generation: Optional[str] = None
        directory: Optional[str] = None
        if isinstance(source, (str, os.PathLike)):
            source = load_database(source, verify=verify,
                                   collector=self.collector)
        if isinstance(source, Database):
            generation = source.generation
            directory = source.directory
        return _ServiceState(
            index=_as_index(source),
            caches=QueryCaches(self._cache_size,
                               collector=self.collector,
                               witness=self._witness),
            results=LRUCache("results", self._cache_size,
                             self.collector, self._witness),
            generation=generation, directory=directory, epoch=epoch)

    def reload(self, source: Optional[ServiceSource] = None,
               verify: bool = True,
               faults: Optional[FaultsLike] = None) -> _ServiceState:
        """Hot-swap the served database without dropping a query.

        The replacement is built entirely off to the side — loaded,
        checksum-verified (unless ``verify=False``) and indexed, with
        fresh empty caches — and only then installed by one atomic
        reference assignment.  Queries already running keep the state
        they captured and drain on the old generation; queries that
        start after the swap see the new one.  Any failure (a missing
        directory, checksum mismatch, version error, or an injected
        ``reload_corrupt`` fault) *rejects* the reload: the old
        generation keeps serving untouched and a
        :class:`~repro.exceptions.StorageError` reports why.

        Args:
            source: the replacement — most usefully a database
                directory path; defaults to re-reading the directory
                the current generation was loaded from (picking up a
                newly-committed snapshot generation).
            verify: forwarded to ``load_database`` for path sources.
            faults: a :class:`repro.resilience.FaultInjector` whose
                ``reload_corrupt`` hook fires before the load, for
                rejection-path testing; the default consults
                ``REPRO_FAULTS``.

        Returns:
            The installed state (its ``generation``/``epoch`` feed
            :meth:`storage_stats`).
        """
        injector = faults if faults is not None else faults_from_env()
        with self._reload_lock:
            old = self._state
            with self._stats_lock:
                self._reload_counts["attempts"] += 1
            if self.collector.enabled:
                self.collector.count("service.reload.attempts")
            if source is None:
                source = old.directory
            if source is None:
                self._note_reload_rejected(
                    "no source: the service was not built from a "
                    "database directory, so reload() needs an "
                    "explicit one")
                raise StorageError(
                    "reload rejected: no source given and the current "
                    "database was not loaded from a directory; the "
                    "previous generation keeps serving")
            try:
                if injector.enabled:
                    injector.before_reload()
                with self.collector.time("service.reload"):
                    state = self._build_state(source,
                                              epoch=old.epoch + 1,
                                              verify=verify)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as error:
                message = f"{type(error).__name__}: {error}"
                self._note_reload_rejected(message)
                raise StorageError(
                    f"reload rejected ({message}); the previous "
                    f"generation keeps serving") from error
            self._state = state
            with self._stats_lock:
                self._reload_counts["successes"] += 1
            if self.collector.enabled:
                self.collector.count("service.reload.successes")
            if self.recorder.enabled:
                self.recorder.record("event", "service.reload",
                                     generation=state.generation,
                                     epoch=state.epoch)
            _log.info("reload: now serving generation %s (epoch %d) "
                      "from %s", state.generation, state.epoch,
                      state.directory)
            return state

    def _note_reload_rejected(self, message: str) -> None:
        # Takes _stats_lock itself (callers hold _reload_lock, which
        # orders before _stats_lock in the declared lock order).
        with self._stats_lock:
            self._reload_counts["rejected"] += 1
            self._reload_last_error = message
        if self.collector.enabled:
            self.collector.count("service.reload.rejected")
        if self.recorder.enabled:
            self.recorder.record("event", "service.reload.rejected",
                                 error=message)
        _log.error("reload rejected: %s", message)

    def storage_stats(self) -> Dict[str, object]:
        """Where answers come from right now, and how they got here:
        the served generation/directory, the state epoch, and the
        cumulative reload counters (docs/STORAGE.md)."""
        state = self._state
        with self._stats_lock:
            reloads: Dict[str, object] = dict(self._reload_counts)
            reloads["last_error"] = self._reload_last_error
        return {"generation": state.generation,
                "directory": state.directory,
                "epoch": state.epoch,
                "reloads": reloads}

    def breaker_stats(self) -> Dict[str, object]:
        """The process-pool circuit breaker's summary block
        (``state``/``failures``/... — see
        :meth:`repro.resilience.CircuitBreaker.summary`).  Served on
        ``GET /health`` by the HTTP layer."""
        summary: Dict[str, object] = dict(self._breaker.summary())
        return summary

    def health_snapshot(self) -> Dict[str, object]:
        """One *coherent* health view: generation, epoch, reload
        counters and breaker state captured together.

        :meth:`storage_stats` reads the state reference and the reload
        counters in two steps, which is fine for informational output
        but lets a concurrent :meth:`reload` interleave — a ``/health``
        probe could report the old generation with the new success
        count.  This method holds ``_reload_lock`` (then
        ``_stats_lock``, per the declared lock order) across both
        reads, so the pair always satisfies
        ``epoch == 1 + reloads["successes"]``.  The serving layer's
        ``/health`` and JSON ``/metrics`` use this; a snapshot taken
        while a reload is building simply waits for the swap.
        """
        with self._reload_lock:
            state = self._state
            with self._stats_lock:
                reloads: Dict[str, object] = dict(self._reload_counts)
                reloads["last_error"] = self._reload_last_error
        return {"generation": state.generation,
                "directory": state.directory,
                "epoch": state.epoch,
                "reloads": reloads,
                "breaker": dict(self._breaker.summary())}

    def current_index(self) -> InvertedIndex:
        """The live generation's index — one atomic state read (the
        corpus layer recomputes shard bounds from this)."""
        return self._state.index

    # -- state accessors (single-generation views) ----------------------------

    @property
    def _index(self) -> InvertedIndex:
        return self._state.index

    @property
    def _caches(self) -> QueryCaches:
        return self._state.caches

    @property
    def _results(self) -> LRUCache:
        return self._state.results

    # -- single queries -------------------------------------------------------

    def search(self, keywords: Iterable[str], k: int = 10,
               algorithm: Union[Algorithm, str] = Algorithm.EAGER,
               semantics: str = "slca",
               collector: Optional[MetricsCollector] = None,
               trace: bool = False,
               sanitize: Optional[bool] = None,
               deadline: "Optional[Union[Deadline, DeadlineLike, float, int]]" = None,
               tracer: Optional[TracerLike] = None) -> SearchOutcome:
        """One query through the shared caches.

        Same contract as :func:`repro.core.api.topk_search` (which
        delegates here when handed a service), with two service-layer
        behaviours on top: keyword order is canonicalised before the
        caches are consulted, and an uninstrumented, unsanitized,
        un-deadlined query repeated with the same
        ``(terms, k, algorithm, semantics)`` replays the cached outcome
        (marked ``stats["service"] == "result_cache"``) without running
        any algorithm.  Passing ``collector``/``trace``/``sanitize``/
        ``deadline`` bypasses the result cache so the instrumentation
        (or the budget) really applies; a partial outcome is never
        cached — a replay must not masquerade as complete.

        ``tracer`` hangs the query's span tree under the caller's
        tracer (the HTTP serving layer passes a per-request
        :class:`~repro.obs.spans.SpanTracer` here, so a served query
        produces the same spans as a CLI query); a cache replay shows
        up as a zero-work ``query`` span marked ``cache=result_cache``.
        Every outcome's ``stats["service_state"]`` records the
        generation/epoch it ran against.
        """
        keywords = validate_query(keywords, k)
        terms = sorted(normalize_query(keywords))
        return self._search_terms(terms, k, algorithm, semantics,
                                  collector, trace, sanitize, deadline,
                                  tracer=tracer)

    def _search_terms(self, terms: List[str], k: int,
                      algorithm: Union[Algorithm, str], semantics: str,
                      collector: Optional[MetricsCollector],
                      trace: bool, sanitize: Optional[bool],
                      deadline: object = None,
                      tracer: Optional[TracerLike] = None,
                      aggregate: bool = False) -> SearchOutcome:
        """Run one canonicalised query (terms already sorted/validated).

        The service state is dereferenced exactly once, so the whole
        query — index, caches and result LRU — runs against a single
        generation even if a reload swaps the state mid-flight.

        ``tracer``/``aggregate`` are the batch path's observability
        hooks: with either set (and no caller collector), the query
        runs under an ephemeral :class:`MetricsCollector` — carrying
        the tracer, so every engine timer becomes a span under this
        query's span — which is merged into the service collector
        afterwards.  Result-cache replayability is unchanged (it keys
        off the *caller's* instrumentation): a replayed query shows up
        as a zero-work ``query`` span marked ``cache=result_cache``.
        """
        state = self._state
        algorithm = _coerce_algorithm(algorithm)
        if self.collector.enabled:
            self.collector.count("service.queries")
        effective_sanitize = sanitize if sanitize is not None \
            else sanitize_from_env()
        replayable = (collector is None and not trace
                      and not effective_sanitize and deadline is None)
        key = (tuple(terms), k, algorithm.value, semantics)
        if tracer is not None and not tracer.enabled:
            tracer = None
        if replayable:
            cached = state.results.get(key)
            if cached is not None:
                if tracer is not None:
                    tracer.finish(tracer.begin(
                        "query", terms=" ".join(terms),
                        cache="result_cache"))
                replayed = _replay(cached)
                _annotate_state(replayed, state)
                return replayed
        run_collector = collector
        if run_collector is None and (tracer is not None or aggregate):
            run_collector = MetricsCollector(tracer=tracer)
        query_ctx = tracer.span("query", terms=" ".join(terms),
                                algorithm=algorithm.value, k=k) \
            if tracer is not None else nullcontext()
        with query_ctx as query_span:
            with self.collector.time("service.search"):
                outcome = topk_search(state.index, terms, k, algorithm,
                                      semantics=semantics,
                                      collector=run_collector,
                                      trace=trace,
                                      sanitize=sanitize,
                                      caches=state.caches,
                                      deadline=deadline)
            if query_span is not None:
                if outcome.partial:
                    query_span.status = STATUS_PARTIAL
                    query_span.annotate(
                        reason=outcome.termination_reason)
                query_span.annotate(results=len(outcome.results))
        if run_collector is not None and run_collector is not collector \
                and self.collector.enabled:
            self.collector.merge(run_collector)
        if replayable and not outcome.partial:
            state.results.put(key, outcome)
        _annotate_state(outcome, state)
        return outcome

    # -- batches --------------------------------------------------------------

    def batch_search(self, queries: Sequence[Query], k: int = 10,
                     algorithm: Union[Algorithm, str] = Algorithm.EAGER,
                     semantics: str = "slca",
                     workers: Optional[int] = None,
                     executor: str = "thread",
                     sanitize: Optional[bool] = None,
                     deadline_ms: Optional[float] = None,
                     max_retries: int = DEFAULT_MAX_RETRIES,
                     backoff_ms: float = DEFAULT_BACKOFF_MS,
                     faults: Optional[FaultsLike] = None,
                     tracer: Optional[TracerLike] = None
                     ) -> BatchOutcome:
        """Execute many queries against the shared caches.

        Every query is validated up front — one malformed query fails
        the whole batch before any work runs; that is the *caller's*
        bug and the one failure this method still raises for.  Runtime
        failures after validation never abort the batch: the affected
        queries come back as partial or error outcomes and everything
        else keeps its answer.  Execution order sorts the queries by
        canonical term set, so identical and overlapping queries run
        back to back and hit the caches while they are warm; the
        returned outcomes are realigned with the *input* order.

        Args:
            queries: each a keyword sequence or a whitespace-separated
                string (one line of a query file).
            workers: fan-out width; ``None``/``1`` runs serially on
                the calling thread.
            executor: ``"serial"``, ``"thread"`` (workers share this
                service and its hot caches — best for replay-heavy
                traffic), or ``"process"`` (each worker parses its own
                copy of the document once and serves its contiguous
                chunk — best for CPU-bound cold queries, which the GIL
                would serialise under threads).
            sanitize: per-query sanitizer flag, forwarded verbatim.
            deadline_ms: per-query wall-clock budget; an expired query
                returns its heap so far, marked partial
                (docs/RESILIENCE.md).  ``None`` never expires.
            max_retries: recovery attempts per failed query before it
                becomes an error outcome.  A failed process chunk
                degrades tier by tier — thread pool, then serial —
                each tier consuming one retry; serial/thread failures
                re-run in place.  0 fails straight to error outcomes.
            backoff_ms: first-retry backoff (exponential, capped; see
                :class:`repro.resilience.RetryPolicy`).  0 disables
                pacing.
            faults: a :class:`repro.resilience.FaultInjector` for
                deterministic failure testing; the default consults
                the ``REPRO_FAULTS`` environment variable and injects
                nothing when it is unset.
            tracer: a :class:`repro.obs.SpanTracer`; when given, the
                batch records an end-to-end span tree — batch → chunk
                → query → engine phases, including spans recorded
                *inside* process workers (serialized back with the
                rows and re-parented under their chunk span) and the
                degradation tiers a failed chunk walked
                (docs/OBSERVABILITY.md).  The trace id lands in
                ``stats["trace_id"]``.

        Returns:
            A :class:`BatchOutcome`; ``outcome.outcomes[i]`` answers
            ``queries[i]`` — exactly one outcome per input query, no
            matter what failed underneath.
        """
        if executor not in EXECUTORS:
            choices = ", ".join(EXECUTORS)
            raise QueryError(f"unknown batch executor {executor!r}; "
                             f"choose one of: {choices}")
        if workers is not None and workers < 0:
            raise QueryError(f"workers must be non-negative, "
                             f"got {workers}")
        if deadline_ms is not None and deadline_ms <= 0:
            raise QueryError(f"deadline_ms must be positive, "
                             f"got {deadline_ms}")
        policy = RetryPolicy(max_retries=max_retries,
                             backoff_ms=backoff_ms)
        injector = faults if faults is not None else faults_from_env()
        algorithm = _coerce_algorithm(algorithm)
        prepared: List[List[str]] = []
        for query in queries:
            keywords = query.split() if isinstance(query, str) \
                else list(query)
            keywords = validate_query(keywords, k)
            prepared.append(sorted(normalize_query(keywords)))

        order = sorted(range(len(prepared)),
                       key=lambda position: prepared[position])
        width = min(workers or 1, len(order)) if order else 0
        serial = executor == "serial" or width <= 1
        outcomes: List[Optional[SearchOutcome]] = [None] * len(prepared)
        tracker = _ResilienceTracker(self.collector, self.recorder)
        if tracer is not None and not tracer.enabled:
            tracer = None
        worker_meta: Dict[str, object] = {"pids": [], "merges": 0}
        if self.collector.enabled:
            self.collector.count("service.batches")
            self.collector.count("service.batch_queries", len(prepared))
        with Stopwatch() as watch:
            batch_ctx = tracer.span(
                "batch", queries=len(prepared),
                executor="serial" if serial else executor,
                workers=1 if serial else width, k=k) \
                if tracer is not None else nullcontext()
            with batch_ctx as batch_span:
                if serial:
                    for position in order:
                        outcomes[position] = self._resilient_query(
                            prepared[position], k, algorithm,
                            semantics, sanitize, deadline_ms, injector,
                            policy, tracker, tracer)
                elif executor == "thread":
                    self._run_threads(outcomes, order, prepared, k,
                                      algorithm, semantics, sanitize,
                                      width, deadline_ms, injector,
                                      policy, tracker, tracer,
                                      batch_span)
                else:
                    self._run_processes(outcomes, order, prepared, k,
                                        algorithm, semantics, sanitize,
                                        width, deadline_ms, injector,
                                        policy, tracker, tracer,
                                        batch_span, worker_meta)
        stats: Dict[str, object] = {
            "queries": len(prepared),
            "distinct_term_sets":
                len({tuple(terms) for terms in prepared}),
            "executor": "serial" if serial else executor,
            "workers": 1 if serial else width,
            "k": k,
            "algorithm": algorithm.value,
            "semantics": semantics,
            "cache": self.cache_stats(),
            "storage": self.storage_stats(),
            "resilience": tracker.summary(policy, deadline_ms,
                                          self._breaker, injector),
        }
        if tracer is not None:
            stats["trace_id"] = tracer.trace_id
        if worker_meta["merges"]:
            stats["workers_merged"] = {
                "pids": sorted(set(worker_meta["pids"])),
                "merged_snapshots": worker_meta["merges"]}
        _log.debug("batch: %d queries (%s distinct term sets) via %s "
                   "x%s in %.1f ms", stats["queries"],
                   stats["distinct_term_sets"], stats["executor"],
                   stats["workers"], watch.elapsed_ms)
        # Every input position was executed exactly once (order is a
        # permutation of range(len(prepared)), and every failure path
        # substitutes an error outcome), so the list is dense.
        return BatchOutcome(
            outcomes=[outcome for outcome in outcomes
                      if outcome is not None],
            elapsed_ms=watch.elapsed_ms, stats=stats)

    # -- guarded execution ----------------------------------------------------

    def _guarded_query(self, terms: List[str], k: int,
                       algorithm: Algorithm, semantics: str,
                       sanitize: Optional[bool],
                       deadline_ms: Optional[float],
                       injector: FaultsLike,
                       tracker: _ResilienceTracker,
                       tracer: Optional[TracerLike] = None
                       ) -> Tuple[Optional[SearchOutcome],
                                  Optional[BaseException]]:
        """One attempt at one query: ``(outcome, None)`` on success
        (partial counts as success — the budget did its job),
        ``(None, error)`` on a runtime failure.  The per-query deadline
        starts here, *before* the fault hook, so an injected stall eats
        its own query's budget and nobody else's.

        Batch queries aggregate their engine counters into the service
        collector (``aggregate=`` below) — that is what makes a batch
        report's engine totals executor-independent instead of
        coordinator-only.
        """
        deadline = (Deadline(budget_ms=deadline_ms)
                    if deadline_ms is not None else None)
        try:
            if injector.enabled:
                injector.before_query(terms)
            outcome = self._search_terms(
                terms, k, algorithm, semantics, None, False, sanitize,
                deadline, tracer=tracer,
                aggregate=self.collector.enabled)
            if outcome.partial:
                tracker.note_partial(outcome.termination_reason)
            return outcome, None
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as error:
            return None, error

    def _resilient_query(self, terms: List[str], k: int,
                         algorithm: Algorithm, semantics: str,
                         sanitize: Optional[bool],
                         deadline_ms: Optional[float],
                         injector: FaultsLike, policy: RetryPolicy,
                         tracker: _ResilienceTracker,
                         tracer: Optional[TracerLike] = None
                         ) -> SearchOutcome:
        """One query with in-place retries: the serial/thread path.

        Retries the same execution tier with backoff up to
        ``policy.max_retries`` times, then substitutes an error
        outcome — a query can fail, a batch cannot.
        """
        attempt = 0
        while True:
            outcome, error = self._guarded_query(
                terms, k, algorithm, semantics, sanitize, deadline_ms,
                injector, tracker, tracer)
            if outcome is not None:
                if attempt:
                    tracker.bump("recovered_queries")
                return outcome
            attempt += 1
            if attempt > policy.max_retries:
                return self._error_outcome(terms, error, algorithm,
                                           tracker)
            tracker.bump("retries")
            _log.warning("query %r failed (%s); retry %d/%d",
                         " ".join(terms), error, attempt,
                         policy.max_retries)
            tracker.backoff(policy, attempt)

    def _error_outcome(self, terms: List[str],
                       error: Optional[BaseException],
                       algorithm: Algorithm,
                       tracker: _ResilienceTracker) -> SearchOutcome:
        """The terminal failure substitute: empty, marked, attributed."""
        tracker.bump("query_errors")
        message = (f"{type(error).__name__}: {error}"
                   if error is not None else "unknown failure")
        if tracker.recorder.enabled:
            tracker.recorder.record("event", "query.error",
                                    terms=" ".join(terms),
                                    error=message)
        _log.error("query %r exhausted its retries: %s",
                   " ".join(terms), message)
        return SearchOutcome(
            results=[],
            stats={"algorithm": algorithm.value, "terms": len(terms),
                   "error": message},
            partial=True, termination_reason=REASON_ERROR)

    # -- thread executor ------------------------------------------------------

    def _run_threads(self, outcomes: List[Optional[SearchOutcome]],
                     order: List[int], prepared: List[List[str]],
                     k: int, algorithm: Algorithm, semantics: str,
                     sanitize: Optional[bool], width: int,
                     deadline_ms: Optional[float], injector: FaultsLike,
                     policy: RetryPolicy,
                     tracker: _ResilienceTracker,
                     tracer: Optional[TracerLike] = None,
                     batch_span: Optional[Span] = None) -> None:
        """Contiguous chunks of the sorted order across a thread pool.

        Chunking (instead of one task per query) keeps each thread on
        neighbouring term sets, so the sort's cache locality survives
        the fan-out.  The caches are lock-guarded, so sharing this
        service across the pool is safe.  Each query runs through the
        resilient wrapper, so a chunk never raises; an interrupt shuts
        the pool down with its queued work cancelled instead of
        orphaning threads.  Chunk spans open *inside* the worker
        thread (the tracer's current-span context is per thread), with
        the batch span as their explicit parent.
        """
        chunks = _chunked(order, width)

        def run(chunk: List[int]) -> List[SearchOutcome]:
            ctx = tracer.span("chunk", parent=batch_span,
                              tier="thread", queries=len(chunk)) \
                if tracer is not None else nullcontext()
            with ctx:
                return [self._resilient_query(prepared[position], k,
                                              algorithm, semantics,
                                              sanitize, deadline_ms,
                                              injector, policy,
                                              tracker, tracer)
                        for position in chunk]

        # The pool is sized to the narrower of the user's cap and the
        # actual chunk count — never to len(chunks) alone, which would
        # ignore the workers=N cap whenever re-splitting produced more
        # chunks than workers.
        pool = ThreadPoolExecutor(max_workers=min(width, len(chunks)))
        try:
            for chunk, results in zip(chunks, pool.map(run, chunks)):
                for position, outcome in zip(chunk, results):
                    outcomes[position] = outcome
        except BaseException:
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        pool.shutdown(wait=True)

    # -- process executor -----------------------------------------------------

    def _run_processes(self, outcomes: List[Optional[SearchOutcome]],
                       order: List[int], prepared: List[List[str]],
                       k: int, algorithm: Algorithm, semantics: str,
                       sanitize: Optional[bool], width: int,
                       deadline_ms: Optional[float],
                       injector: FaultsLike, policy: RetryPolicy,
                       tracker: _ResilienceTracker,
                       tracer: Optional[TracerLike] = None,
                       batch_span: Optional[Span] = None,
                       worker_meta: Optional[Dict[str, object]] = None
                       ) -> None:
        """Contiguous chunks across a process pool, with degradation.

        Each worker parses the serialised document once (pool
        initializer), builds its own index and caches, and serves its
        whole chunk — the parse cost is amortised over the chunk, and
        the CPU-bound table work runs truly in parallel.  Workers
        return lightweight ``(code string, probability)`` pairs plus
        JSON-safe stats; shipping :class:`~repro.prxml.model.PNode`
        objects back would drag the whole document through pickle, so
        the parent re-hydrates nodes from its own encoding instead.

        Chunks are independent futures: when one worker crashes and
        breaks the pool, every chunk that already finished keeps its
        results, and only the failed chunks' queries walk the
        degradation chain (docs/RESILIENCE.md).  When the circuit
        breaker is open, no pool is spawned at all and the whole batch
        degrades immediately.
        """
        chunks = _chunked(order, width)
        errors: Dict[int, BaseException] = {}
        if worker_meta is None:
            worker_meta = {"pids": [], "merges": 0}
        if not self._breaker.allow():
            tracker.bump("circuit_open_skips")
            if self.recorder.enabled:
                self.recorder.record("resilience", "breaker_open_skip",
                                     state=self._breaker.state,
                                     queries=len(order))
            _log.warning("process-pool circuit breaker is %s; degrading "
                         "%d queries without spawning a pool",
                         self._breaker.state, len(order))
            failed = [position for chunk in chunks
                      for position in chunk]
        else:
            failed = self._run_pool(outcomes, chunks, prepared, k,
                                    algorithm, semantics, sanitize,
                                    deadline_ms, injector, tracker,
                                    errors, tracer, batch_span,
                                    worker_meta)
        if failed:
            self._degrade(failed, outcomes, prepared, k, algorithm,
                          semantics, sanitize, deadline_ms, injector,
                          policy, tracker, width, errors, tracer,
                          batch_span)

    def _run_pool(self, outcomes: List[Optional[SearchOutcome]],
                  chunks: List[List[int]], prepared: List[List[str]],
                  k: int, algorithm: Algorithm, semantics: str,
                  sanitize: Optional[bool],
                  deadline_ms: Optional[float], injector: FaultsLike,
                  tracker: _ResilienceTracker,
                  errors: Dict[int, BaseException],
                  tracer: Optional[TracerLike] = None,
                  batch_span: Optional[Span] = None,
                  worker_meta: Optional[Dict[str, object]] = None
                  ) -> List[int]:
        """One process-pool round; returns the failed positions.

        Completed chunks are always harvested — a ``BrokenProcessPool``
        from one chunk's future must not discard the results of the
        chunks that finished before the pool died.  Each failed
        chunk's exception is recorded against its queries in
        ``errors``, so a query that later exhausts the degradation
        chain names the failure that actually took it down.

        Observability: every chunk gets a span opened at submit time
        and closed at harvest (its duration therefore includes queue
        wait); each worker ships back ``(rows, meta)`` where ``meta``
        carries its pid, its collector snapshot — merged into the
        service collector, which is what makes ``--metrics-json``
        totals include worker-side counters — and its serialized
        spans, re-parented under the chunk span with the worker clock
        shifted onto the coordinator's.
        """
        from repro.prxml.serializer import serialize_pxml
        # One state capture for the whole pool round: the payload the
        # workers parse and the encoding the parent hydrates results
        # from must describe the same generation.
        state = self._state
        if worker_meta is None:
            worker_meta = {"pids": [], "merges": 0}
        payload = serialize_pxml(state.index.encoded.document)
        if injector.enabled:
            payload = injector.corrupt(payload)
        chunk_spans: List[Optional[Span]] = []
        jobs: List[_Job] = []
        instrument = self.collector.enabled
        for chunk in chunks:
            span = tracer.begin("chunk", parent=batch_span,
                                tier="process", queries=len(chunk)) \
                if tracer is not None else None
            chunk_spans.append(span)
            trace_ctx = (tracer.trace_id, span.span_id) \
                if span is not None else None
            jobs.append(([prepared[position] for position in chunk],
                         k, algorithm.value, semantics, sanitize,
                         deadline_ms, instrument, trace_ctx))
        capacity = state.caches.match_entries.capacity
        failed: List[int] = []
        try:
            pool = ProcessPoolExecutor(
                max_workers=len(chunks), initializer=_process_init,
                initargs=(payload, capacity, injector.spec(),
                          injector.seed))
        except Exception as error:
            tracker.bump("pool_spawn_failures")
            self._breaker.record_failure()
            _log.error("cannot spawn a process pool (%s); degrading "
                       "the whole batch", error)
            if tracer is not None:
                for span in chunk_spans:
                    tracer.finish(span, status=STATUS_ERROR,
                                  error="pool_spawn")
            for chunk in chunks:
                for position in chunk:
                    errors[position] = error
            return [position for chunk in chunks for position in chunk]
        broken = False
        try:
            futures: List[Optional[Future]] = []
            submit_error: Optional[BaseException] = None
            for job in jobs:
                try:
                    futures.append(pool.submit(_process_chunk, job))
                except BrokenExecutor as error:
                    broken = True
                    submit_error = error
                    futures.append(None)
            encoded = state.index.encoded
            for chunk, chunk_span, future in zip(chunks, chunk_spans,
                                                 futures):
                if future is None:
                    self._fail_chunk(chunk, submit_error, failed,
                                     errors, tracker, tracer,
                                     chunk_span)
                    continue
                try:
                    rows, meta = future.result()
                except (KeyboardInterrupt, SystemExit):
                    raise
                except BrokenExecutor as error:
                    broken = True
                    self._fail_chunk(chunk, error, failed, errors,
                                     tracker, tracer, chunk_span)
                    _log.warning("process chunk of %d queries lost to "
                                 "a broken pool: %s", len(chunk), error)
                except Exception as error:
                    self._fail_chunk(chunk, error, failed, errors,
                                     tracker, tracer, chunk_span)
                    _log.warning("process chunk of %d queries failed: "
                                 "%s", len(chunk), error)
                else:
                    if self.collector.enabled and meta.get("metrics"):
                        self.collector.merge_snapshot(meta["metrics"])
                        worker_meta["pids"].append(meta.get("pid", 0))
                        worker_meta["merges"] = \
                            worker_meta.get("merges", 0) + 1
                    if tracer is not None and chunk_span is not None:
                        tracer.adopt(meta.get("spans", ()),
                                     parent=chunk_span,
                                     shift_ms=chunk_span.start_ms)
                        tracer.finish(chunk_span,
                                      pid=meta.get("pid", 0))
                    for position, row in zip(chunk, rows):
                        codes, probs, stats, partial, reason = row
                        results = []
                        for text, probability in zip(codes, probs):
                            code = DeweyCode.parse(text)
                            results.append(SLCAResult(
                                code=code, probability=probability,
                                node=encoded.node_at(code)))
                        outcomes[position] = SearchOutcome(
                            results=results, stats=stats,
                            partial=partial,
                            termination_reason=reason)
                        if partial:
                            tracker.note_partial(reason)
        except BaseException:
            # An interrupt (or any non-chunk failure) must not orphan
            # pool children: drop queued work and leave immediately.
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        pool.shutdown(wait=True)
        if broken:
            tracker.bump("worker_crashes")
            self._breaker.record_failure()
            if self.recorder.enabled:
                self.recorder.record("resilience", "breaker",
                                     state=self._breaker.state,
                                     failures=self._breaker.failures)
        else:
            self._breaker.record_success()
        return failed

    @staticmethod
    def _fail_chunk(chunk: List[int],
                    error: Optional[BaseException], failed: List[int],
                    errors: Dict[int, BaseException],
                    tracker: _ResilienceTracker,
                    tracer: Optional[TracerLike] = None,
                    chunk_span: Optional[Span] = None) -> None:
        """Record one failed chunk: positions, attribution, counters,
        and an error-status close of its span."""
        failed.extend(chunk)
        if error is not None:
            for position in chunk:
                errors[position] = error
        if tracer is not None and chunk_span is not None:
            tracer.finish(chunk_span, status=STATUS_ERROR,
                          error=type(error).__name__
                          if error is not None else "unknown")
        tracker.bump("chunk_failures")
        tracker.bump("chunk_failure_queries", len(chunk))

    def _degrade(self, positions: List[int],
                 outcomes: List[Optional[SearchOutcome]],
                 prepared: List[List[str]], k: int,
                 algorithm: Algorithm, semantics: str,
                 sanitize: Optional[bool],
                 deadline_ms: Optional[float], injector: FaultsLike,
                 policy: RetryPolicy, tracker: _ResilienceTracker,
                 width: int,
                 errors: Optional[Dict[int, BaseException]] = None,
                 tracer: Optional[TracerLike] = None,
                 batch_span: Optional[Span] = None) -> None:
        """Walk failed queries down the chain: thread, serial, error.

        Each tier consumes one retry from the policy's budget and is
        preceded by the policy's backoff; queries that keep failing
        end as error outcomes, so every position is filled no matter
        what.  ``errors`` carries each position's last known failure
        (seeded by the process round) so the terminal error outcome
        names the real cause.  Each tier is a ``degrade`` span under
        the batch span, so a trace shows exactly which recovery hop
        answered which query.
        """
        remaining = list(positions)
        errors = errors if errors is not None else {}
        tier = 0
        if policy.max_retries >= tier + 1 and width > 1 \
                and len(remaining) > 1:
            tier += 1
            tracker.bump("retries", len(remaining))
            tracker.bump("degraded_to_thread", len(remaining))
            _log.warning("retrying %d queries on the thread executor",
                         len(remaining))
            tracker.backoff(policy, tier)
            tier_ctx = tracer.span("degrade", parent=batch_span,
                                   tier="thread",
                                   queries=len(remaining)) \
                if tracer is not None else nullcontext()
            with tier_ctx as tier_span:
                remaining = self._retry_on_threads(
                    remaining, outcomes, prepared, k, algorithm,
                    semantics, sanitize, deadline_ms, injector,
                    tracker, width, errors, tracer, tier_span)
        if remaining and policy.max_retries >= tier + 1:
            tier += 1
            tracker.bump("retries", len(remaining))
            tracker.bump("degraded_to_serial", len(remaining))
            _log.warning("retrying %d queries serially", len(remaining))
            tracker.backoff(policy, tier)
            tier_ctx = tracer.span("degrade", parent=batch_span,
                                   tier="serial",
                                   queries=len(remaining)) \
                if tracer is not None else nullcontext()
            with tier_ctx:
                still: List[int] = []
                for position in remaining:
                    outcome, error = self._guarded_query(
                        prepared[position], k, algorithm, semantics,
                        sanitize, deadline_ms, injector, tracker,
                        tracer)
                    if outcome is None:
                        still.append(position)
                        if error is not None:
                            errors[position] = error
                    else:
                        outcomes[position] = outcome
                remaining = still
        recovered = len(positions) - len(remaining)
        if recovered:
            tracker.bump("recovered_queries", recovered)
        for position in remaining:
            outcomes[position] = self._error_outcome(
                prepared[position], errors.get(position), algorithm,
                tracker)

    def _retry_on_threads(self, positions: List[int],
                          outcomes: List[Optional[SearchOutcome]],
                          prepared: List[List[str]], k: int,
                          algorithm: Algorithm, semantics: str,
                          sanitize: Optional[bool],
                          deadline_ms: Optional[float],
                          injector: FaultsLike,
                          tracker: _ResilienceTracker, width: int,
                          errors: Dict[int, BaseException],
                          tracer: Optional[TracerLike] = None,
                          tier_span: Optional[Span] = None
                          ) -> List[int]:
        """The thread tier of the degradation chain: one attempt per
        query, failures reported back (not retried here)."""
        chunks = _chunked(positions, width)

        def run(chunk: List[int]
                ) -> List[Tuple[Optional[SearchOutcome],
                                Optional[BaseException]]]:
            ctx = tracer.span("chunk", parent=tier_span,
                              tier="thread-retry",
                              queries=len(chunk)) \
                if tracer is not None else nullcontext()
            with ctx:
                return [self._guarded_query(prepared[position], k,
                                            algorithm, semantics,
                                            sanitize, deadline_ms,
                                            injector, tracker, tracer)
                        for position in chunk]

        still: List[int] = []
        pool = ThreadPoolExecutor(max_workers=min(width, len(chunks)))
        try:
            for chunk, results in zip(chunks, pool.map(run, chunks)):
                for position, (outcome, error) in zip(chunk, results):
                    if outcome is None:
                        still.append(position)
                        if error is not None:
                            errors[position] = error
                    else:
                        outcomes[position] = outcome
        except BaseException:
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        pool.shutdown(wait=True)
        return still

    # -- cache management -----------------------------------------------------

    def cache_stats(self) -> Dict[str, object]:
        """Cumulative per-cache counters (``match_entries``,
        ``code_lists``, ``path_probs``, ``results``) of the *current*
        generation's caches (a reload starts fresh ones)."""
        state = self._state
        stats = state.caches.stats()
        stats["results"] = state.results.stats()
        return stats

    def clear_caches(self) -> None:
        """Drop every cached value (counters stay — cumulative)."""
        state = self._state
        state.caches.clear()
        state.results.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = self._state
        extra = f", generation={state.generation}" \
            if state.generation else ""
        return (f"QueryService(terms={len(state.index)}, "
                f"cache_size={state.results.capacity}{extra})")


def _annotate_state(outcome: SearchOutcome, state: _ServiceState) -> None:
    """Stamp the generation/epoch the query actually ran against.

    The serving layer's drain/reload tests read this back to prove an
    in-flight request finished on the state it captured.
    """
    outcome.stats["service_state"] = {"generation": state.generation,
                                      "epoch": state.epoch}


def _replay(outcome: SearchOutcome) -> SearchOutcome:
    """A fresh outcome sharing the cached (frozen) results.

    The stats dict is deep-copied so callers can annotate their copy
    without corrupting the cached one; ``stats["service"]`` marks the
    replay.  Only complete outcomes are ever cached, so the replay is
    complete by construction.
    """
    stats = copy.deepcopy(outcome.stats)
    stats["service"] = "result_cache"
    return SearchOutcome(results=list(outcome.results), stats=stats)


def _chunked(order: List[int], width: int) -> List[List[int]]:
    """Split ``order`` into at most ``width`` contiguous chunks."""
    count = max(1, min(width, len(order)))
    size, extra = divmod(len(order), count)
    chunks: List[List[int]] = []
    start = 0
    for position in range(count):
        stop = start + size + (1 if position < extra else 0)
        if stop > start:
            chunks.append(order[start:stop])
        start = stop
    return chunks


def load_query_file(path: str) -> List[List[str]]:
    """Parse a batch query file: one query per line.

    Keywords are whitespace-separated; blank lines and ``#`` comments
    are skipped.  A file with no queries at all is rejected (an empty
    batch is almost certainly a wrong path, not an intention).
    """
    queries: List[List[str]] = []
    try:
        with open(path, "r", encoding="utf-8") as source:
            for line in source:
                stripped = line.strip()
                if not stripped or stripped.startswith("#"):
                    continue
                queries.append(stripped.split())
    except OSError as error:
        raise QueryError(f"cannot read query file {path}: "
                         f"{error}") from error
    if not queries:
        raise QueryError(f"{path}: no queries (every line is blank or "
                         f"a comment)")
    return queries


# -- process-pool worker side (module level: must be picklable) ---------------

#: Per-worker state installed by :func:`_process_init`.
_WORKER_STATE: Dict[str, object] = {}

#: A worker's chunk: its term lists plus the fixed query shape, the
#: per-query deadline budget, whether to run an instrumenting
#: collector, and the span-propagation context — ``(trace_id,
#: chunk_span_id)`` — or ``None`` when the batch is untraced.
_Job = Tuple[List[List[str]], int, str, str, Optional[bool],
             Optional[float], bool, Optional[Tuple[str, str]]]

#: What a worker returns per query: result code strings, their
#: probabilities, JSON-safe stats, and the partial marker + reason.
_Row = Tuple[List[str], List[float], Dict[str, object], bool, str]

#: The second element of a worker's return value: its pid, its
#: collector snapshot (merged into the coordinator's collector), and
#: its serialized spans (adopted under the chunk span).
_Meta = Dict[str, object]


def _process_init(payload: str, cache_size: int,
                  fault_spec: str = "", fault_seed: int = 0) -> None:
    """Pool initializer: build this worker's index and caches once.

    The fault spec travels as its string form (injector instances
    carry an RNG and counters, which must be per-process anyway); a
    corrupted payload fails the parse here, which the parent observes
    as a broken pool and degrades around.
    """
    from repro.prxml.parser import parse_pxml
    database = Database.from_document(parse_pxml(payload))
    _WORKER_STATE["index"] = database.index
    _WORKER_STATE["caches"] = QueryCaches(cache_size)
    _WORKER_STATE["faults"] = parse_faults(fault_spec, seed=fault_seed)


def _process_chunk(job: _Job) -> Tuple[List[_Row], _Meta]:
    """Serve one contiguous chunk inside a pool worker.

    Observability crosses the process boundary here: when the
    coordinator instruments or traces the batch, the worker runs its
    queries under its *own* collector/tracer and ships the snapshot
    and serialized spans back with the rows.  The worker tracer's
    root span is pre-addressed — id ``<chunk_span_id>.w``, parent
    ``<chunk_span_id>`` — so adopted spans slot under the right chunk
    with ids no other worker can collide with, and stay deterministic
    (structural ids, content-derived trace id, no randomness).
    """
    (term_lists, k, algorithm, semantics, sanitize, deadline_ms,
     instrument, trace_ctx) = job
    index = _WORKER_STATE["index"]
    caches = _WORKER_STATE["caches"]
    injector = _WORKER_STATE.get("faults", NULL_FAULTS)
    if injector.enabled:
        injector.on_worker_chunk(term_lists)
    tracer: Optional[SpanTracer] = None
    if trace_ctx is not None:
        trace_id, chunk_span_id = trace_ctx
        tracer = SpanTracer(trace_id=trace_id,
                            root_id=f"{chunk_span_id}.w",
                            root_parent=chunk_span_id)
    collector = MetricsCollector(tracer=tracer) \
        if (instrument or tracer is not None) else None
    rows: List[_Row] = []
    worker_ctx = tracer.span("worker", pid=os.getpid()) \
        if tracer is not None else nullcontext()
    with worker_ctx:
        for terms in term_lists:
            deadline = (Deadline(budget_ms=deadline_ms)
                        if deadline_ms is not None else None)
            if injector.enabled:
                injector.before_query(terms)
            query_ctx = tracer.span("query", terms=" ".join(terms),
                                    algorithm=algorithm, k=k) \
                if tracer is not None else nullcontext()
            with query_ctx as query_span:
                outcome = topk_search(index, terms, k, algorithm,
                                      semantics=semantics,
                                      sanitize=sanitize,
                                      collector=collector,
                                      caches=caches, deadline=deadline)
                if query_span is not None:
                    if outcome.partial:
                        query_span.status = STATUS_PARTIAL
                        query_span.annotate(
                            reason=outcome.termination_reason)
                    query_span.annotate(results=len(outcome.results))
            # The worker collector accumulates across the chunk, so
            # the per-row copy of its snapshot would be cumulative and
            # redundant with meta["metrics"]; strip it.
            stats = {key: value for key, value in outcome.stats.items()
                     if key not in ("trace", "estimates", "metrics")}
            rows.append(([str(result.code)
                          for result in outcome.results],
                         [result.probability
                          for result in outcome.results],
                         stats, outcome.partial,
                         outcome.termination_reason))
    meta: _Meta = {"pid": os.getpid(),
                   "metrics": collector.snapshot()
                   if collector is not None else {},
                   "spans": tracer.export()
                   if tracer is not None else []}
    return rows, meta
