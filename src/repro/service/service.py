"""The :class:`QueryService`: batched serving over one prepared index.

One service wraps one prepared :class:`~repro.index.storage.Database`
(or bare index) and executes single queries and whole batches without
repeating per-query preparation work:

* a bundle of :class:`repro.index.cache.QueryCaches` — match-entry
  lists keyed by the normalised term tuple, per-keyword Dewey lists,
  and the query-independent path-probability memo — is threaded into
  every search it runs;
* a result-level LRU replays whole answers for repeated
  ``(terms, k, algorithm, semantics)`` queries, bypassed whenever the
  caller instruments or sanitizes the query (those must really run);
* :meth:`QueryService.batch_search` executes many queries through the
  shared caches, sorting the execution order by term set so cache
  neighbours run back to back, optionally fanning out over
  ``concurrent.futures`` workers — threads share this service's hot
  caches (right for cache-heavy replay traffic), processes each build
  their own index copy once and then amortise it over their chunk
  (right for CPU-bound cold PrStack/EagerTopK work, which the GIL
  serialises under threads).

Keyword order is canonicalised (terms are sorted) before any cache is
consulted, so ``["a", "b"]`` and ``["b", "a"]`` hit the same entries —
the answer set only depends on the term *set*, while raw match masks
depend on term order.  See docs/SERVICE.md for the full architecture.
"""

from __future__ import annotations

import copy
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.sanitizer import sanitize_from_env
from repro.core.api import (Algorithm, Source, _as_index,
                            _coerce_algorithm, topk_search,
                            validate_query)
from repro.core.result import SLCAResult, SearchOutcome
from repro.encoding.dewey import DeweyCode
from repro.exceptions import QueryError
from repro.index.cache import (DEFAULT_CACHE_SIZE, LRUCache, QueryCaches)
from repro.index.inverted import InvertedIndex
from repro.index.storage import Database
from repro.index.tokenizer import normalize_query
from repro.obs.logging import get_logger
from repro.obs.metrics import (Collector, MetricsCollector,
                               NULL_COLLECTOR, Stopwatch)

_log = get_logger("service")

#: One query of a batch: a whitespace-separated string or a keyword
#: sequence (exactly what ``topk_search`` accepts).
Query = Union[str, Sequence[str]]

#: Executor choices understood by :meth:`QueryService.batch_search`.
EXECUTORS = ("serial", "thread", "process")


@dataclass
class BatchOutcome:
    """All outcomes of one batch, in the caller's original order.

    Attributes:
        outcomes: one :class:`SearchOutcome` per input query, aligned
            with the input order (execution order is the service's
            business, not the caller's).
        elapsed_ms: wall time of the whole batch.
        stats: batch-level counters — query counts, distinct term
            sets, executor/worker shape, and the service's cumulative
            cache counters after the batch.
    """

    outcomes: List[SearchOutcome]
    elapsed_ms: float
    stats: Dict[str, object] = field(default_factory=dict)

    def __iter__(self):
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)


class QueryService:
    """Persistent query execution over one prepared database.

    Args:
        source: what :func:`repro.core.api.topk_search` accepts — a
            p-document (indexed once, here), a prepared
            :class:`Database`, or a bare :class:`InvertedIndex`.
        cache_size: capacity of the match-entry and result caches (the
            per-term Dewey cache is proportionally larger; see
            :class:`repro.index.cache.QueryCaches`).
        collector: service-level :class:`repro.obs.MetricsCollector`
            receiving cache hit/miss/eviction counters
            (``service.cache.*``), query/batch counts and timings.
            Distinct from a per-query collector passed to
            :meth:`search`, which instruments that query alone and
            bypasses the result cache.
    """

    def __init__(self, source: Source,
                 cache_size: int = DEFAULT_CACHE_SIZE,
                 collector: Optional[Collector] = None):
        self.collector = collector if collector is not None \
            else NULL_COLLECTOR
        self._index: InvertedIndex = _as_index(source)
        self._caches = QueryCaches(cache_size, collector=self.collector)
        self._results = LRUCache("results", cache_size, self.collector)

    # -- single queries -------------------------------------------------------

    def search(self, keywords: Iterable[str], k: int = 10,
               algorithm: Union[Algorithm, str] = Algorithm.EAGER,
               semantics: str = "slca",
               collector: Optional[MetricsCollector] = None,
               trace: bool = False,
               sanitize: Optional[bool] = None) -> SearchOutcome:
        """One query through the shared caches.

        Same contract as :func:`repro.core.api.topk_search` (which
        delegates here when handed a service), with two service-layer
        behaviours on top: keyword order is canonicalised before the
        caches are consulted, and an uninstrumented, unsanitized query
        repeated with the same ``(terms, k, algorithm, semantics)``
        replays the cached outcome (marked
        ``stats["service"] == "result_cache"``) without running any
        algorithm.  Passing ``collector``/``trace``/``sanitize``
        bypasses the result cache so the instrumentation really runs.
        """
        keywords = validate_query(keywords, k)
        terms = sorted(normalize_query(keywords))
        return self._search_terms(terms, k, algorithm, semantics,
                                  collector, trace, sanitize)

    def _search_terms(self, terms: List[str], k: int,
                      algorithm: Union[Algorithm, str], semantics: str,
                      collector: Optional[MetricsCollector],
                      trace: bool,
                      sanitize: Optional[bool]) -> SearchOutcome:
        """Run one canonicalised query (terms already sorted/validated)."""
        algorithm = _coerce_algorithm(algorithm)
        if self.collector.enabled:
            self.collector.count("service.queries")
        effective_sanitize = sanitize if sanitize is not None \
            else sanitize_from_env()
        replayable = (collector is None and not trace
                      and not effective_sanitize)
        key = (tuple(terms), k, algorithm.value, semantics)
        if replayable:
            cached = self._results.get(key)
            if cached is not None:
                return _replay(cached)
        with self.collector.time("service.search"):
            outcome = topk_search(self._index, terms, k, algorithm,
                                  semantics=semantics,
                                  collector=collector, trace=trace,
                                  sanitize=sanitize,
                                  caches=self._caches)
        if replayable:
            self._results.put(key, outcome)
        return outcome

    # -- batches --------------------------------------------------------------

    def batch_search(self, queries: Sequence[Query], k: int = 10,
                     algorithm: Union[Algorithm, str] = Algorithm.EAGER,
                     semantics: str = "slca",
                     workers: Optional[int] = None,
                     executor: str = "thread",
                     sanitize: Optional[bool] = None) -> BatchOutcome:
        """Execute many queries against the shared caches.

        Every query is validated up front — one malformed query fails
        the whole batch before any work runs.  Execution order sorts
        the queries by canonical term set, so identical and
        overlapping queries run back to back and hit the caches while
        they are warm; the returned outcomes are realigned with the
        *input* order.

        Args:
            queries: each a keyword sequence or a whitespace-separated
                string (one line of a query file).
            workers: fan-out width; ``None``/``1`` runs serially on
                the calling thread.
            executor: ``"serial"``, ``"thread"`` (workers share this
                service and its hot caches — best for replay-heavy
                traffic), or ``"process"`` (each worker parses its own
                copy of the document once and serves its contiguous
                chunk — best for CPU-bound cold queries, which the GIL
                would serialise under threads).
            sanitize: per-query sanitizer flag, forwarded verbatim.

        Returns:
            A :class:`BatchOutcome`; ``outcome.outcomes[i]`` answers
            ``queries[i]``.
        """
        if executor not in EXECUTORS:
            choices = ", ".join(EXECUTORS)
            raise QueryError(f"unknown batch executor {executor!r}; "
                             f"choose one of: {choices}")
        if workers is not None and workers < 0:
            raise QueryError(f"workers must be non-negative, "
                             f"got {workers}")
        algorithm = _coerce_algorithm(algorithm)
        prepared: List[List[str]] = []
        for query in queries:
            keywords = query.split() if isinstance(query, str) \
                else list(query)
            keywords = validate_query(keywords, k)
            prepared.append(sorted(normalize_query(keywords)))

        order = sorted(range(len(prepared)),
                       key=lambda position: prepared[position])
        width = min(workers or 1, len(order)) if order else 0
        serial = executor == "serial" or width <= 1
        outcomes: List[Optional[SearchOutcome]] = [None] * len(prepared)
        if self.collector.enabled:
            self.collector.count("service.batches")
            self.collector.count("service.batch_queries", len(prepared))
        with Stopwatch() as watch:
            if serial:
                for position in order:
                    outcomes[position] = self._search_terms(
                        prepared[position], k, algorithm, semantics,
                        None, False, sanitize)
            elif executor == "thread":
                self._run_threads(outcomes, order, prepared, k,
                                  algorithm, semantics, sanitize, width)
            else:
                self._run_processes(outcomes, order, prepared, k,
                                    algorithm, semantics, sanitize,
                                    width)
        stats: Dict[str, object] = {
            "queries": len(prepared),
            "distinct_term_sets":
                len({tuple(terms) for terms in prepared}),
            "executor": "serial" if serial else executor,
            "workers": 1 if serial else width,
            "k": k,
            "algorithm": algorithm.value,
            "semantics": semantics,
            "cache": self.cache_stats(),
        }
        _log.debug("batch: %d queries (%s distinct term sets) via %s "
                   "x%s in %.1f ms", stats["queries"],
                   stats["distinct_term_sets"], stats["executor"],
                   stats["workers"], watch.elapsed_ms)
        # Every input position was executed exactly once (order is a
        # permutation of range(len(prepared))), so the list is dense.
        return BatchOutcome(
            outcomes=[outcome for outcome in outcomes
                      if outcome is not None],
            elapsed_ms=watch.elapsed_ms, stats=stats)

    def _run_threads(self, outcomes: List[Optional[SearchOutcome]],
                     order: List[int], prepared: List[List[str]],
                     k: int, algorithm: Algorithm, semantics: str,
                     sanitize: Optional[bool], width: int) -> None:
        """Contiguous chunks of the sorted order, one thread each.

        Chunking (instead of one task per query) keeps each thread on
        neighbouring term sets, so the sort's cache locality survives
        the fan-out.  The caches are lock-guarded, so sharing this
        service across the pool is safe.
        """
        chunks = _chunked(order, width)

        def run(chunk: List[int]) -> List[SearchOutcome]:
            return [self._search_terms(prepared[position], k, algorithm,
                                       semantics, None, False, sanitize)
                    for position in chunk]

        with ThreadPoolExecutor(max_workers=len(chunks)) as pool:
            for chunk, results in zip(chunks, pool.map(run, chunks)):
                for position, outcome in zip(chunk, results):
                    outcomes[position] = outcome

    def _run_processes(self, outcomes: List[Optional[SearchOutcome]],
                       order: List[int], prepared: List[List[str]],
                       k: int, algorithm: Algorithm, semantics: str,
                       sanitize: Optional[bool], width: int) -> None:
        """Contiguous chunks across a process pool.

        Each worker parses the serialised document once (pool
        initializer), builds its own index and caches, and serves its
        whole chunk — the parse cost is amortised over the chunk, and
        the CPU-bound table work runs truly in parallel.  Workers
        return lightweight ``(code string, probability)`` pairs plus
        JSON-safe stats; shipping :class:`~repro.prxml.model.PNode`
        objects back would drag the whole document through pickle, so
        the parent re-hydrates nodes from its own encoding instead.
        """
        from repro.prxml.serializer import serialize_pxml
        payload = serialize_pxml(self._index.encoded.document)
        chunks = _chunked(order, width)
        jobs = [([prepared[position] for position in chunk], k,
                 algorithm.value, semantics, sanitize)
                for chunk in chunks]
        capacity = self._caches.match_entries.capacity
        encoded = self._index.encoded
        with ProcessPoolExecutor(
                max_workers=len(chunks), initializer=_process_init,
                initargs=(payload, capacity)) as pool:
            for chunk, rows in zip(chunks, pool.map(_process_chunk,
                                                    jobs)):
                for position, (codes, probs, stats) in zip(chunk, rows):
                    results = []
                    for text, probability in zip(codes, probs):
                        code = DeweyCode.parse(text)
                        results.append(SLCAResult(
                            code=code, probability=probability,
                            node=encoded.node_at(code)))
                    outcomes[position] = SearchOutcome(results=results,
                                                       stats=stats)

    # -- cache management -----------------------------------------------------

    def cache_stats(self) -> Dict[str, object]:
        """Cumulative per-cache counters (``match_entries``,
        ``code_lists``, ``path_probs``, ``results``)."""
        stats = self._caches.stats()
        stats["results"] = self._results.stats()
        return stats

    def clear_caches(self) -> None:
        """Drop every cached value (counters stay — cumulative)."""
        self._caches.clear()
        self._results.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"QueryService(terms={len(self._index)}, "
                f"cache_size={self._results.capacity})")


def _replay(outcome: SearchOutcome) -> SearchOutcome:
    """A fresh outcome sharing the cached (frozen) results.

    The stats dict is deep-copied so callers can annotate their copy
    without corrupting the cached one; ``stats["service"]`` marks the
    replay.
    """
    stats = copy.deepcopy(outcome.stats)
    stats["service"] = "result_cache"
    return SearchOutcome(results=list(outcome.results), stats=stats)


def _chunked(order: List[int], width: int) -> List[List[int]]:
    """Split ``order`` into at most ``width`` contiguous chunks."""
    count = max(1, min(width, len(order)))
    size, extra = divmod(len(order), count)
    chunks: List[List[int]] = []
    start = 0
    for position in range(count):
        stop = start + size + (1 if position < extra else 0)
        if stop > start:
            chunks.append(order[start:stop])
        start = stop
    return chunks


def load_query_file(path: str) -> List[List[str]]:
    """Parse a batch query file: one query per line.

    Keywords are whitespace-separated; blank lines and ``#`` comments
    are skipped.  A file with no queries at all is rejected (an empty
    batch is almost certainly a wrong path, not an intention).
    """
    queries: List[List[str]] = []
    try:
        with open(path, "r", encoding="utf-8") as source:
            for line in source:
                stripped = line.strip()
                if not stripped or stripped.startswith("#"):
                    continue
                queries.append(stripped.split())
    except OSError as error:
        raise QueryError(f"cannot read query file {path}: "
                         f"{error}") from error
    if not queries:
        raise QueryError(f"{path}: no queries (every line is blank or "
                         f"a comment)")
    return queries


# -- process-pool worker side (module level: must be picklable) ---------------

#: Per-worker state installed by :func:`_process_init`.
_WORKER_STATE: Dict[str, object] = {}

#: A worker's chunk: its term lists plus the fixed query shape.
_Job = Tuple[List[List[str]], int, str, str, Optional[bool]]

#: What a worker returns per query: result code strings, their
#: probabilities, and JSON-safe stats.
_Row = Tuple[List[str], List[float], Dict[str, object]]


def _process_init(payload: str, cache_size: int) -> None:
    """Pool initializer: build this worker's index and caches once."""
    from repro.prxml.parser import parse_pxml
    database = Database.from_document(parse_pxml(payload))
    _WORKER_STATE["index"] = database.index
    _WORKER_STATE["caches"] = QueryCaches(cache_size)


def _process_chunk(job: _Job) -> List[_Row]:
    """Serve one contiguous chunk inside a pool worker."""
    term_lists, k, algorithm, semantics, sanitize = job
    index = _WORKER_STATE["index"]
    caches = _WORKER_STATE["caches"]
    rows: List[_Row] = []
    for terms in term_lists:
        outcome = topk_search(index, terms, k, algorithm,
                              semantics=semantics, sanitize=sanitize,
                              caches=caches)
        stats = {key: value for key, value in outcome.stats.items()
                 if key not in ("trace", "estimates")}
        rows.append(([str(result.code) for result in outcome.results],
                     [result.probability for result in outcome.results],
                     stats))
    return rows
