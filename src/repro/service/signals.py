"""Main-thread-safe signal registration.

CPython only allows ``signal.signal`` from the main thread — anywhere
else it raises ``ValueError``.  A ``QueryService`` embedded in a
server (the ROADMAP's HTTP front door) is routinely constructed on a
worker thread, where "install a SIGHUP reload handler" must degrade to
a logged no-op, not an exception that takes the server down.

:func:`safe_signal` is the repo's one blessed registration point (lint
rule R011 flags raw ``signal.signal`` calls anywhere else): on the
main thread it registers and returns a restore callback; off the main
thread it logs a warning and returns a no-op restore.
"""

from __future__ import annotations

import signal as _signal
import threading
from typing import Any, Callable, Optional

from repro.obs.logging import get_logger

_log = get_logger("service.signals")

#: What ``safe_signal`` returns: call it to restore the previous
#: handler (a no-op when nothing was registered).
RestoreCallback = Callable[[], None]

HandlerCallback = Callable[[int, Optional[Any]], None]


def on_main_thread() -> bool:
    """Whether the caller runs on the main thread (the only thread
    CPython delivers Python-level signals to, and the only one allowed
    to register handlers)."""
    return threading.current_thread() is threading.main_thread()


def safe_signal(signum: int, handler: HandlerCallback,
                what: str = "") -> RestoreCallback:
    """Register ``handler`` for ``signum`` when legal, else warn.

    Args:
        signum: the signal number (e.g. ``signal.SIGHUP``).
        handler: the Python-level handler ``(signum, frame) -> None``.
            Keep it reentrant — it runs on the main thread at an
            arbitrary bytecode boundary (R011: no plain-Lock
            acquisition, no sleeping/joining).
        what: short description for the skip warning
            (``"SIGHUP hot reload"``).

    Returns:
        A callback restoring the previous handler.  Off the main
        thread nothing is registered: the skip is logged at WARNING
        and the returned callback is a no-op, so embedding servers
        that build services on worker threads keep working.
    """
    if not on_main_thread():
        _log.warning(
            "signal handler %s not installed: registration for signal "
            "%s attempted off the main thread (%s); continuing "
            "without it",
            what or handler, signum, threading.current_thread().name)
        return lambda: None
    previous = _signal.signal(signum, handler)

    def restore() -> None:
        _signal.signal(signum, previous)

    return restore
