"""Sharded multi-document corpora with bound-driven scatter-gather.

The single-document stack (PRs 1–8) answers top-k queries over *one*
p-document behind one :class:`~repro.service.QueryService`.  This
package scales the same contract horizontally (docs/CORPUS.md): many
p-documents are partitioned into **shards**, each shard is an ordinary
snapshot-generation database directory (docs/STORAGE.md) holding its
documents concatenated under a synthetic ordinary root, and
:class:`CorpusService` fans a query out across shards, merging the
per-shard heaps into one global top-k under the shared result order
(:mod:`repro.core.order`).

The paper's path-probability bounds (Properties 1–5) reappear here at
shard granularity: every shard persists, per term, an upper bound on
any answer probability the shard can contribute.  Once the global heap
holds k results, a shard whose query bound is *strictly below* the
current k-th probability is skipped entirely — the scatter never
touches it — with the skip counted in ``stats["corpus"]`` and the
``corpus.*`` metrics.  Answers are bit-identical to a brute-force
search over all documents concatenated into one tree.
"""

from repro.corpus.builder import (BOUNDS_FILE, BOUNDS_FORMAT, CORPUS_FILE,
                                  CORPUS_FORMAT, CorpusDocument,
                                  CorpusManifest, build_corpus,
                                  compute_bounds, concat_documents,
                                  load_corpus_manifest, is_corpus_directory,
                                  read_bounds, write_bounds)
from repro.corpus.replication import (HedgePolicy, LatencyTracker,
                                      ReplicaHealth, ReplicaSelector,
                                      replica_dir_name, replica_name)
from repro.corpus.service import CorpusService, corpus_fsck
from repro.corpus.sharding import STRATEGIES, assign_shards

__all__ = [
    "CORPUS_FILE", "CORPUS_FORMAT", "BOUNDS_FILE", "BOUNDS_FORMAT",
    "CorpusDocument", "CorpusManifest", "CorpusService",
    "HedgePolicy", "LatencyTracker", "ReplicaHealth",
    "ReplicaSelector", "assign_shards", "build_corpus",
    "compute_bounds", "concat_documents", "corpus_fsck",
    "is_corpus_directory", "load_corpus_manifest", "read_bounds",
    "replica_dir_name", "replica_name", "write_bounds",
    "STRATEGIES",
]
