"""Building a sharded corpus on disk, and reading it back.

A corpus directory looks like::

    corpusdir/
      CORPUS.json               # the corpus manifest (atomic write)
      shards/
        s0000/                  # a full snapshot database directory
          CURRENT               #   (docs/STORAGE.md), searchable on
          snapshots/g00000001/  #   its own with the ordinary tools
          BOUNDS.json           # per-term probability bounds summary
        s0001/
        ...

Each shard holds its documents concatenated under one synthetic
ordinary root (edge probability 1).  SLCA and ELCA probabilities are
*subtree-local* — a node's answer probability depends only on its own
subtree — so concatenation changes no document's answers; the only new
candidate is the synthetic root itself, which the corpus search layer
filters out (docs/CORPUS.md).  Within a shard, documents keep their
global order, and the manifest records each document's child position
under the corpus-wide concatenation, so a shard-local Dewey code
rewrites to the global code by swapping one component.

``BOUNDS.json`` persists, per term, ``min(1, sum of path
probabilities of the term's posting nodes)`` — by the union bound an
upper bound on the probability that *any* node matching the term
exists, hence on any SLCA probability involving the term.  The file
names the snapshot generation it was computed from; a reader seeing a
different live generation must recompute instead of trusting it.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import QueryError, StorageError
from repro.index.inverted import InvertedIndex
from repro.index.storage import Database, _atomic_write, save_database
from repro.obs.metrics import Collector, NULL_COLLECTOR
from repro.prxml.model import NodeType, PDocument, PNode
from repro.corpus.replication import replica_dir_name
from repro.corpus.sharding import assign_shards

CORPUS_FILE = "CORPUS.json"
CORPUS_FORMAT = "repro.corpus/v1"
BOUNDS_FILE = "BOUNDS.json"
BOUNDS_FORMAT = "repro.corpus.bounds/v1"
SHARDS_DIR = "shards"

#: Label of the synthetic root every shard (and the oracle's global
#: concatenation) hangs its documents under.
ROOT_LABEL = "corpus"


@dataclass(frozen=True)
class CorpusDocument:
    """One document's placement in the corpus.

    Attributes:
        name: unique document name.
        global_position: the document's 1-based child position under
            the corpus-wide concatenation root — component two of its
            nodes' *global* Dewey codes.
        shard: 0-based shard index.
        local_position: 1-based child position under the *shard's*
            synthetic root — component two of its nodes' shard-local
            codes.
        nodes: node count (sharding weight, sanity checks).
    """

    name: str
    global_position: int
    shard: int
    local_position: int
    nodes: int


@dataclass(frozen=True)
class CorpusManifest:
    """The parsed ``CORPUS.json``."""

    directory: str
    strategy: str
    root_label: str
    shard_names: Tuple[str, ...]
    documents: Tuple[CorpusDocument, ...]
    #: Independent on-disk copies of each shard (1 = unreplicated;
    #: manifests written before replication existed parse as 1).
    replicas: int = 1

    @property
    def shard_count(self) -> int:
        return len(self.shard_names)

    def shard_dir(self, shard: int) -> str:
        """Absolute path of shard ``shard``'s *primary* replica (the
        bare shard directory — identical to the pre-replication
        layout, so every legacy reader keeps working)."""
        return self.replica_dir(shard, 0)

    def replica_dir(self, shard: int, replica: int) -> str:
        """Absolute path of one replica's database directory."""
        return os.path.join(
            self.directory, SHARDS_DIR,
            replica_dir_name(self.shard_names[shard], replica))

    def replica_dirs(self, shard: int) -> List[str]:
        """All replica directories of one shard, primary first."""
        return [self.replica_dir(shard, replica)
                for replica in range(self.replicas)]

    def shard_documents(self, shard: int) -> List[CorpusDocument]:
        """The shard's documents in local (= global) order."""
        return sorted((doc for doc in self.documents
                       if doc.shard == shard),
                      key=lambda doc: doc.local_position)

    def position_map(self, shard: int) -> Dict[int, int]:
        """``local_position -> global_position`` for one shard."""
        return {doc.local_position: doc.global_position
                for doc in self.documents if doc.shard == shard}


def shard_name(shard: int) -> str:
    """Zero-padded directory name of shard ``shard`` (``s0003``)."""
    return f"s{shard:04d}"


def is_corpus_directory(directory: str) -> bool:
    """Whether ``directory`` holds a corpus (a ``CORPUS.json``)."""
    return os.path.isfile(os.path.join(os.fspath(directory), CORPUS_FILE))


# -- concatenation -------------------------------------------------------------


def concat_documents(documents: Sequence[Tuple[str, PDocument]],
                     root_label: str = ROOT_LABEL) -> PDocument:
    """Concatenate p-documents under one synthetic ordinary root.

    Document ``i`` (0-based) becomes the root's child at position
    ``i + 1`` with edge probability 1, so every node's Dewey code
    gains a ``(1, i + 1, ...)`` prefix while its path probability —
    and therefore its SLCA/ELCA probability — is untouched.  Inputs
    are deep-copied; callers keep their documents.
    """
    if not documents:
        raise QueryError("cannot concatenate an empty document list")
    root = PNode(root_label, NodeType.ORDINARY)
    for _, document in documents:
        root.add_child(document.copy().root)
    return PDocument(root)


# -- bounds --------------------------------------------------------------------


def compute_bounds(index: InvertedIndex) -> Tuple[Dict[str, float], float]:
    """Per-term probability bounds over one (shard) index.

    Returns ``(bounds, max_path_probability)``: for every indexed term
    the union-bound probability that any matching node exists (capped
    at 1), and the largest path probability among posting nodes — the
    loosest answer any query against this shard could score.
    """
    links = index.encoded.links
    path_probability = [0.0] * len(links)
    for node_id, link in enumerate(links):
        probability = 1.0
        for edge_probability in link:
            probability *= edge_probability
        path_probability[node_id] = probability
    bounds: Dict[str, float] = {}
    best = 0.0
    for term, ids in index.raw_postings().items():
        total = 0.0
        for node_id in ids:
            probability = path_probability[node_id]
            total += probability
            if probability > best:
                best = probability
        bounds[term] = min(1.0, total)
    return bounds, best


def write_bounds(shard_dir: str, generation: Optional[str],
                 bounds: Dict[str, float],
                 max_path_probability: float) -> None:
    """Persist a shard's ``BOUNDS.json`` (atomically)."""
    payload = {
        "format": BOUNDS_FORMAT,
        "generation": generation,
        "max_path_probability": max_path_probability,
        "terms": bounds,
    }
    _atomic_write(os.path.join(shard_dir, BOUNDS_FILE),
                  json.dumps(payload, sort_keys=True))


def read_bounds(shard_dir: str) -> Optional[Dict[str, object]]:
    """A shard's persisted bounds, or ``None`` when absent/unreadable.

    Bounds are an optimisation, never a correctness dependency: a
    missing or corrupt file degrades to "recompute from the index",
    so this reader swallows shape problems instead of raising.
    """
    path = os.path.join(shard_dir, BOUNDS_FILE)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) \
            or payload.get("format") != BOUNDS_FORMAT \
            or not isinstance(payload.get("terms"), dict):
        return None
    return payload


# -- build / load --------------------------------------------------------------


def build_corpus(documents: Sequence[Tuple[str, PDocument]],
                 directory: str, shards: int = 4,
                 strategy: str = "hash", replicas: int = 1,
                 collector: Collector = NULL_COLLECTOR) -> CorpusManifest:
    """Shard ``documents`` into a corpus directory.

    Every shard — including ones the assignment leaves empty — is
    written as a complete snapshot database plus its bounds summary,
    and the manifest lands last (atomically), so a reader never sees a
    manifest naming a shard that is not fully on disk.

    With ``replicas=N > 1``, each shard is written as N *independent
    copies* in distinct directories (``s0000``, ``s0000.r1``, ...):
    the primary is built once, then copied file-for-file, so every
    replica shares the primary's content fingerprint (the same
    snapshot generation, the same checksummed manifest, the same
    ``BOUNDS.json``) while losing any single directory loses no data.
    :class:`~repro.corpus.CorpusService` routes each shard visit to a
    healthy replica and fails over on error (docs/CORPUS.md).

    Args:
        documents: ``(name, document)`` pairs; the sequence order *is*
            the corpus's global document order.
        directory: corpus directory (created if missing).
        shards: shard count.
        strategy: a :data:`repro.corpus.sharding.STRATEGIES` entry.
        replicas: independent copies of each shard (default 1).
        collector: receives ``corpus.build.*`` counters/timers.

    Returns:
        The manifest that was written.
    """
    directory = os.fspath(directory)
    if replicas < 1:
        raise QueryError(f"replicas must be >= 1, got {replicas}")
    names = [name for name, _ in documents]
    sizes = [len(document) for _, document in documents]
    assignment = assign_shards(names, sizes, shards, strategy)

    os.makedirs(os.path.join(directory, SHARDS_DIR), exist_ok=True)
    entries: List[CorpusDocument] = []
    per_shard: List[List[Tuple[str, PDocument]]] = \
        [[] for _ in range(shards)]
    for position, (name, document) in enumerate(documents):
        shard = assignment[position]
        per_shard[shard].append((name, document))
        entries.append(CorpusDocument(
            name=name, global_position=position + 1, shard=shard,
            local_position=len(per_shard[shard]),
            nodes=sizes[position]))

    shard_names: List[str] = []
    with collector.time("corpus.build"):
        for shard, members in enumerate(per_shard):
            label = shard_name(shard)
            shard_names.append(label)
            shard_dir = os.path.join(directory, SHARDS_DIR, label)
            if members:
                combined = concat_documents(members)
            else:
                combined = PDocument(PNode(ROOT_LABEL,
                                           NodeType.ORDINARY))
            database = Database.from_document(combined)
            generation = save_database(database, shard_dir,
                                       collector=collector)
            bounds, best = compute_bounds(database.index)
            write_bounds(shard_dir, generation, bounds, best)
            for replica in range(1, replicas):
                replica_dir = os.path.join(
                    directory, SHARDS_DIR,
                    replica_dir_name(label, replica))
                # A rebuild over an existing corpus replaces the
                # replica wholesale; copying file-for-file preserves
                # the primary's generation and checksums, which is
                # what makes the copies bit-substitutable.
                if os.path.isdir(replica_dir):
                    shutil.rmtree(replica_dir)
                shutil.copytree(shard_dir, replica_dir)
                if collector.enabled:
                    collector.count("corpus.build.replicas")
            if collector.enabled:
                collector.count("corpus.build.shards")
                collector.count("corpus.build.nodes", len(combined))

    manifest_payload = {
        "format": CORPUS_FORMAT,
        "strategy": strategy,
        "root_label": ROOT_LABEL,
        "replicas": replicas,
        "shards": shard_names,
        "documents": [{
            "name": doc.name,
            "global_position": doc.global_position,
            "shard": doc.shard,
            "local_position": doc.local_position,
            "nodes": doc.nodes,
        } for doc in entries],
    }
    _atomic_write(os.path.join(directory, CORPUS_FILE),
                  json.dumps(manifest_payload, indent=2, sort_keys=True))
    if collector.enabled:
        collector.count("corpus.build.documents", len(entries))
    return load_corpus_manifest(directory)


def load_corpus_manifest(directory: str) -> CorpusManifest:
    """Parse ``CORPUS.json``; raises :class:`StorageError` when the
    directory is not a corpus or the manifest is malformed."""
    directory = os.fspath(directory)
    path = os.path.join(directory, CORPUS_FILE)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as error:
        raise StorageError(
            f"{directory} is not a corpus directory: cannot read "
            f"{CORPUS_FILE} ({error})") from error
    except ValueError as error:
        raise StorageError(
            f"corrupt corpus manifest {path}: {error}") from error
    if not isinstance(payload, dict) \
            or payload.get("format") != CORPUS_FORMAT:
        raise StorageError(
            f"{path} is not a {CORPUS_FORMAT} manifest")
    try:
        shard_names = tuple(str(name) for name in payload["shards"])
        documents = tuple(CorpusDocument(
            name=str(entry["name"]),
            global_position=int(entry["global_position"]),
            shard=int(entry["shard"]),
            local_position=int(entry["local_position"]),
            nodes=int(entry["nodes"]),
        ) for entry in payload["documents"])
        strategy = str(payload.get("strategy", "hash"))
        root_label = str(payload.get("root_label", ROOT_LABEL))
        replicas = int(payload.get("replicas", 1))
    except (KeyError, TypeError, ValueError) as error:
        raise StorageError(
            f"corrupt corpus manifest {path}: {error}") from error
    if replicas < 1:
        raise StorageError(
            f"corrupt corpus manifest {path}: replicas must be >= 1, "
            f"got {replicas}")
    for doc in documents:
        if not 0 <= doc.shard < len(shard_names):
            raise StorageError(
                f"corrupt corpus manifest {path}: document "
                f"{doc.name!r} names shard {doc.shard} of "
                f"{len(shard_names)}")
    return CorpusManifest(directory=directory, strategy=strategy,
                          root_label=root_label,
                          shard_names=shard_names,
                          documents=documents, replicas=replicas)
