"""Document-to-shard assignment strategies.

Assignment never affects answers — the corpus search merges shard
heaps under the total result order, so any partition of the documents
yields the same top-k.  What assignment *does* affect is balance
(wall-clock of the slowest shard) and prune locality (documents that
score high for a workload's terms ending up in few shards lets the
bound skip the rest).  Two strategies cover the common cases:

``hash``
    Stable placement by document name: adding a document never moves
    the others.  The right default for growing corpora.

``size``
    Greedy balanced placement by node count (largest first onto the
    currently lightest shard).  Minimises the worst shard for static
    corpora with skewed document sizes.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence

from repro.exceptions import QueryError

#: Supported assignment strategies, in documentation order.
STRATEGIES = ("hash", "size")


def assign_shards(names: Sequence[str], sizes: Sequence[int],
                  shards: int, strategy: str = "hash") -> List[int]:
    """Shard index (0-based) for each document, aligned with ``names``.

    Args:
        names: unique document names (hash keys for ``hash``).
        sizes: node counts aligned with ``names`` (weights for
            ``size``; ignored by ``hash``).
        shards: number of shards (>= 1).
        strategy: one of :data:`STRATEGIES`.

    Raises:
        QueryError: on an unknown strategy, a non-positive shard
            count, duplicate names, or misaligned inputs.
    """
    if shards <= 0:
        raise QueryError(f"shard count must be positive, got {shards}")
    if len(names) != len(sizes):
        raise QueryError(
            f"names/sizes misaligned: {len(names)} != {len(sizes)}")
    if len(set(names)) != len(names):
        raise QueryError("document names must be unique within a corpus")
    if strategy == "hash":
        return [_stable_hash(name) % shards for name in names]
    if strategy == "size":
        return _assign_balanced(sizes, shards)
    choices = ", ".join(STRATEGIES)
    raise QueryError(
        f"unknown sharding strategy {strategy!r}; choose one of {choices}")


def _stable_hash(name: str) -> int:
    """Process-independent hash (``hash()`` is salted per run)."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def _assign_balanced(sizes: Sequence[int], shards: int) -> List[int]:
    """Largest-first greedy onto the lightest shard (ties: lowest id)."""
    order = sorted(range(len(sizes)), key=lambda i: (-sizes[i], i))
    loads = [0] * shards
    assignment = [0] * len(sizes)
    for position in order:
        shard = min(range(shards), key=lambda s: (loads[s], s))
        assignment[position] = shard
        loads[shard] += max(1, sizes[position])
    return assignment
