"""CorpusService: bound-driven scatter-gather over shard services.

One :class:`CorpusService` wraps one :class:`~repro.service.QueryService`
per shard and answers the same ``search``/``batch_search`` contract the
single-document service does, so the HTTP serving layer (docs/SERVING.md)
can sit in front of either without knowing which it got.

A query runs as a *scatter* over the shards and a *gather* into one
global :class:`~repro.core.heap.TopKHeap`:

1. Every shard's query bound — the minimum over the query terms of its
   persisted per-term probability bounds (``BOUNDS.json``,
   :mod:`repro.corpus.builder`) — is computed up front, and shards are
   visited most-promising-first.
2. A shard whose bound is 0 has no world containing every term; it is
   skipped outright (``no_match``).
3. Once the global heap holds k results, a shard whose bound is
   *strictly below* the current k-th probability cannot contribute —
   an equal bound might still enter on the document-order tiebreak, so
   the comparison is strict (see :meth:`TopKHeap.threshold`) — and is
   pruned without being searched (``pruned``).  Prune decisions depend
   on completion order, but the answer set never does: a pruned shard
   provably cannot change it.
4. Searched shards run on the serial, thread, or process executor; a
   shard-local answer's Dewey code rewrites to the global code by
   swapping its document-position component per the corpus manifest.

Per-shard failures degrade instead of failing the query: a shard whose
executor task dies is retried serially in the coordinator, and a shard
that cannot be loaded at all (e.g. quarantined by fsck) is reported in
``stats["corpus"]`` on a *partial* outcome while the healthy shards
still answer.  ``corpus.*`` metrics count searches, prunes, skips,
degradations, and failures.
"""

from __future__ import annotations

import hashlib
import logging
import os
import threading
from collections import deque
from concurrent.futures import (FIRST_COMPLETED, Future,
                                ProcessPoolExecutor, ThreadPoolExecutor,
                                wait)
from contextlib import nullcontext
from dataclasses import dataclass, replace
from typing import (Any, Dict, Iterable, List, Optional, Sequence, Set,
                    Tuple, Union)

from repro.core import Algorithm
from repro.core.api import validate_query
from repro.core.heap import TopKHeap
from repro.core.result import SearchOutcome, SLCAResult
from repro.corpus.builder import (CorpusManifest, compute_bounds,
                                  load_corpus_manifest, read_bounds)
from repro.encoding.dewey import DeweyCode
from repro.exceptions import QueryError, ReproError, StorageError
from repro.index.fsck import FsckReport, fsck_database
from repro.index.tokenizer import normalize_query
from repro.obs.metrics import Collector, NULL_COLLECTOR, Stopwatch
from repro.resilience.deadline import (Deadline, DeadlineLike,
                                       REASON_DEADLINE, as_deadline)
from repro.service.service import (BatchOutcome, DEFAULT_CACHE_SIZE,
                                   EXECUTORS, QueryService)

_log = logging.getLogger("repro.corpus")

#: Termination reason when one or more shards could not contribute.
REASON_SHARD_FAILURE = "shard_failure"

#: Shard actions recorded per query in ``stats["corpus"]["detail"]``.
ACTION_SEARCHED = "searched"
ACTION_PRUNED = "pruned"
ACTION_NO_MATCH = "no_match"
ACTION_FAILED = "failed"


@dataclass(frozen=True)
class CorpusState:
    """What :meth:`CorpusService.reload` returns: the corpus-level
    generation fingerprint and epoch the serving layer reports."""

    generation: str
    epoch: int


@dataclass(frozen=True)
class _ShardState:
    """One shard's immutable view: its service, bounds, and code map.

    A failed shard (``service is None``) keeps its slot so queries can
    report it; ``error`` says why it is down.  Reload replaces whole
    ``_ShardState`` values — never mutates them — so a running query's
    snapshot stays coherent.
    """

    position: int
    name: str
    directory: str
    service: Optional[QueryService]
    error: Optional[str]
    bounds: Dict[str, float]
    max_path_probability: float
    positions: Dict[int, int]

    def query_bound(self, terms: Sequence[str]) -> float:
        """Upper bound on any answer probability this shard can
        contribute for ``terms`` (0 when any term is absent)."""
        bound = 1.0
        for term in terms:
            term_bound = self.bounds.get(term, 0.0)
            if term_bound < bound:
                bound = term_bound
            if bound <= 0.0:
                return 0.0
        return bound


class CorpusService:
    """Top-k keyword search over a sharded corpus directory.

    Args:
        directory: a corpus directory built by
            :func:`repro.corpus.build_corpus`.
        cache_size: per-shard query cache size (each shard's
            :class:`QueryService` gets its own caches).
        collector: shared metrics collector; receives the per-shard
            services' counters *and* the ``corpus.*`` family.
        verify: checksum-verify shard snapshots on load/reload.

    A shard that fails to load does not fail construction: it is
    recorded as down, queries answer partially without it, and a later
    :meth:`reload` (say, after ``repro corpus fsck --repair``) revives
    it.
    """

    def __init__(self, directory: Union[str, os.PathLike],
                 cache_size: int = DEFAULT_CACHE_SIZE,
                 collector: Optional[Collector] = None,
                 verify: bool = True) -> None:
        self.collector = collector if collector is not None \
            else NULL_COLLECTOR
        self._directory = os.fspath(directory)
        self._cache_size = cache_size
        self._verify = verify
        self._manifest = load_corpus_manifest(self._directory)
        self._reload_lock = threading.Lock()
        # Single-writer atomic-reference swap, same pattern as
        # QueryService._state: reload() builds replacement shard
        # states under _reload_lock and installs them in one
        # assignment; queries read the tuple once, lock-free.
        self._shards: Tuple[_ShardState, ...] = tuple(  # repro: guarded-by[_reload_lock, writes]
            self._load_shard(position)
            for position in range(self._manifest.shard_count))

    # -- shard loading ---------------------------------------------------------

    @property
    def manifest(self) -> CorpusManifest:
        return self._manifest

    @property
    def directory(self) -> str:
        return self._directory

    def _load_shard(self, position: int) -> _ShardState:
        """Load one shard; a failure yields a down-but-present state."""
        name = self._manifest.shard_names[position]
        shard_dir = self._manifest.shard_dir(position)
        positions = self._manifest.position_map(position)
        try:
            service = QueryService(shard_dir,
                                   cache_size=self._cache_size,
                                   collector=self.collector,
                                   verify=self._verify)
        except (ReproError, OSError, ValueError) as error:
            message = f"{type(error).__name__}: {error}"
            _log.error("corpus shard %s failed to load: %s", name,
                       message)
            if self.collector.enabled:
                self.collector.count("corpus.shard_load_failures")
            return _ShardState(position=position, name=name,
                               directory=shard_dir, service=None,
                               error=message, bounds={},
                               max_path_probability=0.0,
                               positions=positions)
        bounds, best = self._resolve_bounds(shard_dir, service)
        return _ShardState(position=position, name=name,
                           directory=shard_dir, service=service,
                           error=None, bounds=bounds,
                           max_path_probability=best,
                           positions=positions)

    def _resolve_bounds(self, shard_dir: str, service: QueryService
                        ) -> Tuple[Dict[str, float], float]:
        """The shard's persisted bounds, or a recompute when the
        persisted summary names a different snapshot generation."""
        generation = service.storage_stats()["generation"]
        payload = read_bounds(shard_dir)
        if payload is not None and payload.get("generation") == generation:
            terms = payload["terms"]
            if isinstance(terms, dict):
                bounds = {str(term): float(value)
                          for term, value in terms.items()}
                best = float(payload.get("max_path_probability", 1.0))
                return bounds, best
        if self.collector.enabled:
            self.collector.count("corpus.bounds_recomputed")
        return compute_bounds(service.current_index())

    # -- search ----------------------------------------------------------------

    def search(self, keywords: Iterable[str], k: int = 10,
               algorithm: Union[Algorithm, str] = Algorithm.EAGER,
               semantics: str = "slca",
               executor: str = "serial",
               workers: Optional[int] = None,
               deadline: Optional[Union[Deadline, DeadlineLike,
                                        float, int]] = None,
               tracer: Optional[Any] = None) -> SearchOutcome:
        """Global top-k over every shard, merged under the shared
        result order (:mod:`repro.core.order`).

        Same contract as :meth:`QueryService.search` plus the fan-out
        controls: ``executor`` is one of ``serial``/``thread``/
        ``process`` and ``workers`` bounds in-flight shards.  Answers
        are bit-identical across executors, worker counts, and shard
        completion orders; only ``stats["corpus"]`` (which shards were
        searched vs pruned) varies with timing.
        """
        keywords = validate_query(keywords, k)
        terms = sorted(normalize_query(keywords))
        if not terms:
            raise QueryError("keyword query contains no terms")
        if executor not in EXECUTORS:
            choices = ", ".join(EXECUTORS)
            raise QueryError(f"unknown executor {executor!r}; "
                             f"choose one of {choices}")
        if workers is not None and workers <= 0:
            raise QueryError(f"workers must be positive, got {workers}")
        algorithm_name = algorithm.value \
            if isinstance(algorithm, Algorithm) else str(algorithm)
        budget = as_deadline(deadline)
        shards = self._shards
        traced = tracer is not None and getattr(tracer, "enabled", False)

        with self.collector.time("corpus.search"):
            merge = _Merge(k, self.collector)
            plan: List[Tuple[_ShardState, float]] = []
            for shard in shards:
                if shard.service is None:
                    merge.record_failure(shard, 0.0, shard.error)
                    continue
                plan.append((shard, shard.query_bound(terms)))
            # Most-promising shard first: the sooner the heap holds k
            # strong answers, the more later shards the bound prunes.
            plan.sort(key=lambda entry: (-entry[1],
                                         entry[0].position))
            width = workers if workers is not None \
                else min(4, max(1, len(plan)))

            span_ctx = tracer.span(
                "corpus.search", shards=len(shards),
                terms=" ".join(terms), k=k,
                executor=executor) if traced else nullcontext()
            with span_ctx as corpus_span:
                if executor == "serial" or width == 1 or len(plan) <= 1:
                    self._scatter_serial(plan, merge, keywords, k,
                                         algorithm, semantics, budget,
                                         tracer if traced else None,
                                         corpus_span)
                else:
                    self._scatter_pool(executor, width, plan, merge,
                                       keywords, k, algorithm,
                                       algorithm_name, semantics,
                                       budget,
                                       tracer if traced else None,
                                       corpus_span)
                if traced and corpus_span is not None:
                    corpus_span.attrs.update(
                        searched=merge.counts[ACTION_SEARCHED],
                        pruned=merge.counts[ACTION_PRUNED],
                        no_match=merge.counts[ACTION_NO_MATCH],
                        failed=merge.counts[ACTION_FAILED])

            outcome = merge.outcome(
                shards_total=len(shards), executor=executor,
                workers=width, algorithm=algorithm_name,
                semantics=semantics, k=k, terms=terms,
                service_state=self._state_block(shards))
        if self.collector.enabled:
            self.collector.count("corpus.searches")
            for action, total in merge.counts.items():
                if total:
                    self.collector.count(f"corpus.shards_{action}",
                                         total)
            if merge.degraded:
                self.collector.count("corpus.degraded", merge.degraded)
            self.collector.observe("corpus.searched_per_query",
                                   merge.counts[ACTION_SEARCHED])
            self.collector.observe("corpus.pruned_per_query",
                                   merge.counts[ACTION_PRUNED])
        return outcome

    # -- scatter strategies ----------------------------------------------------

    def _scatter_serial(self, plan: List[Tuple[_ShardState, float]],
                        merge: "_Merge", keywords: List[str], k: int,
                        algorithm: Union[Algorithm, str],
                        semantics: str, budget: DeadlineLike,
                        tracer: Optional[Any],
                        parent_span: Optional[Any]) -> None:
        """One shard at a time, pruning between completions — the
        tightest pruning the bounds allow (the benchmark's
        ``bounded-serial`` configuration)."""
        for shard, bound in plan:
            action = merge.decide(bound)
            if action is not None:
                merge.record_skip(shard, bound, action)
                continue
            try:
                outcome = self._search_shard(shard, bound, keywords, k,
                                             algorithm, semantics,
                                             budget, tracer,
                                             parent_span)
            except (ReproError, OSError, ValueError) as error:
                merge.record_failure(shard, bound,
                                     f"{type(error).__name__}: {error}")
                continue
            merge.absorb(shard, bound, outcome)

    def _scatter_pool(self, executor: str, width: int,
                      plan: List[Tuple[_ShardState, float]],
                      merge: "_Merge", keywords: List[str], k: int,
                      algorithm: Union[Algorithm, str],
                      algorithm_name: str, semantics: str,
                      budget: DeadlineLike, tracer: Optional[Any],
                      parent_span: Optional[Any]) -> None:
        """Completion-driven scatter on a thread or process pool.

        Up to ``width`` shards are in flight; every completion merges
        immediately and the *next* submission re-checks the prune
        condition against the now-tighter global threshold, so late
        shards still benefit from early strong answers.  A task that
        dies (worker crash, broken pool) degrades to a serial retry in
        the coordinator; only a shard that fails both ways is reported
        failed.
        """
        queue = deque(plan)
        pending: Dict[Future, Tuple[_ShardState, float,
                                    Optional[Any]]] = {}
        pool: Union[ThreadPoolExecutor, ProcessPoolExecutor]
        if executor == "process":
            pool = ProcessPoolExecutor(max_workers=width)
        else:
            pool = ThreadPoolExecutor(
                max_workers=width, thread_name_prefix="corpus-scatter")
        try:
            while queue or pending:
                while queue and len(pending) < width:
                    shard, bound = queue.popleft()
                    action = merge.decide(bound)
                    if action is not None:
                        merge.record_skip(shard, bound, action)
                        continue
                    future = self._submit(pool, executor, shard,
                                          bound, keywords, k,
                                          algorithm, algorithm_name,
                                          semantics, budget, tracer,
                                          parent_span)
                    span = self._begin_span(tracer, parent_span,
                                            shard, bound) \
                        if executor == "process" else None
                    pending[future] = (shard, bound, span)
                if not pending:
                    break
                done, _ = wait(set(pending),
                               return_when=FIRST_COMPLETED)
                for future in done:
                    shard, bound, span = pending.pop(future)
                    self._gather_one(future, executor, shard, bound,
                                     span, merge, keywords, k,
                                     algorithm, semantics, budget,
                                     tracer)
        finally:
            pool.shutdown(wait=True)

    def _submit(self, pool: Any, executor: str, shard: _ShardState,
                bound: float, keywords: List[str], k: int,
                algorithm: Union[Algorithm, str], algorithm_name: str,
                semantics: str, budget: DeadlineLike,
                tracer: Optional[Any],
                parent_span: Optional[Any]) -> Future:
        if executor == "process":
            remaining: Optional[float] = None
            if budget.enabled and getattr(budget, "budget_ms",
                                          None) is not None:
                remaining = max(0.001, budget.remaining_ms)
            return pool.submit(_process_shard,
                               (shard.directory, tuple(keywords), k + 1,
                                algorithm_name, semantics, remaining))
        # Thread tasks open their corpus.shard span in the worker
        # thread (explicit parent), so the shard's inner query spans
        # nest under it via the tracer's per-thread context.
        return pool.submit(self._search_shard, shard, bound, keywords,
                           k, algorithm, semantics, budget, tracer,
                           parent_span)

    def _begin_span(self, tracer: Optional[Any],
                    parent_span: Optional[Any], shard: _ShardState,
                    bound: float) -> Optional[Any]:
        """Coordinator-side shard span for process tasks (covers queue
        wait + execution; serial/thread tasks open theirs in-line)."""
        if tracer is None:
            return None
        return tracer.begin("corpus.shard", parent=parent_span,
                            shard=shard.name, bound=round(bound, 9),
                            executor="process")

    def _gather_one(self, future: Future, executor: str,
                    shard: _ShardState, bound: float,
                    span: Optional[Any], merge: "_Merge",
                    keywords: List[str], k: int,
                    algorithm: Union[Algorithm, str], semantics: str,
                    budget: DeadlineLike,
                    tracer: Optional[Any]) -> None:
        """Merge one completed future, degrading a dead task to a
        serial in-coordinator retry."""
        degraded = False
        try:
            payload = future.result()
            outcome = _decode_rows(payload) if executor == "process" \
                else payload
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as error:  # noqa: broad — any task death degrades
            _log.warning("corpus shard %s task failed (%s: %s); "
                         "retrying serially", shard.name,
                         type(error).__name__, error)
            degraded = True
            try:
                outcome = self._search_shard(shard, bound, keywords, k,
                                             algorithm, semantics,
                                             budget, None, None,
                                             span=False)
            except (ReproError, OSError, ValueError) as retry_error:
                message = (f"{type(retry_error).__name__}: "
                           f"{retry_error}")
                merge.record_failure(shard, bound, message)
                if tracer is not None and span is not None:
                    tracer.finish(span, status="error", error=message)
                return
        if degraded:
            merge.degraded += 1
        merge.absorb(shard, bound, outcome)
        if tracer is not None and span is not None:
            tracer.finish(span, results=len(outcome.results),
                          **({"degraded": True} if degraded else {}))

    def _search_shard(self, shard: _ShardState, bound: float,
                      keywords: List[str], k: int,
                      algorithm: Union[Algorithm, str], semantics: str,
                      budget: DeadlineLike, tracer: Optional[Any],
                      parent_span: Optional[Any],
                      span: bool = True) -> SearchOutcome:
        """Run one shard's query in the current thread.

        ``k + 1`` answers are requested because the shard's synthetic
        root can occupy one slot; after the merge filters it, the
        shard still contributes its full top-k.
        """
        assert shard.service is not None
        ctx = tracer.span("corpus.shard", parent=parent_span,
                          shard=shard.name, bound=round(bound, 9)) \
            if span and tracer is not None else nullcontext()
        with ctx:
            return shard.service.search(
                keywords, k=k + 1, algorithm=algorithm,
                semantics=semantics,
                deadline=budget if budget.enabled else None,
                tracer=tracer)

    # -- service-shaped surface ------------------------------------------------

    def batch_search(self, queries: Sequence[Sequence[str]],
                     k: int = 10,
                     algorithm: Union[Algorithm, str] = Algorithm.EAGER,
                     semantics: str = "slca",
                     workers: Optional[int] = None,
                     executor: str = "thread",
                     deadline_ms: Optional[float] = None,
                     tracer: Optional[Any] = None) -> BatchOutcome:
        """Many queries, each scattered over the shards.

        Queries run in submission order (the scatter inside each query
        is where the parallelism pays); ``deadline_ms`` budgets each
        query individually, and outcomes align with the input order.
        """
        watch = Stopwatch().start()
        outcomes: List[SearchOutcome] = []
        totals = {ACTION_SEARCHED: 0, ACTION_PRUNED: 0,
                  ACTION_NO_MATCH: 0, ACTION_FAILED: 0}
        for query in queries:
            budget = Deadline.after_ms(deadline_ms) \
                if deadline_ms is not None else None
            outcome = self.search(query, k=k, algorithm=algorithm,
                                  semantics=semantics,
                                  executor=executor, workers=workers,
                                  deadline=budget, tracer=tracer)
            block = outcome.stats.get("corpus")
            if isinstance(block, dict):
                for action in totals:
                    totals[action] += int(block.get(action, 0))
            outcomes.append(outcome)
        return BatchOutcome(
            outcomes=outcomes, elapsed_ms=watch.elapsed * 1000.0,
            stats={"queries": len(outcomes), "executor": executor,
                   "workers": workers, "corpus": dict(totals)})

    def storage_stats(self) -> Dict[str, object]:
        """The corpus-level generation fingerprint/epoch plus every
        shard's own storage block (docs/STORAGE.md shape per shard)."""
        shards = self._shards
        blocks: List[Dict[str, object]] = []
        reloads: Dict[str, object] = {"attempts": 0, "successes": 0,
                                      "rejected": 0}
        last_error: Optional[str] = None
        for shard in shards:
            if shard.service is not None:
                block = dict(shard.service.storage_stats())
            else:
                block = {"generation": None,
                         "directory": shard.directory, "epoch": 0,
                         "error": shard.error}
                if last_error is None:
                    last_error = shard.error
            block["shard"] = shard.name
            shard_reloads = block.get("reloads")
            if isinstance(shard_reloads, dict):
                for key in ("attempts", "successes", "rejected"):
                    reloads[key] = int(reloads[key]) \
                        + int(shard_reloads.get(key, 0))
                if last_error is None:
                    last_error = shard_reloads.get("last_error")
            blocks.append(block)
        reloads["last_error"] = last_error
        state = _corpus_state_of(
            [(shard.name, block.get("generation"),
              int(block.get("epoch", 0) or 0))
             for shard, block in zip(shards, blocks)])
        return {"generation": state.generation,
                "directory": self._directory, "epoch": state.epoch,
                "reloads": reloads, "shards": blocks}

    def health_snapshot(self) -> Dict[str, object]:
        """One coherent health view: every shard contributes its own
        locked snapshot (:meth:`QueryService.health_snapshot`), and the
        corpus generation/epoch derive from those same snapshots — not
        from a second, possibly-torn read."""
        shards = self._shards
        blocks: List[Dict[str, object]] = []
        parts: List[Tuple[str, Optional[str], int]] = []
        reloads: Dict[str, object] = {"attempts": 0, "successes": 0,
                                      "rejected": 0}
        last_error: Optional[str] = None
        for shard in shards:
            if shard.service is not None:
                snap = dict(shard.service.health_snapshot())
                snap["ok"] = True
            else:
                snap = {"generation": None, "epoch": 0, "ok": False,
                        "error": shard.error}
                if last_error is None:
                    last_error = shard.error
            snap["shard"] = shard.name
            shard_reloads = snap.get("reloads")
            if isinstance(shard_reloads, dict):
                for key in ("attempts", "successes", "rejected"):
                    reloads[key] = int(reloads[key]) \
                        + int(shard_reloads.get(key, 0))
                if last_error is None:
                    last_error = shard_reloads.get("last_error")
            parts.append((shard.name, snap.get("generation"),
                          int(snap.get("epoch", 0) or 0)))
            blocks.append(snap)
        reloads["last_error"] = last_error
        state = _corpus_state_of(parts)
        return {"generation": state.generation,
                "directory": self._directory, "epoch": state.epoch,
                "reloads": reloads, "breaker": self.breaker_stats(),
                "shards": blocks}

    def breaker_stats(self) -> Dict[str, object]:
        """Aggregated breaker view: the worst shard state wins, and
        the per-shard summaries ride along."""
        shards = self._shards
        severity = {"closed": 0, "half-open": 1, "open": 2}
        worst = "closed"
        failures = 0
        opens = 0
        per_shard: Dict[str, object] = {}
        for shard in shards:
            if shard.service is None:
                continue
            block = shard.service.breaker_stats()
            per_shard[shard.name] = block
            failures += int(block.get("failures", 0) or 0)
            opens += int(block.get("opens", 0) or 0)
            state = str(block.get("state", "closed"))
            if severity.get(state, 0) > severity.get(worst, 0):
                worst = state
        return {"state": worst, "failures": failures, "opens": opens,
                "shards": per_shard}

    def reload(self) -> CorpusState:
        """Reload every shard, reviving ones that were down.

        Each healthy shard hot-swaps through its own
        :meth:`QueryService.reload` (a per-shard rejection keeps that
        shard's old generation serving); a down shard is re-loaded
        from scratch.  Bounds are refreshed against the new
        generations.  Raises :class:`StorageError` only when *no*
        shard is serving afterwards.
        """
        with self._reload_lock:
            failures: List[str] = []
            rebuilt = tuple(self._reload_shard(shard, failures)
                            for shard in self._shards)
            self._shards = rebuilt
        if rebuilt and all(shard.service is None for shard in rebuilt):
            raise StorageError("corpus reload rejected: no shard is "
                               "serving (" + "; ".join(failures) + ")")
        if self.collector.enabled:
            self.collector.count("corpus.reloads")
            if failures:
                self.collector.count("corpus.reload_shard_failures",
                                     len(failures))
        return _corpus_state_of(
            [(shard.name,
              shard.service.storage_stats()["generation"]
              if shard.service is not None else None,
              int(shard.service.storage_stats()["epoch"])
              if shard.service is not None else 0)
             for shard in rebuilt])

    def _reload_shard(self, shard: _ShardState,
                      failures: List[str]) -> _ShardState:
        if shard.service is None:
            fresh = self._load_shard(shard.position)
            if fresh.error is not None:
                failures.append(f"{shard.name}: {fresh.error}")
            return fresh
        try:
            shard.service.reload(verify=self._verify)
        except StorageError as error:
            # The shard's previous generation keeps serving; its
            # bounds still describe that generation, so keep them.
            failures.append(f"{shard.name}: {error}")
            return shard
        bounds, best = self._resolve_bounds(shard.directory,
                                            shard.service)
        return replace(shard, bounds=bounds,
                       max_path_probability=best, error=None)

    def fsck(self, repair: bool = False) -> List[Tuple[str, FsckReport]]:
        """Per-shard storage triage (docs/STORAGE.md); see
        :func:`corpus_fsck`."""
        return corpus_fsck(self._directory, repair=repair,
                           collector=self.collector)

    def _state_block(self, shards: Tuple[_ShardState, ...]
                     ) -> Dict[str, object]:
        state = _corpus_state_of(
            [(shard.name,
              shard.service.storage_stats()["generation"]
              if shard.service is not None else None,
              int(shard.service.storage_stats()["epoch"])
              if shard.service is not None else 0)
             for shard in shards])
        return {"generation": state.generation, "epoch": state.epoch}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        healthy = sum(1 for shard in self._shards
                      if shard.service is not None)
        return (f"CorpusService(shards={len(self._shards)}, "
                f"healthy={healthy}, dir={self._directory!r})")


def corpus_fsck(directory: Union[str, os.PathLike],
                repair: bool = False,
                collector: Collector = NULL_COLLECTOR
                ) -> List[Tuple[str, FsckReport]]:
    """Run :func:`repro.index.fsck.fsck_database` over every shard.

    Returns ``(shard_name, report)`` pairs in shard order.  Corruption
    in one shard never hides another's report, and with ``repair=True``
    each shard quarantines/recovers independently — a corpus query
    after a repair answers from the healthy shards.
    """
    manifest = load_corpus_manifest(directory)
    reports: List[Tuple[str, FsckReport]] = []
    for position, name in enumerate(manifest.shard_names):
        reports.append((name, fsck_database(manifest.shard_dir(position),
                                            repair=repair,
                                            collector=collector)))
    return reports


# -- merge bookkeeping ---------------------------------------------------------


class _Merge:
    """The gather side of one corpus query: the global heap, the
    origin map for re-hydrating answers, and the per-shard ledger."""

    def __init__(self, k: int, collector: Collector):
        self.k = k
        # The merge heap stays un-instrumented: heap.* counters keep
        # meaning "per-shard algorithm heaps", and corpus.* covers the
        # gather side.
        self.heap = TopKHeap(k)
        self.origins: Dict[Tuple[int, ...],
                           Tuple[_ShardState, DeweyCode]] = {}
        self.counts = {ACTION_SEARCHED: 0, ACTION_PRUNED: 0,
                       ACTION_NO_MATCH: 0, ACTION_FAILED: 0}
        self.detail: List[Dict[str, object]] = []
        self.degraded = 0
        self.partial = False
        self.reasons: Set[str] = set()

    def decide(self, bound: float) -> Optional[str]:
        """Whether a shard with ``bound`` can be skipped right now.

        Strictly-below comparison against the live k-th probability:
        an equal bound might still yield an answer that enters on the
        document-order tiebreak (:meth:`TopKHeap.threshold`), so only
        ``bound < threshold`` — or an impossible query (bound 0) —
        skips the shard.
        """
        if bound <= 0.0:
            return ACTION_NO_MATCH
        if bound < self.heap.threshold:
            return ACTION_PRUNED
        return None

    def record_skip(self, shard: _ShardState, bound: float,
                    action: str) -> None:
        self.counts[action] += 1
        self.detail.append({"shard": shard.name,
                            "bound": round(bound, 9),
                            "action": action})

    def record_failure(self, shard: _ShardState, bound: float,
                       error: Optional[str]) -> None:
        self.counts[ACTION_FAILED] += 1
        self.partial = True
        self.detail.append({"shard": shard.name,
                            "bound": round(bound, 9),
                            "action": ACTION_FAILED, "error": error})

    def absorb(self, shard: _ShardState, bound: float,
               outcome: SearchOutcome) -> None:
        """Merge one shard outcome: filter the synthetic root, rewrite
        codes to the global document positions, offer into the heap."""
        if outcome.partial:
            self.partial = True
            if outcome.termination_reason:
                self.reasons.add(outcome.termination_reason)
        merged = 0
        for result in outcome.results:
            positions = result.code.positions
            if len(positions) < 2:
                continue  # the shard's synthetic root
            global_position = shard.positions.get(positions[1])
            if global_position is None:
                continue  # a child slot the manifest does not know
            code = DeweyCode((positions[0], global_position)
                             + positions[2:], result.code.kinds)
            self.origins[code.positions] = (shard, result.code)
            if self.heap.offer(code, result.probability):
                merged += 1
        self.counts[ACTION_SEARCHED] += 1
        self.detail.append({"shard": shard.name,
                            "bound": round(bound, 9),
                            "action": ACTION_SEARCHED,
                            "results": len(outcome.results),
                            "merged": merged})

    def outcome(self, shards_total: int, executor: str, workers: int,
                algorithm: str, semantics: str, k: int,
                terms: List[str],
                service_state: Dict[str, object]) -> SearchOutcome:
        results: List[SLCAResult] = []
        for result in self.heap.results():
            shard, local_code = self.origins[result.code.positions]
            node = None
            if shard.service is not None:
                try:
                    node = shard.service.current_index() \
                        .encoded.node_at(local_code)
                except ReproError:
                    node = None  # shard swapped mid-query; label falls
                    #              back to the code
            results.append(SLCAResult(code=result.code,
                                      probability=result.probability,
                                      node=node))
        reason: Optional[str] = None
        if REASON_DEADLINE in self.reasons:
            reason = REASON_DEADLINE
        elif self.counts[ACTION_FAILED]:
            reason = REASON_SHARD_FAILURE
        elif self.reasons:
            reason = sorted(self.reasons)[0]
        corpus_block: Dict[str, object] = {
            "shards": shards_total,
            ACTION_SEARCHED: self.counts[ACTION_SEARCHED],
            ACTION_PRUNED: self.counts[ACTION_PRUNED],
            ACTION_NO_MATCH: self.counts[ACTION_NO_MATCH],
            ACTION_FAILED: self.counts[ACTION_FAILED],
            "degraded": self.degraded,
            "executor": executor, "workers": workers,
            "detail": self.detail,
        }
        return SearchOutcome(
            results=results,
            stats={"algorithm": algorithm, "semantics": semantics,
                   "k": k, "terms": terms, "corpus": corpus_block,
                   "service_state": service_state},
            partial=self.partial, termination_reason=reason)


# -- process-pool worker -------------------------------------------------------

#: Per-worker-process cache of shard services, keyed by directory, so
#: a pool reused across a query's shards loads each shard once.
_SHARD_CACHE: Dict[str, QueryService] = {}

_ShardJob = Tuple[str, Tuple[str, ...], int, str, str, Optional[float]]
_ShardRows = Tuple[List[Tuple[str, float]], bool, Optional[str]]


def _process_shard(job: _ShardJob) -> _ShardRows:
    """Worker-process body: load (or reuse) the shard, search, and
    return picklable rows — codes as strings, probabilities as the
    exact floats the coordinator re-offers into the global heap."""
    directory, keywords, k, algorithm, semantics, budget_ms = job
    service = _SHARD_CACHE.get(directory)
    if service is None:
        # The coordinator verified checksums when it loaded the shard;
        # workers skip re-hashing every file on every pool spin-up.
        service = QueryService(directory, verify=False)
        _SHARD_CACHE[directory] = service
    budget = Deadline.after_ms(budget_ms) if budget_ms is not None \
        else None
    outcome = service.search(list(keywords), k=k, algorithm=algorithm,
                             semantics=semantics, deadline=budget)
    rows = [(str(result.code), result.probability)
            for result in outcome.results]
    return rows, outcome.partial, outcome.termination_reason


def _decode_rows(payload: _ShardRows) -> SearchOutcome:
    """Rebuild a shard-local outcome from worker rows (codes parse
    back bit-identically; floats cross pickle exactly)."""
    rows, partial, reason = payload
    results = [SLCAResult(code=DeweyCode.parse(code),
                          probability=probability)
               for code, probability in rows]
    return SearchOutcome(results=results, partial=partial,
                         termination_reason=reason)


def _corpus_state_of(parts: List[Tuple[str, Optional[object], int]]
                     ) -> CorpusState:
    """Fingerprint the per-shard generations into one corpus-level
    generation string (stable, short, changes when any shard's
    generation does) and take the maximum shard epoch."""
    joined = "|".join(f"{name}:{generation or 'down'}"
                      for name, generation, _ in parts)
    digest = hashlib.sha256(joined.encode("utf-8")).hexdigest()[:12]
    epoch = max([epoch for _, _, epoch in parts], default=1)
    return CorpusState(generation=f"corpus-{len(parts)}x-{digest}",
                       epoch=max(1, epoch))
