"""CorpusService: bound-driven scatter-gather over shard services.

One :class:`CorpusService` wraps one :class:`~repro.service.QueryService`
per shard and answers the same ``search``/``batch_search`` contract the
single-document service does, so the HTTP serving layer (docs/SERVING.md)
can sit in front of either without knowing which it got.

A query runs as a *scatter* over the shards and a *gather* into one
global :class:`~repro.core.heap.TopKHeap`:

1. Every shard's query bound — the minimum over the query terms of its
   persisted per-term probability bounds (``BOUNDS.json``,
   :mod:`repro.corpus.builder`) — is computed up front, and shards are
   visited most-promising-first.
2. A shard whose bound is 0 has no world containing every term; it is
   skipped outright (``no_match``).
3. Once the global heap holds k results, a shard whose bound is
   *strictly below* the current k-th probability cannot contribute —
   an equal bound might still enter on the document-order tiebreak, so
   the comparison is strict (see :meth:`TopKHeap.threshold`) — and is
   pruned without being searched (``pruned``).  Prune decisions depend
   on completion order, but the answer set never does: a pruned shard
   provably cannot change it.
4. Searched shards run on the serial, thread, or process executor; a
   shard-local answer's Dewey code rewrites to the global code by
   swapping its document-position component per the corpus manifest.

**Replication** (docs/CORPUS.md): a corpus built with ``replicas=N``
holds N bit-identical copies of every shard, and each shard visit
routes through a health-aware :class:`ReplicaSelector` — per-replica
circuit breaker plus EWMA latency, quarantined replicas skipped — with
failover: a replica failure (load error, injected fault, torn read)
records against that replica's breaker and the visit moves to the
next one.  A shard is PARTIAL only when *every* replica has failed.
On the pooled executors, a visit pending longer than the
:class:`HedgePolicy`'s trigger is **hedged**: the same visit is
speculatively re-issued to another replica and the first answer wins —
bit-identical by construction, since replicas share one content
fingerprint — while the loser is discarded (``corpus.hedge.*``
counters, ``corpus.hedge`` spans).

**Deadline budgets**: one :class:`~repro.resilience.Deadline` is the
whole query's budget.  Every shard visit draws a *child* budget from
its remaining wall clock (``Deadline.child``), so later shards, serial
failover retries and hedges can never collectively overshoot the
caller's deadline; once the budget is out, unvisited shards are
recorded ``deadline_skipped`` on an honestly-partial outcome instead
of being searched past the deadline.

Per-shard failures degrade instead of failing the query: a shard whose
executor task dies fails over across its replicas (serially in the
coordinator as the last resort), and a shard that cannot be loaded at
all (e.g. quarantined by fsck) is reported in ``stats["corpus"]`` on a
*partial* outcome while the healthy shards still answer.  ``corpus.*``
metrics count searches, prunes, skips, degradations, failovers,
hedges, and failures.
"""

from __future__ import annotations

import hashlib
import logging
import os
import threading
from collections import deque
from concurrent.futures import (FIRST_COMPLETED, Future,
                                ProcessPoolExecutor, ThreadPoolExecutor,
                                wait)
from contextlib import nullcontext
from dataclasses import dataclass, replace
from typing import (Any, Dict, Iterable, List, Optional, Sequence, Set,
                    Tuple, Union)

from repro.core import Algorithm
from repro.core.api import validate_query
from repro.core.heap import TopKHeap
from repro.core.result import SearchOutcome, SLCAResult
from repro.corpus.builder import (CorpusManifest, compute_bounds,
                                  load_corpus_manifest, read_bounds)
from repro.corpus.replication import (HedgeLike, HedgePolicy,
                                      LatencyTracker, ReplicaHealth,
                                      ReplicaSelector,
                                      DEFAULT_REPLICA_BREAKER_THRESHOLD,
                                      DEFAULT_REPLICA_COOLDOWN_S,
                                      as_hedge_policy, replica_name)
from repro.encoding.dewey import DeweyCode
from repro.exceptions import QueryError, ReproError, StorageError
from repro.index.fsck import FsckReport, fsck_database
from repro.index.tokenizer import normalize_query
from repro.obs.metrics import Collector, NULL_COLLECTOR, Stopwatch
from repro.resilience.deadline import (Deadline, DeadlineLike,
                                       REASON_DEADLINE, as_deadline)
from repro.resilience.faults import NULL_FAULTS, FaultsLike
from repro.resilience.retry import CircuitBreaker
from repro.service.service import (BatchOutcome, DEFAULT_CACHE_SIZE,
                                   EXECUTORS, QueryService)

_log = logging.getLogger("repro.corpus")

#: Termination reason when one or more shards could not contribute.
REASON_SHARD_FAILURE = "shard_failure"

#: Shard actions recorded per query in ``stats["corpus"]["detail"]``.
ACTION_SEARCHED = "searched"
ACTION_PRUNED = "pruned"
ACTION_NO_MATCH = "no_match"
ACTION_FAILED = "failed"
#: The query's deadline budget ran out before this shard was visited.
ACTION_DEADLINE = "deadline_skipped"


@dataclass(frozen=True)
class CorpusState:
    """What :meth:`CorpusService.reload` returns: the corpus-level
    generation fingerprint and epoch the serving layer reports."""

    generation: str
    epoch: int


@dataclass(frozen=True)
class _ReplicaState:
    """One replica of one shard: its directory and (maybe) service.

    A replica that failed to load keeps its slot (``service is
    None``); ``error`` says why.  The selector routes around it and a
    later reload can revive it.
    """

    index: int
    name: str
    directory: str
    service: Optional[QueryService]
    error: Optional[str]


@dataclass(frozen=True)
class _ShardState:
    """One shard's immutable view: its replicas, bounds, and code map.

    Reload replaces whole ``_ShardState`` values — never mutates them
    — so a running query's snapshot stays coherent.  The ``selector``
    (per-replica breakers + EWMA latency) is the one mutable member:
    it is *routing* state, deliberately carried across queries, and
    thread-safe on its own lock.
    """

    position: int
    name: str
    replicas: Tuple[_ReplicaState, ...]
    selector: ReplicaSelector
    bounds: Dict[str, float]
    max_path_probability: float
    positions: Dict[int, int]

    @property
    def service(self) -> Optional[QueryService]:
        """The first healthy replica's service (None = shard down).

        Read paths that need *a* coherent view of the shard's content
        — bounds recomputes, result re-hydration, storage stats — use
        this; the scatter itself goes through the selector.
        """
        for replica in self.replicas:
            if replica.service is not None:
                return replica.service
        return None

    @property
    def directory(self) -> str:
        """The primary replica's directory (legacy shard layout)."""
        return self.replicas[0].directory

    @property
    def error(self) -> Optional[str]:
        """Why the shard is down (None while any replica serves)."""
        errors = []
        for replica in self.replicas:
            if replica.service is not None:
                return None
            errors.append(f"{replica.name}: {replica.error}")
        return "; ".join(errors)

    def query_bound(self, terms: Sequence[str]) -> float:
        """Upper bound on any answer probability this shard can
        contribute for ``terms`` (0 when any term is absent)."""
        bound = 1.0
        for term in terms:
            term_bound = self.bounds.get(term, 0.0)
            if term_bound < bound:
                bound = term_bound
            if bound <= 0.0:
                return 0.0
        return bound


class CorpusService:
    """Top-k keyword search over a sharded corpus directory.

    Args:
        directory: a corpus directory built by
            :func:`repro.corpus.build_corpus`.
        cache_size: per-shard query cache size (each shard's
            :class:`QueryService` gets its own caches).
        collector: shared metrics collector; receives the per-shard
            services' counters *and* the ``corpus.*`` family.
        verify: checksum-verify shard snapshots on load/reload.
        faults: a :class:`~repro.resilience.FaultInjector` whose
            replica-level faults (``replica_down``, ``slow_replica``,
            ``torn_replica``, ``clock_skew_ms``) fire on shard visits;
            defaults to the no-op injector.
        hedge: hedging policy for the pooled executors — a
            :class:`HedgePolicy`, a fixed millisecond trigger, or
            ``None`` (hedging off, the default).
        executor: the scatter model :meth:`search` uses when its call
            site does not choose one — ``serial`` (default),
            ``thread`` or ``process``.  The serving layer and the
            chaos harness construct the service once and rely on this
            default, since ``POST /search`` carries no executor field.
        replica_breaker_threshold: consecutive visit failures before a
            replica quarantines.
        replica_cooldown_s: quarantine cooldown before a half-open
            trial visit.

    A shard that fails to load does not fail construction: it is
    recorded as down, queries answer partially without it, and a later
    :meth:`reload` (say, after ``repro corpus fsck --repair``) revives
    it.  A *replica* that fails to load only narrows that shard's
    routing choices — the shard stays up while any replica serves.
    """

    def __init__(self, directory: Union[str, os.PathLike],
                 cache_size: int = DEFAULT_CACHE_SIZE,
                 collector: Optional[Collector] = None,
                 verify: bool = True,
                 faults: FaultsLike = NULL_FAULTS,
                 hedge: HedgeLike = None,
                 executor: str = "serial",
                 replica_breaker_threshold: int =
                 DEFAULT_REPLICA_BREAKER_THRESHOLD,
                 replica_cooldown_s: float =
                 DEFAULT_REPLICA_COOLDOWN_S) -> None:
        if executor not in EXECUTORS:
            choices = ", ".join(EXECUTORS)
            raise QueryError(f"unknown executor {executor!r}; "
                             f"choose one of {choices}")
        self.collector = collector if collector is not None \
            else NULL_COLLECTOR
        self._directory = os.fspath(directory)
        self._cache_size = cache_size
        self._verify = verify
        self._faults = faults
        self._hedge = as_hedge_policy(hedge)
        self._default_executor = executor
        self._replica_breaker_threshold = replica_breaker_threshold
        self._replica_cooldown_s = replica_cooldown_s
        self._manifest = load_corpus_manifest(self._directory)
        self._reload_lock = threading.Lock()
        # Single-writer atomic-reference swap, same pattern as
        # QueryService._state: reload() builds replacement shard
        # states under _reload_lock and installs them in one
        # assignment; queries read the tuple once, lock-free.
        self._shards: Tuple[_ShardState, ...] = tuple(  # repro: guarded-by[_reload_lock, writes]
            self._load_shard(position)
            for position in range(self._manifest.shard_count))

    # -- shard loading ---------------------------------------------------------

    @property
    def manifest(self) -> CorpusManifest:
        return self._manifest

    @property
    def directory(self) -> str:
        return self._directory

    def _load_shard(self, position: int,
                    selector: Optional[ReplicaSelector] = None
                    ) -> _ShardState:
        """Load one shard's replicas; every replica failing yields a
        down-but-present shard state.  ``selector`` carries an existing
        selector's health history across a reload (routing state is
        deliberately *not* reset by a content swap)."""
        name = self._manifest.shard_names[position]
        positions = self._manifest.position_map(position)
        replicas: List[_ReplicaState] = []
        for index, directory in enumerate(
                self._manifest.replica_dirs(position)):
            replicas.append(self._load_replica(name, index, directory))
        if selector is None or len(selector) != len(replicas):
            selector = ReplicaSelector([
                ReplicaHealth(replica.name, replica.directory,
                              CircuitBreaker(
                                  threshold=self
                                  ._replica_breaker_threshold,
                                  cooldown_s=self._replica_cooldown_s))
                for replica in replicas])
        shard = _ShardState(position=position, name=name,
                            replicas=tuple(replicas),
                            selector=selector, bounds={},
                            max_path_probability=0.0,
                            positions=positions)
        healthy = next((replica for replica in shard.replicas
                        if replica.service is not None), None)
        if healthy is None:
            _log.error("corpus shard %s failed to load: %s", name,
                       shard.error)
            if self.collector.enabled:
                self.collector.count("corpus.shard_load_failures")
            return shard
        # Bounds come from the same replica that provides the service
        # view, so a down primary cannot pair stale BOUNDS.json with a
        # different replica's generation.
        bounds, best = self._resolve_bounds(healthy.directory,
                                            healthy.service)
        return replace(shard, bounds=bounds,
                       max_path_probability=best)

    def _load_replica(self, shard_name: str, index: int,
                      directory: str) -> _ReplicaState:
        """Load one replica; a failure yields a down-but-present slot
        the selector routes around."""
        rname = replica_name(index)
        try:
            service = QueryService(directory,
                                   cache_size=self._cache_size,
                                   collector=self.collector,
                                   verify=self._verify)
        except (ReproError, OSError, ValueError) as error:
            message = f"{type(error).__name__}: {error}"
            _log.warning("corpus replica %s/%s failed to load: %s",
                         shard_name, rname, message)
            if self.collector.enabled:
                self.collector.count("corpus.replica_load_failures")
            return _ReplicaState(index=index, name=rname,
                                 directory=directory, service=None,
                                 error=message)
        return _ReplicaState(index=index, name=rname,
                             directory=directory, service=service,
                             error=None)

    def _resolve_bounds(self, shard_dir: str, service: QueryService
                        ) -> Tuple[Dict[str, float], float]:
        """The shard's persisted bounds, or a recompute when the
        persisted summary names a different snapshot generation."""
        generation = service.storage_stats()["generation"]
        payload = read_bounds(shard_dir)
        if payload is not None and payload.get("generation") == generation:
            terms = payload["terms"]
            if isinstance(terms, dict):
                bounds = {str(term): float(value)
                          for term, value in terms.items()}
                best = float(payload.get("max_path_probability", 1.0))
                return bounds, best
        if self.collector.enabled:
            self.collector.count("corpus.bounds_recomputed")
        return compute_bounds(service.current_index())

    # -- search ----------------------------------------------------------------

    def search(self, keywords: Iterable[str], k: int = 10,
               algorithm: Union[Algorithm, str] = Algorithm.EAGER,
               semantics: str = "slca",
               executor: Optional[str] = None,
               workers: Optional[int] = None,
               deadline: Optional[Union[Deadline, DeadlineLike,
                                        float, int]] = None,
               tracer: Optional[Any] = None) -> SearchOutcome:
        """Global top-k over every shard, merged under the shared
        result order (:mod:`repro.core.order`).

        Same contract as :meth:`QueryService.search` plus the fan-out
        controls: ``executor`` is one of ``serial``/``thread``/
        ``process`` and ``workers`` bounds in-flight shards.  Answers
        are bit-identical across executors, worker counts, and shard
        completion orders; only ``stats["corpus"]`` (which shards were
        searched vs pruned) varies with timing.
        """
        keywords = validate_query(keywords, k)
        terms = sorted(normalize_query(keywords))
        if not terms:
            raise QueryError("keyword query contains no terms")
        if executor is None:
            executor = self._default_executor
        if executor not in EXECUTORS:
            choices = ", ".join(EXECUTORS)
            raise QueryError(f"unknown executor {executor!r}; "
                             f"choose one of {choices}")
        if workers is not None and workers <= 0:
            raise QueryError(f"workers must be positive, got {workers}")
        algorithm_name = algorithm.value \
            if isinstance(algorithm, Algorithm) else str(algorithm)
        budget = as_deadline(deadline)
        shards = self._shards
        traced = tracer is not None and getattr(tracer, "enabled", False)

        with self.collector.time("corpus.search"):
            merge = _Merge(k, self.collector)
            plan: List[Tuple[_ShardState, float]] = []
            for shard in shards:
                if shard.service is None:
                    merge.record_failure(shard, 0.0, shard.error)
                    continue
                plan.append((shard, shard.query_bound(terms)))
            # Most-promising shard first: the sooner the heap holds k
            # strong answers, the more later shards the bound prunes.
            plan.sort(key=lambda entry: (-entry[1],
                                         entry[0].position))
            width = workers if workers is not None \
                else min(4, max(1, len(plan)))

            span_ctx = tracer.span(
                "corpus.search", shards=len(shards),
                terms=" ".join(terms), k=k,
                executor=executor) if traced else nullcontext()
            with span_ctx as corpus_span:
                if executor == "serial" or width == 1 or len(plan) <= 1:
                    self._scatter_serial(plan, merge, keywords, k,
                                         algorithm, semantics, budget,
                                         tracer if traced else None,
                                         corpus_span)
                else:
                    self._scatter_pool(executor, width, plan, merge,
                                       keywords, k, algorithm,
                                       algorithm_name, semantics,
                                       budget,
                                       tracer if traced else None,
                                       corpus_span)
                if traced and corpus_span is not None:
                    corpus_span.attrs.update(
                        searched=merge.counts[ACTION_SEARCHED],
                        pruned=merge.counts[ACTION_PRUNED],
                        no_match=merge.counts[ACTION_NO_MATCH],
                        failed=merge.counts[ACTION_FAILED],
                        deadline_skipped=merge.counts[
                            ACTION_DEADLINE],
                        hedged=merge.hedges["fired"])

            outcome = merge.outcome(
                shards_total=len(shards), executor=executor,
                workers=width, algorithm=algorithm_name,
                semantics=semantics, k=k, terms=terms,
                service_state=self._state_block(shards))
        if self.collector.enabled:
            self.collector.count("corpus.searches")
            for action, total in merge.counts.items():
                if total:
                    self.collector.count(f"corpus.shards_{action}",
                                         total)
            if merge.degraded:
                self.collector.count("corpus.degraded", merge.degraded)
            self.collector.observe("corpus.searched_per_query",
                                   merge.counts[ACTION_SEARCHED])
            self.collector.observe("corpus.pruned_per_query",
                                   merge.counts[ACTION_PRUNED])
        return outcome

    # -- scatter strategies ----------------------------------------------------

    def _scatter_serial(self, plan: List[Tuple[_ShardState, float]],
                        merge: "_Merge", keywords: List[str], k: int,
                        algorithm: Union[Algorithm, str],
                        semantics: str, budget: DeadlineLike,
                        tracer: Optional[Any],
                        parent_span: Optional[Any]) -> None:
        """One shard at a time, pruning between completions — the
        tightest pruning the bounds allow (the benchmark's
        ``bounded-serial`` configuration).

        The deadline budget is checked *before* every visit: once the
        wall clock is out, the remaining shards are recorded
        ``deadline_skipped`` on an honestly-partial outcome instead of
        being searched past the caller's deadline.
        """
        for shard, bound in plan:
            if budget.enabled and budget.out_of_time():
                merge.record_skip(shard, bound, ACTION_DEADLINE)
                continue
            action = merge.decide(bound)
            if action is not None:
                merge.record_skip(shard, bound, action)
                continue
            try:
                outcome, rname = self._visit_with_failover(
                    shard, bound, keywords, k, algorithm, semantics,
                    budget, tracer, parent_span, merge=merge)
            except (ReproError, OSError, ValueError) as error:
                merge.record_failure(shard, bound,
                                     f"{type(error).__name__}: {error}")
                continue
            merge.absorb(shard, bound, outcome, replica=rname)

    def _scatter_pool(self, executor: str, width: int,
                      plan: List[Tuple[_ShardState, float]],
                      merge: "_Merge", keywords: List[str], k: int,
                      algorithm: Union[Algorithm, str],
                      algorithm_name: str, semantics: str,
                      budget: DeadlineLike, tracer: Optional[Any],
                      parent_span: Optional[Any]) -> None:
        """Completion-driven scatter on a thread or process pool.

        Up to ``width`` shard visits are in flight; every completion
        merges immediately and the *next* submission re-checks the
        prune condition against the now-tighter global threshold, so
        late shards still benefit from early strong answers.

        A task that dies (worker crash, replica fault, broken pool)
        **fails over**: the visit resubmits to the shard's next healthy
        replica, degrading to one serial in-coordinator retry as the
        last resort; only a shard that fails every way is reported
        failed.  With a hedge policy configured, a visit pending past
        the policy's trigger is speculatively re-issued on another
        replica — ``wait`` timeouts below are the hedge clock — and
        the first answer wins (bit-identical by construction).
        """
        queue = deque(plan)
        pending: Dict[Future, Tuple["_Visit", int, Stopwatch,
                                    bool]] = {}
        # With hedging on, the pool gets one spare lane per scatter
        # slot: a hedge exists to race a straggler, so it must never
        # queue behind the very stragglers it is hedging against.
        # _active_visits still caps *visits* at `width`; the extra
        # workers carry hedge twins only.
        capacity = width * 2 if self._hedge is not None else width
        pool: Union[ThreadPoolExecutor, ProcessPoolExecutor]
        if executor == "process":
            pool = ProcessPoolExecutor(max_workers=capacity)
        else:
            pool = ThreadPoolExecutor(
                max_workers=capacity,
                thread_name_prefix="corpus-scatter")
        try:
            while queue or pending:
                while queue and self._active_visits(pending) < width:
                    shard, bound = queue.popleft()
                    if budget.enabled and budget.out_of_time():
                        merge.record_skip(shard, bound,
                                          ACTION_DEADLINE)
                        continue
                    action = merge.decide(bound)
                    if action is not None:
                        merge.record_skip(shard, bound, action)
                        continue
                    span = self._begin_span(tracer, parent_span,
                                            shard, bound) \
                        if executor == "process" else None
                    visit = _Visit(shard, bound, span)
                    if not self._launch(pool, executor, visit,
                                        pending, keywords, k,
                                        algorithm, algorithm_name,
                                        semantics, budget, tracer,
                                        parent_span, hedge=False):
                        message = visit.last_error \
                            or f"no replica of {shard.name} is serving"
                        merge.record_failure(shard, bound, message)
                        if tracer is not None and span is not None:
                            tracer.finish(span, status="error",
                                          error=message)
                if not pending:
                    if queue:
                        continue
                    break
                if all(entry[0].done for entry in pending.values()):
                    # Only discarded hedge losers remain: the merge is
                    # already complete, so the answer returns now and
                    # the shutdown below leaves the stragglers to
                    # finish in the background instead of blocking the
                    # query's tail latency on them — the whole point
                    # of hedging.
                    break
                done, _ = wait(set(pending),
                               return_when=FIRST_COMPLETED,
                               timeout=self._hedge_timeout(pending))
                for future in done:
                    visit, index, watch, is_hedge = pending.pop(future)
                    visit.outstanding -= 1
                    self._gather_one(future, executor, pool, visit,
                                     index, watch, is_hedge, pending,
                                     merge, keywords, k, algorithm,
                                     algorithm_name, semantics, budget,
                                     tracer, parent_span)
                self._fire_hedges(pool, executor, pending, merge,
                                  keywords, k, algorithm,
                                  algorithm_name, semantics, budget,
                                  tracer, parent_span)
        finally:
            # Abandoned futures (hedge losers, or stragglers on an
            # exception path) only feed routing state; nothing
            # correctness-bearing waits on them — but the time they
            # were observed pending does teach the selector that the
            # replica is slow.
            for visit, index, watch, _ in pending.values():
                visit.shard.selector.record_straggler(
                    index, watch.elapsed_ms)
            pool.shutdown(wait=not pending)

    @staticmethod
    def _active_visits(pending: Dict[Future, Tuple["_Visit", int,
                                                   Stopwatch, bool]]
                       ) -> int:
        """Distinct unresolved visits in flight (a hedge's second
        future does not consume a scatter slot)."""
        return len({id(entry[0]) for entry in pending.values()
                    if not entry[0].done})

    def _launch(self, pool: Any, executor: str, visit: "_Visit",
                pending: Dict[Future, Tuple["_Visit", int, Stopwatch,
                                            bool]],
                keywords: List[str], k: int,
                algorithm: Union[Algorithm, str], algorithm_name: str,
                semantics: str, budget: DeadlineLike,
                tracer: Optional[Any], parent_span: Optional[Any],
                hedge: bool) -> bool:
        """Submit ``visit`` to its shard's next untried healthy
        replica; False once every replica has been tried.

        Replicas that are down (load failure) are charged to their
        breaker and skipped in-line.  On the process executor the
        replica-level faults fire here, in the coordinator — worker
        processes do not share the injector — so an injected replica
        failure still exercises the same failover path.
        """
        shard = visit.shard
        while True:
            index = shard.selector.pick(exclude=visit.tried)
            if index is None:
                return False
            visit.tried.add(index)
            replica = shard.replicas[index]
            if replica.service is None:
                shard.selector.record_failure(index)
                visit.last_error = f"{replica.name}: {replica.error}"
                continue
            watch = Stopwatch().start()
            if executor == "process":
                visit_budget = self._visit_budget(budget, shard,
                                                  replica)
                try:
                    self._faults.on_replica_visit(
                        shard.name, replica.name, terms=keywords,
                        deadline=visit_budget)
                except Exception as error:  # noqa: broad — fault = crash
                    shard.selector.record_failure(index)
                    visit.last_error = (f"{replica.name}: "
                                        f"{type(error).__name__}: "
                                        f"{error}")
                    if self.collector.enabled:
                        self.collector.count("corpus.replica.failures")
                    continue
                remaining: Optional[float] = None
                if visit_budget.enabled \
                        and getattr(visit_budget, "budget_ms",
                                    None) is not None:
                    remaining = max(0.001, visit_budget.remaining_ms)
                future = pool.submit(
                    _process_shard,
                    (replica.directory, tuple(keywords), k + 1,
                     algorithm_name, semantics, remaining))
            else:
                # Thread tasks open their corpus.shard span in the
                # worker thread (explicit parent), so the shard's inner
                # query spans nest under it via the tracer's
                # per-thread context.
                future = pool.submit(self._search_replica, shard,
                                     replica, visit.bound, keywords,
                                     k, algorithm, semantics, budget,
                                     tracer, parent_span)
            visit.outstanding += 1
            pending[future] = (visit, index, watch, hedge)
            return True

    def _hedge_timeout(self, pending: Dict[Future, Tuple["_Visit",
                                                         int,
                                                         Stopwatch,
                                                         bool]]
                       ) -> Optional[float]:
        """Seconds until the earliest pending visit becomes hedge-
        eligible (``None`` = no hedge can fire; wait on completions)."""
        if self._hedge is None:
            return None
        soonest: Optional[float] = None
        for visit, _, _, _ in pending.values():
            if visit.done or visit.hedged:
                continue
            if len(visit.tried) >= len(visit.shard.selector):
                continue  # no spare replica to hedge to
            delay = self._hedge.delay_ms(visit.shard.selector.tracker)
            if delay is None:
                continue
            due = (delay - visit.watch.elapsed_ms) / 1000.0
            soonest = due if soonest is None else min(soonest, due)
        if soonest is None:
            return None
        return max(0.0, soonest)

    def _fire_hedges(self, pool: Any, executor: str,
                     pending: Dict[Future, Tuple["_Visit", int,
                                                 Stopwatch, bool]],
                     merge: "_Merge", keywords: List[str], k: int,
                     algorithm: Union[Algorithm, str],
                     algorithm_name: str, semantics: str,
                     budget: DeadlineLike, tracer: Optional[Any],
                     parent_span: Optional[Any]) -> None:
        """Hedge every straggling visit (at most once per visit)."""
        if self._hedge is None:
            return
        for visit, _, _, _ in list(pending.values()):
            if visit.done or visit.hedged or visit.outstanding == 0:
                continue
            if budget.enabled and budget.out_of_time():
                return
            delay = self._hedge.delay_ms(visit.shard.selector.tracker)
            if delay is None or visit.watch.elapsed_ms < delay:
                continue
            visit.hedged = True  # one hedge per visit, win or lose
            if not self._launch(pool, executor, visit, pending,
                                keywords, k, algorithm,
                                algorithm_name, semantics, budget,
                                tracer, parent_span, hedge=True):
                continue
            merge.hedges["fired"] += 1
            if self.collector.enabled:
                self.collector.count("corpus.hedge.fired")
            if tracer is not None:
                hedge_span = tracer.begin(
                    "corpus.hedge", parent=parent_span,
                    shard=visit.shard.name,
                    pending_ms=round(visit.watch.elapsed_ms, 3))
                tracer.finish(hedge_span)

    def _begin_span(self, tracer: Optional[Any],
                    parent_span: Optional[Any], shard: _ShardState,
                    bound: float) -> Optional[Any]:
        """Coordinator-side shard span for process tasks (covers queue
        wait + execution; serial/thread tasks open theirs in-line)."""
        if tracer is None:
            return None
        return tracer.begin("corpus.shard", parent=parent_span,
                            shard=shard.name, bound=round(bound, 9),
                            executor="process")

    def _gather_one(self, future: Future, executor: str, pool: Any,
                    visit: "_Visit", index: int, watch: Stopwatch,
                    is_hedge: bool,
                    pending: Dict[Future, Tuple["_Visit", int,
                                                Stopwatch, bool]],
                    merge: "_Merge", keywords: List[str], k: int,
                    algorithm: Union[Algorithm, str],
                    algorithm_name: str, semantics: str,
                    budget: DeadlineLike, tracer: Optional[Any],
                    parent_span: Optional[Any]) -> None:
        """Merge one completed future.

        A failure charges the replica's breaker and fails over to the
        next one (serial in-coordinator retry as the last resort); a
        success resolves the visit, and any still-racing hedge twin is
        discarded on arrival — its answer is bit-identical by
        construction, so dropping it never changes the merge.
        """
        shard = visit.shard
        replica = shard.replicas[index]
        try:
            payload = future.result()
            outcome = _decode_rows(payload) if executor == "process" \
                else payload
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as error:  # noqa: broad — any task death fails over
            shard.selector.record_failure(index)
            visit.last_error = (f"{replica.name}: "
                                f"{type(error).__name__}: {error}")
            if self.collector.enabled:
                self.collector.count("corpus.replica.failures")
            if visit.done or visit.outstanding > 0:
                return  # a sibling future already won / is still racing
            _log.warning("corpus shard %s replica %s task failed "
                         "(%s: %s); failing over", shard.name,
                         replica.name, type(error).__name__, error)
            if not (budget.enabled and budget.out_of_time()) \
                    and self._launch(pool, executor, visit, pending,
                                     keywords, k, algorithm,
                                     algorithm_name, semantics,
                                     budget, tracer, parent_span,
                                     hedge=False):
                merge.failovers += 1
                if self.collector.enabled:
                    self.collector.count("corpus.replica.failovers")
                return
            self._finish_degraded(visit, merge, keywords, k,
                                  algorithm, semantics, budget,
                                  tracer)
            return
        latency = watch.elapsed_ms
        shard.selector.record_success(index, latency)
        if visit.done:
            if self.collector.enabled:
                self.collector.count("corpus.hedge.wasted")
            return
        visit.done = True
        if visit.hedged:
            key = "won" if is_hedge else "lost"
            merge.hedges[key] += 1
            if self.collector.enabled:
                self.collector.count(f"corpus.hedge.{key}")
        merge.absorb(shard, visit.bound, outcome,
                     replica=replica.name)
        if tracer is not None and visit.span is not None:
            tracer.finish(visit.span, results=len(outcome.results),
                          replica=replica.name)

    def _finish_degraded(self, visit: "_Visit", merge: "_Merge",
                         keywords: List[str], k: int,
                         algorithm: Union[Algorithm, str],
                         semantics: str, budget: DeadlineLike,
                         tracer: Optional[Any]) -> None:
        """Last-resort serial in-coordinator retry after every pool
        attempt for a visit has failed (e.g. the pool itself broke)."""
        shard = visit.shard
        try:
            outcome, rname = self._visit_with_failover(
                shard, visit.bound, keywords, k, algorithm, semantics,
                budget, None, None, span=False)
        except (ReproError, OSError, ValueError) as error:
            message = visit.last_error \
                or f"{type(error).__name__}: {error}"
            merge.record_failure(shard, visit.bound, message)
            if tracer is not None and visit.span is not None:
                tracer.finish(visit.span, status="error",
                              error=message)
            return
        visit.done = True
        merge.degraded += 1
        merge.absorb(shard, visit.bound, outcome, replica=rname)
        if tracer is not None and visit.span is not None:
            tracer.finish(visit.span, results=len(outcome.results),
                          degraded=True)

    def _visit_with_failover(self, shard: _ShardState, bound: float,
                             keywords: List[str], k: int,
                             algorithm: Union[Algorithm, str],
                             semantics: str, budget: DeadlineLike,
                             tracer: Optional[Any],
                             parent_span: Optional[Any],
                             merge: Optional["_Merge"] = None,
                             span: bool = True
                             ) -> Tuple[SearchOutcome, str]:
        """Visit one shard in the current thread, failing over across
        its replicas; raises :class:`StorageError` only when every
        replica has failed.  Returns the outcome and the name of the
        replica that answered."""
        tried: Set[int] = set()
        last_error: Optional[str] = None
        while True:
            index = shard.selector.pick(exclude=tried)
            if index is None:
                raise StorageError(
                    last_error
                    or f"no replica of shard {shard.name} is serving")
            tried.add(index)
            replica = shard.replicas[index]
            if replica.service is None:
                shard.selector.record_failure(index)
                last_error = f"{replica.name}: {replica.error}"
                continue
            watch = Stopwatch().start()
            try:
                outcome = self._search_replica(shard, replica, bound,
                                               keywords, k, algorithm,
                                               semantics, budget,
                                               tracer, parent_span,
                                               span=span)
            except Exception as error:  # noqa: broad — any crash fails over
                shard.selector.record_failure(index)
                last_error = (f"{replica.name}: "
                              f"{type(error).__name__}: {error}")
                if self.collector.enabled:
                    self.collector.count("corpus.replica.failures")
                if budget.enabled and budget.out_of_time():
                    raise StorageError(
                        f"deadline exhausted failing over "
                        f"{shard.name}: {last_error}")
                if shard.selector.pick(exclude=tried) is not None:
                    if merge is not None:
                        merge.failovers += 1
                    if self.collector.enabled:
                        self.collector.count(
                            "corpus.replica.failovers")
                continue
            shard.selector.record_success(index, watch.elapsed_ms)
            return outcome, replica.name

    def _search_replica(self, shard: _ShardState,
                        replica: _ReplicaState, bound: float,
                        keywords: List[str], k: int,
                        algorithm: Union[Algorithm, str],
                        semantics: str, budget: DeadlineLike,
                        tracer: Optional[Any],
                        parent_span: Optional[Any],
                        span: bool = True) -> SearchOutcome:
        """Run one replica's query in the current thread.

        ``k + 1`` answers are requested because the shard's synthetic
        root can occupy one slot; after the merge filters it, the
        shard still contributes its full top-k.  The visit draws a
        *child* of the query's deadline (shrunk by any injected clock
        skew), so a straggling or retried visit cannot overshoot the
        caller's budget.
        """
        assert replica.service is not None
        visit_budget = self._visit_budget(budget, shard, replica)
        self._faults.on_replica_visit(shard.name, replica.name,
                                      terms=keywords,
                                      deadline=visit_budget)
        ctx = tracer.span("corpus.shard", parent=parent_span,
                          shard=shard.name, replica=replica.name,
                          bound=round(bound, 9)) \
            if span and tracer is not None else nullcontext()
        with ctx:
            return replica.service.search(
                keywords, k=k + 1, algorithm=algorithm,
                semantics=semantics,
                deadline=visit_budget if visit_budget.enabled
                else None,
                tracer=tracer)

    def _visit_budget(self, budget: DeadlineLike, shard: _ShardState,
                      replica: _ReplicaState) -> DeadlineLike:
        """The child budget one replica visit runs on: the query
        deadline's remaining wall clock, shrunk by any injected clock
        skew for this replica (budgets only ever shrink)."""
        if not budget.enabled:
            return budget
        skew = self._faults.replica_skew_ms(shard.name, replica.name)
        return budget.child(skew_ms=skew)

    # -- service-shaped surface ------------------------------------------------

    def batch_search(self, queries: Sequence[Sequence[str]],
                     k: int = 10,
                     algorithm: Union[Algorithm, str] = Algorithm.EAGER,
                     semantics: str = "slca",
                     workers: Optional[int] = None,
                     executor: str = "thread",
                     deadline_ms: Optional[float] = None,
                     tracer: Optional[Any] = None) -> BatchOutcome:
        """Many queries, each scattered over the shards.

        Queries run in submission order (the scatter inside each query
        is where the parallelism pays); ``deadline_ms`` budgets each
        query individually, and outcomes align with the input order.
        """
        watch = Stopwatch().start()
        outcomes: List[SearchOutcome] = []
        totals = {ACTION_SEARCHED: 0, ACTION_PRUNED: 0,
                  ACTION_NO_MATCH: 0, ACTION_FAILED: 0,
                  ACTION_DEADLINE: 0}
        for query in queries:
            budget = Deadline.after_ms(deadline_ms) \
                if deadline_ms is not None else None
            outcome = self.search(query, k=k, algorithm=algorithm,
                                  semantics=semantics,
                                  executor=executor, workers=workers,
                                  deadline=budget, tracer=tracer)
            block = outcome.stats.get("corpus")
            if isinstance(block, dict):
                for action in totals:
                    totals[action] += int(block.get(action, 0))
            outcomes.append(outcome)
        return BatchOutcome(
            outcomes=outcomes, elapsed_ms=watch.elapsed * 1000.0,
            stats={"queries": len(outcomes), "executor": executor,
                   "workers": workers, "corpus": dict(totals)})

    def storage_stats(self) -> Dict[str, object]:
        """The corpus-level generation fingerprint/epoch plus every
        shard's own storage block (docs/STORAGE.md shape per shard)."""
        shards = self._shards
        blocks: List[Dict[str, object]] = []
        reloads: Dict[str, object] = {"attempts": 0, "successes": 0,
                                      "rejected": 0}
        last_error: Optional[str] = None
        for shard in shards:
            if shard.service is not None:
                block = dict(shard.service.storage_stats())
            else:
                block = {"generation": None,
                         "directory": shard.directory, "epoch": 0,
                         "error": shard.error}
                if last_error is None:
                    last_error = shard.error
            block["shard"] = shard.name
            shard_reloads = block.get("reloads")
            if isinstance(shard_reloads, dict):
                for key in ("attempts", "successes", "rejected"):
                    reloads[key] = int(reloads[key]) \
                        + int(shard_reloads.get(key, 0))
                if last_error is None:
                    last_error = shard_reloads.get("last_error")
            blocks.append(block)
        reloads["last_error"] = last_error
        state = _corpus_state_of(
            [(shard.name, block.get("generation"),
              int(block.get("epoch", 0) or 0))
             for shard, block in zip(shards, blocks)])
        return {"generation": state.generation,
                "directory": self._directory, "epoch": state.epoch,
                "reloads": reloads, "shards": blocks}

    def health_snapshot(self) -> Dict[str, object]:
        """One coherent health view: every shard contributes its own
        locked snapshot (:meth:`QueryService.health_snapshot`), and the
        corpus generation/epoch derive from those same snapshots — not
        from a second, possibly-torn read."""
        shards = self._shards
        blocks: List[Dict[str, object]] = []
        parts: List[Tuple[str, Optional[str], int]] = []
        reloads: Dict[str, object] = {"attempts": 0, "successes": 0,
                                      "rejected": 0}
        last_error: Optional[str] = None
        for shard in shards:
            if shard.service is not None:
                snap = dict(shard.service.health_snapshot())
                snap["ok"] = True
            else:
                snap = {"generation": None, "epoch": 0, "ok": False,
                        "error": shard.error}
                if last_error is None:
                    last_error = shard.error
            snap["shard"] = shard.name
            snap["replicas"] = shard.selector.stats()
            quarantined = shard.selector.quarantined()
            if quarantined:
                snap["quarantined"] = quarantined
            shard_reloads = snap.get("reloads")
            if isinstance(shard_reloads, dict):
                for key in ("attempts", "successes", "rejected"):
                    reloads[key] = int(reloads[key]) \
                        + int(shard_reloads.get(key, 0))
                if last_error is None:
                    last_error = shard_reloads.get("last_error")
            parts.append((shard.name, snap.get("generation"),
                          int(snap.get("epoch", 0) or 0)))
            blocks.append(snap)
        reloads["last_error"] = last_error
        state = _corpus_state_of(parts)
        return {"generation": state.generation,
                "directory": self._directory, "epoch": state.epoch,
                "reloads": reloads, "breaker": self.breaker_stats(),
                "shards": blocks}

    def breaker_stats(self) -> Dict[str, object]:
        """Aggregated breaker view: the worst shard state wins, and
        the per-shard summaries ride along."""
        shards = self._shards
        severity = {"closed": 0, "half-open": 1, "open": 2}
        worst = "closed"
        failures = 0
        opens = 0
        per_shard: Dict[str, object] = {}
        for shard in shards:
            if shard.service is None:
                continue
            block = shard.service.breaker_stats()
            per_shard[shard.name] = block
            failures += int(block.get("failures", 0) or 0)
            opens += int(block.get("opens", 0) or 0)
            state = str(block.get("state", "closed"))
            if severity.get(state, 0) > severity.get(worst, 0):
                worst = state
        return {"state": worst, "failures": failures, "opens": opens,
                "shards": per_shard}

    def replica_stats(self) -> Dict[str, List[Dict[str, object]]]:
        """Per-shard replica health (EWMA latency, success/failure
        counts, breaker state), keyed by shard name.  The chaos
        harness and the per-shard-breaker-isolation tests read this;
        it is deliberately *routing* state, so a content reload does
        not reset it."""
        return {shard.name: shard.selector.stats()
                for shard in self._shards}

    def reload(self) -> CorpusState:
        """Reload every shard, reviving ones that were down.

        Each healthy shard hot-swaps through its own
        :meth:`QueryService.reload` (a per-shard rejection keeps that
        shard's old generation serving); a down shard is re-loaded
        from scratch.  Bounds are refreshed against the new
        generations.  Raises :class:`StorageError` only when *no*
        shard is serving afterwards.
        """
        with self._reload_lock:
            failures: List[str] = []
            rebuilt = tuple(self._reload_shard(shard, failures)
                            for shard in self._shards)
            self._shards = rebuilt
        if rebuilt and all(shard.service is None for shard in rebuilt):
            raise StorageError("corpus reload rejected: no shard is "
                               "serving (" + "; ".join(failures) + ")")
        if self.collector.enabled:
            self.collector.count("corpus.reloads")
            if failures:
                self.collector.count("corpus.reload_shard_failures",
                                     len(failures))
        return _corpus_state_of(
            [(shard.name,
              shard.service.storage_stats()["generation"]
              if shard.service is not None else None,
              int(shard.service.storage_stats()["epoch"])
              if shard.service is not None else 0)
             for shard in rebuilt])

    def _reload_shard(self, shard: _ShardState,
                      failures: List[str]) -> _ShardState:
        if shard.service is None:
            # Every replica is down: load the shard from scratch,
            # carrying the selector so breaker history survives.
            fresh = self._load_shard(shard.position,
                                     selector=shard.selector)
            if fresh.error is not None:
                failures.append(f"{shard.name}: {fresh.error}")
            return fresh
        replicas: List[_ReplicaState] = []
        for replica in shard.replicas:
            if replica.service is None:
                # A down replica revives through a fresh load.
                revived = self._load_replica(shard.name,
                                             replica.index,
                                             replica.directory)
                if revived.error is not None:
                    failures.append(f"{shard.name}/{replica.name}: "
                                    f"{revived.error}")
                replicas.append(revived)
                continue
            try:
                replica.service.reload(verify=self._verify)
            except StorageError as error:
                # This replica's previous generation keeps serving.
                failures.append(f"{shard.name}/{replica.name}: "
                                f"{error}")
            replicas.append(replica)
        refreshed = replace(shard, replicas=tuple(replicas))
        healthy = next((replica for replica in refreshed.replicas
                        if replica.service is not None), None)
        if healthy is None:
            return refreshed
        bounds, best = self._resolve_bounds(healthy.directory,
                                            healthy.service)
        return replace(refreshed, bounds=bounds,
                       max_path_probability=best)

    def fsck(self, repair: bool = False) -> List[Tuple[str, FsckReport]]:
        """Per-shard storage triage (docs/STORAGE.md); see
        :func:`corpus_fsck`."""
        return corpus_fsck(self._directory, repair=repair,
                           collector=self.collector)

    def _state_block(self, shards: Tuple[_ShardState, ...]
                     ) -> Dict[str, object]:
        state = _corpus_state_of(
            [(shard.name,
              shard.service.storage_stats()["generation"]
              if shard.service is not None else None,
              int(shard.service.storage_stats()["epoch"])
              if shard.service is not None else 0)
             for shard in shards])
        return {"generation": state.generation, "epoch": state.epoch}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        healthy = sum(1 for shard in self._shards
                      if shard.service is not None)
        return (f"CorpusService(shards={len(self._shards)}, "
                f"healthy={healthy}, dir={self._directory!r})")


def corpus_fsck(directory: Union[str, os.PathLike],
                repair: bool = False,
                collector: Collector = NULL_COLLECTOR
                ) -> List[Tuple[str, FsckReport]]:
    """Run :func:`repro.index.fsck.fsck_database` over every shard.

    Returns ``(shard_name, report)`` pairs in shard order.  Corruption
    in one shard never hides another's report, and with ``repair=True``
    each shard quarantines/recovers independently — a corpus query
    after a repair answers from the healthy shards.
    """
    manifest = load_corpus_manifest(directory)
    reports: List[Tuple[str, FsckReport]] = []
    for position, name in enumerate(manifest.shard_names):
        reports.append((name, fsck_database(manifest.shard_dir(position),
                                            repair=repair,
                                            collector=collector)))
    return reports


# -- merge bookkeeping ---------------------------------------------------------


class _Visit:
    """Coordinator bookkeeping for one pooled shard visit across its
    replica attempts and hedge twin.

    ``tried`` is the set of replica indexes ever submitted for this
    visit (failover and hedging both exclude it), ``outstanding``
    counts futures still in flight, ``done`` flips when the first
    answer lands (later arrivals are discarded), and ``watch`` times
    the visit from its first submission — the clock the hedge trigger
    reads.
    """

    __slots__ = ("shard", "bound", "tried", "hedged", "done",
                 "outstanding", "span", "watch", "last_error")

    def __init__(self, shard: _ShardState, bound: float,
                 span: Optional[Any]) -> None:
        self.shard = shard
        self.bound = bound
        self.tried: Set[int] = set()
        self.hedged = False
        self.done = False
        self.outstanding = 0
        self.span = span
        self.watch = Stopwatch().start()
        self.last_error: Optional[str] = None


class _Merge:
    """The gather side of one corpus query: the global heap, the
    origin map for re-hydrating answers, and the per-shard ledger."""

    def __init__(self, k: int, collector: Collector):
        self.k = k
        # The merge heap stays un-instrumented: heap.* counters keep
        # meaning "per-shard algorithm heaps", and corpus.* covers the
        # gather side.
        self.heap = TopKHeap(k)
        self.origins: Dict[Tuple[int, ...],
                           Tuple[_ShardState, DeweyCode]] = {}
        self.counts = {ACTION_SEARCHED: 0, ACTION_PRUNED: 0,
                       ACTION_NO_MATCH: 0, ACTION_FAILED: 0,
                       ACTION_DEADLINE: 0}
        self.detail: List[Dict[str, object]] = []
        self.degraded = 0
        self.failovers = 0
        self.hedges = {"fired": 0, "won": 0, "lost": 0}
        self.partial = False
        self.reasons: Set[str] = set()

    def decide(self, bound: float) -> Optional[str]:
        """Whether a shard with ``bound`` can be skipped right now.

        Strictly-below comparison against the live k-th probability:
        an equal bound might still yield an answer that enters on the
        document-order tiebreak (:meth:`TopKHeap.threshold`), so only
        ``bound < threshold`` — or an impossible query (bound 0) —
        skips the shard.
        """
        if bound <= 0.0:
            return ACTION_NO_MATCH
        if bound < self.heap.threshold:
            return ACTION_PRUNED
        return None

    def record_skip(self, shard: _ShardState, bound: float,
                    action: str) -> None:
        self.counts[action] += 1
        if action == ACTION_DEADLINE:
            # An unvisited shard might have contributed: the answer is
            # an honest partial cut short by the deadline budget.
            self.partial = True
            self.reasons.add(REASON_DEADLINE)
        self.detail.append({"shard": shard.name,
                            "bound": round(bound, 9),
                            "action": action})

    def record_failure(self, shard: _ShardState, bound: float,
                       error: Optional[str]) -> None:
        self.counts[ACTION_FAILED] += 1
        self.partial = True
        self.detail.append({"shard": shard.name,
                            "bound": round(bound, 9),
                            "action": ACTION_FAILED, "error": error})

    def absorb(self, shard: _ShardState, bound: float,
               outcome: SearchOutcome,
               replica: Optional[str] = None) -> None:
        """Merge one shard outcome: filter the synthetic root, rewrite
        codes to the global document positions, offer into the heap."""
        if outcome.partial:
            self.partial = True
            if outcome.termination_reason:
                self.reasons.add(outcome.termination_reason)
        merged = 0
        for result in outcome.results:
            positions = result.code.positions
            if len(positions) < 2:
                continue  # the shard's synthetic root
            global_position = shard.positions.get(positions[1])
            if global_position is None:
                continue  # a child slot the manifest does not know
            code = DeweyCode((positions[0], global_position)
                             + positions[2:], result.code.kinds)
            self.origins[code.positions] = (shard, result.code)
            if self.heap.offer(code, result.probability):
                merged += 1
        self.counts[ACTION_SEARCHED] += 1
        entry: Dict[str, object] = {"shard": shard.name,
                                    "bound": round(bound, 9),
                                    "action": ACTION_SEARCHED,
                                    "results": len(outcome.results),
                                    "merged": merged}
        if replica is not None:
            entry["replica"] = replica
        self.detail.append(entry)

    def outcome(self, shards_total: int, executor: str, workers: int,
                algorithm: str, semantics: str, k: int,
                terms: List[str],
                service_state: Dict[str, object]) -> SearchOutcome:
        results: List[SLCAResult] = []
        for result in self.heap.results():
            shard, local_code = self.origins[result.code.positions]
            node = None
            if shard.service is not None:
                try:
                    node = shard.service.current_index() \
                        .encoded.node_at(local_code)
                except ReproError:
                    node = None  # shard swapped mid-query; label falls
                    #              back to the code
            results.append(SLCAResult(code=result.code,
                                      probability=result.probability,
                                      node=node))
        reason: Optional[str] = None
        if REASON_DEADLINE in self.reasons:
            reason = REASON_DEADLINE
        elif self.counts[ACTION_FAILED]:
            reason = REASON_SHARD_FAILURE
        elif self.reasons:
            reason = sorted(self.reasons)[0]
        corpus_block: Dict[str, object] = {
            "shards": shards_total,
            ACTION_SEARCHED: self.counts[ACTION_SEARCHED],
            ACTION_PRUNED: self.counts[ACTION_PRUNED],
            ACTION_NO_MATCH: self.counts[ACTION_NO_MATCH],
            ACTION_FAILED: self.counts[ACTION_FAILED],
            ACTION_DEADLINE: self.counts[ACTION_DEADLINE],
            "degraded": self.degraded,
            "failovers": self.failovers,
            "hedges": dict(self.hedges),
            "executor": executor, "workers": workers,
            "detail": self.detail,
        }
        return SearchOutcome(
            results=results,
            stats={"algorithm": algorithm, "semantics": semantics,
                   "k": k, "terms": terms, "corpus": corpus_block,
                   "service_state": service_state},
            partial=self.partial, termination_reason=reason)


# -- process-pool worker -------------------------------------------------------

#: Per-worker-process cache of shard services, keyed by directory, so
#: a pool reused across a query's shards loads each shard once.
_SHARD_CACHE: Dict[str, QueryService] = {}

_ShardJob = Tuple[str, Tuple[str, ...], int, str, str, Optional[float]]
_ShardRows = Tuple[List[Tuple[str, float]], bool, Optional[str]]


def _process_shard(job: _ShardJob) -> _ShardRows:
    """Worker-process body: load (or reuse) the shard, search, and
    return picklable rows — codes as strings, probabilities as the
    exact floats the coordinator re-offers into the global heap."""
    directory, keywords, k, algorithm, semantics, budget_ms = job
    service = _SHARD_CACHE.get(directory)
    if service is None:
        # The coordinator verified checksums when it loaded the shard;
        # workers skip re-hashing every file on every pool spin-up.
        service = QueryService(directory, verify=False)
        _SHARD_CACHE[directory] = service
    budget = Deadline.after_ms(budget_ms) if budget_ms is not None \
        else None
    outcome = service.search(list(keywords), k=k, algorithm=algorithm,
                             semantics=semantics, deadline=budget)
    rows = [(str(result.code), result.probability)
            for result in outcome.results]
    return rows, outcome.partial, outcome.termination_reason


def _decode_rows(payload: _ShardRows) -> SearchOutcome:
    """Rebuild a shard-local outcome from worker rows (codes parse
    back bit-identically; floats cross pickle exactly)."""
    rows, partial, reason = payload
    results = [SLCAResult(code=DeweyCode.parse(code),
                          probability=probability)
               for code, probability in rows]
    return SearchOutcome(results=results, partial=partial,
                         termination_reason=reason)


def _corpus_state_of(parts: List[Tuple[str, Optional[object], int]]
                     ) -> CorpusState:
    """Fingerprint the per-shard generations into one corpus-level
    generation string (stable, short, changes when any shard's
    generation does) and take the maximum shard epoch."""
    joined = "|".join(f"{name}:{generation or 'down'}"
                      for name, generation, _ in parts)
    digest = hashlib.sha256(joined.encode("utf-8")).hexdigest()[:12]
    epoch = max([epoch for _, _, epoch in parts], default=1)
    return CorpusState(generation=f"corpus-{len(parts)}x-{digest}",
                       epoch=max(1, epoch))
