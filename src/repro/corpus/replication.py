"""Replica health, selection and hedging for the corpus layer.

The paper's top-k bounds make every shard's contribution provably
skippable or mergeable, which means a **replica** of a shard is a
perfect substitute: two directories holding the same snapshot
generation return bit-identical heaps for every query, so the scatter
layer may route a shard visit to *any* healthy replica — or to two at
once — without approximating the answer.  This module supplies the
routing policy:

* :class:`ReplicaHealth` — one replica's live view: an EWMA of its
  visit latency, success/failure counts, and a per-replica
  :class:`~repro.resilience.CircuitBreaker`.  A replica whose breaker
  is open is *quarantined*: the selector routes around it until the
  cooldown lets a half-open trial through.
* :class:`ReplicaSelector` — per-shard, thread-safe choice of the next
  replica to visit: healthy (breaker allows) first, lowest EWMA
  latency first among those, index order as the tiebreak so the
  primary wins until latencies say otherwise.
* :class:`LatencyTracker` — a bounded reservoir of recent shard-visit
  latencies with a percentile read, feeding percentile-triggered
  hedges.
* :class:`HedgePolicy` — when a straggling visit should be hedged to
  another replica: after a fixed ``hedge_ms``, or after the tracked
  latency ``percentile`` once enough samples exist.

Selection is a *routing* concern only — correctness never depends on
it.  The worst a bad pick costs is latency: the scatter fails over on
error and hedges on delay, and a shard is PARTIAL only when every
replica has failed (docs/CORPUS.md).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Union

from repro.exceptions import QueryError
from repro.resilience.retry import CircuitBreaker

#: Separator between a shard label and a replica ordinal in replica
#: directory names: ``s0003`` (primary) / ``s0003.r1`` / ``s0003.r2``.
REPLICA_SEPARATOR = ".r"

#: Default EWMA smoothing factor for replica latency.
DEFAULT_EWMA_ALPHA = 0.3

#: Default consecutive visit failures before a replica quarantines.
DEFAULT_REPLICA_BREAKER_THRESHOLD = 3

#: Default quarantine cooldown before a half-open trial, in seconds.
DEFAULT_REPLICA_COOLDOWN_S = 5.0

#: Default latency percentile that triggers a hedge.
DEFAULT_HEDGE_PERCENTILE = 0.95

#: Default samples required before percentile hedging activates.
DEFAULT_HEDGE_MIN_SAMPLES = 8


def replica_name(replica: int) -> str:
    """Canonical replica label (``r0`` is the primary)."""
    return f"r{replica}"


def replica_dir_name(shard_label: str, replica: int) -> str:
    """Directory name of one replica.

    The primary keeps the bare shard label so a 1-replica corpus is
    byte-identical on disk to a pre-replication one (and every legacy
    reader keeps working); further replicas append ``.rN``.
    """
    if replica == 0:
        return shard_label
    return f"{shard_label}{REPLICA_SEPARATOR}{replica}"


class LatencyTracker:
    """A bounded window of recent latencies with a percentile read.

    Thread-safe; the corpus scatter records every successful shard
    visit here (one tracker per shard) and the hedge policy asks for
    a high percentile to decide when a visit counts as straggling.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity <= 0:
            raise QueryError(
                f"latency tracker capacity must be positive, "
                f"got {capacity}")
        self._lock = threading.Lock()
        self._samples: Deque[float] = deque(maxlen=capacity)  # repro: guarded-by[_lock]

    def record(self, latency_ms: float) -> None:
        with self._lock:
            self._samples.append(float(latency_ms))

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def percentile(self, q: float) -> Optional[float]:
        """The ``q``-th latency percentile (``None`` with no samples);
        nearest-rank over the retained window."""
        if not 0.0 <= q <= 1.0:
            raise QueryError(f"percentile must be in [0, 1], got {q}")
        with self._lock:
            ordered = sorted(self._samples)
        if not ordered:
            return None
        rank = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[rank]


class ReplicaHealth:
    """One replica's mutable health record (owned by a selector)."""

    __slots__ = ("name", "directory", "breaker", "ewma_ms",
                 "successes", "failures", "alpha")

    def __init__(self, name: str, directory: str,
                 breaker: CircuitBreaker,
                 alpha: float = DEFAULT_EWMA_ALPHA) -> None:
        self.name = name
        self.directory = directory
        self.breaker = breaker
        self.alpha = alpha
        self.ewma_ms: Optional[float] = None
        self.successes = 0
        self.failures = 0

    def observe(self, latency_ms: float) -> None:
        if self.ewma_ms is None:
            self.ewma_ms = float(latency_ms)
        else:
            self.ewma_ms += self.alpha * (latency_ms - self.ewma_ms)

    def summary(self) -> Dict[str, object]:
        return {"name": self.name,
                "ewma_ms": (round(self.ewma_ms, 3)
                            if self.ewma_ms is not None else None),
                "successes": self.successes,
                "failures": self.failures,
                "breaker": self.breaker.summary()}


class ReplicaSelector:
    """Health-aware replica choice for one shard.

    ``pick`` prefers replicas whose breaker allows traffic, ordered by
    EWMA latency (unknown latency sorts first at its index, so cold
    replicas get probed), with the replica index as the final
    tiebreak.  When *every* replica is quarantined, the least-recently
    -failed one is returned anyway — an open breaker must never turn a
    recoverable shard into a PARTIAL answer by itself; the visit is
    the half-open trial.

    All mutation happens under one lock; ``record_failure`` counts
    toward the replica's breaker (quarantine at ``threshold``
    consecutive failures), ``record_success`` closes it and feeds the
    EWMA plus the shard-level latency tracker hedging reads.
    """

    def __init__(self, replicas: Sequence[ReplicaHealth],
                 tracker: Optional[LatencyTracker] = None) -> None:
        if not replicas:
            raise QueryError("a replica selector needs at least one "
                             "replica")
        self._lock = threading.Lock()
        self._replicas = tuple(replicas)
        self.tracker = tracker if tracker is not None \
            else LatencyTracker()

    @property
    def replicas(self) -> Sequence[ReplicaHealth]:
        return self._replicas

    def __len__(self) -> int:
        return len(self._replicas)

    def pick(self, exclude: Iterable[int] = ()) -> Optional[int]:
        """Index of the next replica to visit, or ``None`` when
        ``exclude`` already names them all."""
        excluded = set(exclude)
        allowed: List[int] = []
        blocked: List[int] = []
        with self._lock:
            for index, health in enumerate(self._replicas):
                if index in excluded:
                    continue
                (allowed if health.breaker.allow()
                 else blocked).append(index)

            def rank(index: int):
                ewma = self._replicas[index].ewma_ms
                return (0 if ewma is None else 1,
                        ewma if ewma is not None else 0.0, index)

            if allowed:
                return min(allowed, key=rank)
            if blocked:
                # Every candidate is quarantined: probe the one with
                # the fewest consecutive failures rather than failing
                # the shard outright.
                return min(blocked, key=lambda index: (
                    self._replicas[index].breaker.failures, index))
        return None

    def record_success(self, index: int, latency_ms: float) -> None:
        with self._lock:
            health = self._replicas[index]
            health.successes += 1
            health.observe(latency_ms)
            health.breaker.record_success()
        self.tracker.record(latency_ms)

    def record_failure(self, index: int) -> None:
        with self._lock:
            health = self._replicas[index]
            health.failures += 1
            health.breaker.record_failure()

    def record_straggler(self, index: int, pending_ms: float) -> None:
        """An abandoned visit (hedged over, or still pending when the
        scatter returned): feed the observed pending time into the
        replica's EWMA so routing learns the slowness, without
        touching its breaker — slow is not broken."""
        with self._lock:
            self._replicas[index].observe(pending_ms)

    def quarantined(self) -> List[str]:
        """Names of replicas whose breaker currently refuses traffic."""
        with self._lock:
            return [health.name for health in self._replicas
                    if not health.breaker.allow()]

    def stats(self) -> List[Dict[str, object]]:
        """JSON-safe per-replica health (health endpoints, chaos)."""
        with self._lock:
            return [health.summary() for health in self._replicas]


class HedgePolicy:
    """When a straggling shard visit is speculatively re-issued.

    Two triggers, first-match wins:

    * ``hedge_ms`` — fixed: a visit pending longer than this is
      hedged;
    * ``percentile`` — adaptive: once the shard's latency tracker
      holds ``min_samples`` observations, a visit pending longer than
      that percentile of recent latencies is hedged.

    ``delay_ms(tracker)`` returns ``None`` while neither trigger can
    fire (hedging stays off rather than guessing).  Hedging trades
    duplicate work for tail latency: both replicas hold identical
    content, so whichever answer lands first is *the* answer —
    bit-identical by construction — and the loser is discarded.
    """

    __slots__ = ("hedge_ms", "percentile", "min_samples")

    def __init__(self, hedge_ms: Optional[float] = None,
                 percentile: Optional[float] = None,
                 min_samples: int = DEFAULT_HEDGE_MIN_SAMPLES) -> None:
        if hedge_ms is not None and hedge_ms <= 0:
            raise QueryError(
                f"hedge_ms must be positive, got {hedge_ms}")
        if percentile is not None and not 0.0 < percentile < 1.0:
            raise QueryError(
                f"hedge percentile must be in (0, 1), got {percentile}")
        if min_samples <= 0:
            raise QueryError(
                f"hedge min_samples must be positive, got {min_samples}")
        if hedge_ms is None and percentile is None:
            raise QueryError("a hedge policy needs hedge_ms, a "
                             "percentile, or both")
        self.hedge_ms = hedge_ms
        self.percentile = percentile
        self.min_samples = min_samples

    def delay_ms(self, tracker: LatencyTracker) -> Optional[float]:
        """How long a visit may be pending before it is hedged
        (``None`` = do not hedge yet)."""
        if self.hedge_ms is not None:
            return self.hedge_ms
        if self.percentile is not None \
                and len(tracker) >= self.min_samples:
            return tracker.percentile(self.percentile)
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"HedgePolicy(hedge_ms={self.hedge_ms}, "
                f"percentile={self.percentile})")


#: What corpus-service signatures accept for ``hedge``: a policy, a
#: fixed millisecond trigger, or ``None`` (hedging off).
HedgeLike = Union[HedgePolicy, float, int, None]


def as_hedge_policy(value: HedgeLike) -> Optional[HedgePolicy]:
    """Coerce the public ``hedge=`` argument (``None`` = off)."""
    if value is None:
        return None
    if isinstance(value, HedgePolicy):
        return value
    if isinstance(value, bool):
        raise QueryError(f"hedge must be a HedgePolicy or a "
                         f"millisecond trigger, got {value!r}")
    if isinstance(value, (int, float)):
        return HedgePolicy(hedge_ms=float(value))
    raise QueryError(f"hedge must be a HedgePolicy or a millisecond "
                     f"trigger, got {type(value).__name__}")
