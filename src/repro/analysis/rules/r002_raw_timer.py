"""R002: raw wall-clock calls outside :mod:`repro.obs`.

``repro.obs.Stopwatch`` and ``collector.time(...)`` are the library's
only sanctioned clocks: they keep units consistent (seconds internally,
milliseconds in reports), stay pollable mid-flight, and feed the
``repro.metrics/v1`` schema.  Ad-hoc ``time.perf_counter()`` pairs
scattered through engine code bit-rot into mismatched units and
unreported timings, so everything outside the ``repro/obs/`` package —
where the primitives themselves live — must go through them.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import Finding, SourceModule

#: ``time`` module functions that read a clock for timing purposes.
CLOCK_FUNCTIONS = frozenset({"perf_counter", "perf_counter_ns",
                             "monotonic", "monotonic_ns", "time"})

#: Path fragment marking the one package allowed to touch raw clocks.
EXEMPT_FRAGMENT = "repro/obs/"


class RawTimerRule:
    """Flag raw ``time.perf_counter()``-style calls outside repro.obs."""

    rule_id = "R002"
    title = "raw clock call outside repro.obs"
    hint = ("time through repro.obs.Stopwatch or "
            "collector.time('name') so the duration reaches the "
            "metrics report")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if EXEMPT_FRAGMENT in module.path:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _clock_name(node.func)
            if name is not None:
                yield module.finding(
                    node, self,
                    f"raw clock call time.{name}() outside repro.obs")


def _clock_name(func: ast.AST) -> "str | None":
    if isinstance(func, ast.Attribute) \
            and isinstance(func.value, ast.Name) \
            and func.value.id == "time" and func.attr in CLOCK_FUNCTIONS:
        return func.attr
    if isinstance(func, ast.Name) and func.id in CLOCK_FUNCTIONS \
            and func.id != "time":
        # A bare ``time()`` call is far more often a local helper than
        # ``from time import time``; only from-imported clock names
        # that are unambiguous (perf_counter, monotonic) are flagged.
        return func.id
    return None
