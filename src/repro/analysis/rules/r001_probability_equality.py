"""R001: bare float ``==`` / ``!=`` on probability-valued expressions.

Probabilities are accumulated through long chains of float multiplies
and convolutions, so exact equality against another probability or a
float literal is almost always a latent bug — ``tab[mask] == 1.0`` can
silently miss by one ulp and flip a fast path or a validation check.
The repo-wide helpers in :mod:`repro.analysis.numeric` (``is_close``,
``is_one``, ``is_zero``) make the tolerance a single shared decision.

Deliberate *sentinel* comparisons (e.g. "the ``prob`` attribute was
omitted, so the parser stored exactly 1.0") stay legal via the standard
suppression comment, which doubles as in-source documentation::

    if root.edge_prob != 1.0:  # repro: ignore[R001] exact parse sentinel
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import Finding, SourceModule, is_probability_named


class ProbabilityEqualityRule:
    """Flag exact float equality between probability-like operands."""

    rule_id = "R001"
    title = "float equality on probability expression"
    hint = ("use repro.analysis.numeric.is_close/is_one/is_zero, or "
            "suppress a deliberate sentinel with '# repro: ignore[R001]' "
            "and a reason")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq))
                       for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            named = [op for op in operands if is_probability_named(op)]
            if not named:
                continue
            floats = [op for op in operands if _is_float_literal(op)]
            if floats or len(named) >= 2:
                yield module.finding(
                    node, self,
                    "exact float comparison on probability-valued "
                    f"expression {ast.unparse(node)!r}")


def _is_float_literal(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, float)
