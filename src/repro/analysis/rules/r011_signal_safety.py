"""R011: unsafe signal handling.

CPython runs Python-level signal handlers on the *main thread*, at an
arbitrary bytecode boundary of whatever the main thread was doing.
Two discipline points follow:

* **Registration** must go through
  :func:`repro.service.signals.safe_signal`.  Raw ``signal.signal``
  raises ``ValueError`` when the registering code happens to run off
  the main thread (an embedding server constructing a
  ``QueryService`` in a worker), and scattering ad-hoc try/except
  around registrations hides that the handler silently did not
  install.  ``safe_signal`` centralises the main-thread check and the
  logged skip.
* **Handler bodies** must not do non-reentrant or blocking work.  A
  handler that takes a plain ``threading.Lock`` deadlocks the process
  the first time the signal interrupts the very critical section that
  holds it (the ``FlightRecorder`` dump path fixed in this PR);
  sleeping, waiting or joining inside a handler stalls the main
  thread at an unpredictable point.

The rule flags raw ``signal.signal``/``signal.sigaction`` calls
outside the blessed helper, and hazardous statements inside any
function it can see being registered as a handler (by name or lambda).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional

from repro.analysis.linter import Finding, SourceModule

#: The one function allowed to call ``signal.signal`` directly.
BLESSED_REGISTRAR = "safe_signal"

#: Module whose job *is* raw registration.
BLESSED_PATHS = ("repro/service/signals.py",)

#: Registration entry points we recognise.
_REGISTRATION_ATTRS = frozenset({"signal", "sigaction"})

#: Handler-body calls that block or spawn.
_HAZARD_CALL_ATTRS = frozenset({"acquire", "wait", "sleep", "fork"})


class SignalSafetyRule:
    """Flag raw handler registration and non-reentrant handler work."""

    rule_id = "R011"
    title = "unsafe signal registration or handler body"
    hint = ("register through repro.service.signals.safe_signal (skips "
            "with a warning off the main thread) and keep handler "
            "bodies reentrant: no plain-Lock acquisition, no "
            "sleeping/waiting/joining (docs/ANALYSIS.md)")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if any(fragment in module.path for fragment in BLESSED_PATHS):
            return
        functions: Dict[str, ast.AST] = {
            node.name: node for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))}
        handlers: List[ast.AST] = []
        yield from self._visit_registrations(module, module.tree, False,
                                             functions, handlers)
        reported: List[int] = []
        for handler in handlers:
            if id(handler) in reported:
                continue
            reported.append(id(handler))
            yield from self._check_handler(module, handler)

    def _visit_registrations(self, module: SourceModule, node: ast.AST,
                             blessed: bool, functions: Dict[str, ast.AST],
                             handlers: List[ast.AST]
                             ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            inside = blessed
            if isinstance(child, (ast.FunctionDef,
                                  ast.AsyncFunctionDef)):
                inside = blessed or child.name == BLESSED_REGISTRAR
            if isinstance(child, ast.Call):
                kind = _registration_kind(child)
                if kind == "raw" and not inside:
                    yield module.finding(
                        child, self,
                        "raw signal.signal registration; ValueError "
                        "off the main thread and no logged skip")
                if kind is not None:
                    handler = _handler_argument(child, functions)
                    if handler is not None:
                        handlers.append(handler)
            yield from self._visit_registrations(module, child, inside,
                                                 functions, handlers)

    def _check_handler(self, module: SourceModule,
                       handler: ast.AST) -> Iterator[Finding]:
        name = getattr(handler, "name", "<lambda>")
        body = getattr(handler, "body", [])
        statements = body if isinstance(body, list) else [body]
        stack: List[ast.AST] = list(statements)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef, ast.Lambda)):
                continue
            hazard = _handler_hazard(node)
            if hazard is not None:
                yield module.finding(
                    node, self,
                    f"signal handler {name} {hazard}; handlers run on "
                    f"the main thread at arbitrary bytecode "
                    f"boundaries and must stay reentrant")
            stack.extend(ast.iter_child_nodes(node))


def _registration_kind(call: ast.Call) -> Optional[str]:
    """``"raw"`` for ``signal.signal(...)``, ``"safe"`` for
    ``safe_signal(...)``, else ``None``."""
    func = call.func
    if isinstance(func, ast.Attribute) \
            and func.attr in _REGISTRATION_ATTRS \
            and isinstance(func.value, ast.Name) \
            and func.value.id == "signal":
        return "raw"
    name = func.id if isinstance(func, ast.Name) else \
        func.attr if isinstance(func, ast.Attribute) else None
    if name == BLESSED_REGISTRAR:
        return "safe"
    return None


def _handler_argument(call: ast.Call,
                      functions: Dict[str, ast.AST]
                      ) -> Optional[ast.AST]:
    """The handler function being registered, when resolvable."""
    if len(call.args) < 2:
        return None
    handler = call.args[1]
    if isinstance(handler, ast.Lambda):
        return handler
    if isinstance(handler, ast.Name):
        return functions.get(handler.id)
    return None


def _handler_hazard(node: ast.AST) -> Optional[str]:
    """Why ``node`` is hazardous inside a handler, or ``None``."""
    if isinstance(node, (ast.With, ast.AsyncWith)):
        for item in node.items:
            name = _rightmost_name(item.context_expr)
            if name is not None and "lock" in name.lower():
                return (f"acquires {name} with a with-block "
                        f"(self-deadlock if the signal interrupted "
                        f"the holder)")
    if isinstance(node, ast.Call):
        func = node.func
        attr = func.attr if isinstance(func, ast.Attribute) else \
            func.id if isinstance(func, ast.Name) else None
        if attr in _HAZARD_CALL_ATTRS:
            return f"calls .{attr}()"
        if attr == "join":
            receiver = func.value if isinstance(func, ast.Attribute) \
                else None
            if not isinstance(receiver, ast.Constant):
                name = _rightmost_name(receiver) or ""
                if any(tok in name.lower()
                       for tok in ("thread", "worker", "pool", "proc")):
                    return "joins a thread"
        if attr in ("Thread", "ThreadPoolExecutor",
                    "ProcessPoolExecutor"):
            return f"spawns {attr} machinery"
    return None


def _rightmost_name(node: Optional[ast.AST]) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _rightmost_name(node.func)
    return None
