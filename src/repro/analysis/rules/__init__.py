"""The rule registry of the repo linter.

Every rule is a class exposing ``rule_id`` / ``title`` / ``hint`` class
attributes and a ``check(module) -> Iterator[Finding]`` method over a
:class:`repro.analysis.linter.SourceModule`.  Rules are documented for
humans in docs/ANALYSIS.md; keep the two in sync when adding one.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Type

from repro.analysis.linter import LintError
from repro.analysis.rules.r001_probability_equality import \
    ProbabilityEqualityRule
from repro.analysis.rules.r002_raw_timer import RawTimerRule
from repro.analysis.rules.r003_unguarded_return import \
    UnguardedProbabilityReturnRule
from repro.analysis.rules.r004_missing_annotations import \
    MissingAnnotationsRule
from repro.analysis.rules.r005_mutable_default import MutableDefaultRule
from repro.analysis.rules.r006_swallowed_exception import \
    SwallowedExceptionRule
from repro.analysis.rules.r007_nonatomic_write import NonAtomicWriteRule
from repro.analysis.rules.r008_unguarded_state import \
    UnguardedSharedStateRule
from repro.analysis.rules.r009_lock_order import LockOrderRule
from repro.analysis.rules.r010_blocking_under_lock import \
    BlockingUnderLockRule
from repro.analysis.rules.r011_signal_safety import SignalSafetyRule
from repro.analysis.rules.r012_fork_safety import ForkSafetyRule

#: Every registered rule class, in rule-id order.
ALL_RULES = (
    ProbabilityEqualityRule,
    RawTimerRule,
    UnguardedProbabilityReturnRule,
    MissingAnnotationsRule,
    MutableDefaultRule,
    SwallowedExceptionRule,
    NonAtomicWriteRule,
    UnguardedSharedStateRule,
    LockOrderRule,
    BlockingUnderLockRule,
    SignalSafetyRule,
    ForkSafetyRule,
)

RULES_BY_ID: Dict[str, Type] = {rule.rule_id: rule for rule in ALL_RULES}


def default_rules() -> List[object]:
    """Fresh instances of every registered rule."""
    return [rule() for rule in ALL_RULES]


def select_rules(rule_ids: Optional[Iterable[str]]) -> List[object]:
    """Instances of the named rules (all of them for ``None``).

    Raises:
        LintError: for an id that names no registered rule.
    """
    if rule_ids is None:
        return default_rules()
    chosen = []
    for rule_id in rule_ids:
        normalised = rule_id.strip().upper()
        if not normalised:
            continue
        if normalised not in RULES_BY_ID:
            known = ", ".join(sorted(RULES_BY_ID))
            raise LintError(
                f"unknown rule id {rule_id!r}; registered rules: {known}")
        chosen.append(RULES_BY_ID[normalised]())
    if not chosen:
        raise LintError("no rules selected")
    return chosen
