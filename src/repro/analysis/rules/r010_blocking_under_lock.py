"""R010: blocking call while holding a lock.

A lock held across a blocking operation — a sleep, a ``Condition``
wait, a pool submit that can stall on a saturated executor, a
``Future.result``, file I/O — turns every other thread that needs the
lock into a convoy, and in the worst case (the blocked operation needs
another thread that needs the lock) into a deadlock.  Critical
sections in this codebase are deliberately tiny: counter bumps, dict
rotations, reference swaps.

This rule walks each lock-owning class with the held-lock tracking of
:mod:`repro.analysis.concurrency.model` and flags recognisably
blocking calls made with any ``self`` lock held.  ``.join()`` is only
flagged when the receiver looks like a thread or pool (string
``sep.join`` is ubiquitous and harmless).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.concurrency.model import build_class_models
from repro.analysis.linter import Finding, SourceModule

#: Receiver-name fragments that make ``.join()`` look thread-like.
_JOINABLE_FRAGMENTS = ("thread", "worker", "pool", "proc", "future")

#: Constructors that spawn worker machinery (blocking + heavyweight).
_EXECUTOR_FACTORIES = frozenset({"ThreadPoolExecutor",
                                 "ProcessPoolExecutor", "Pool",
                                 "Process", "Popen"})


class BlockingUnderLockRule:
    """Flag blocking operations inside a ``with self._lock:`` block."""

    rule_id = "R010"
    title = "blocking call while holding a lock"
    hint = ("shrink the critical section: compute/copy under the lock, "
            "then block after releasing it (see FlightRecorder.dump — "
            "snapshot under the lock, file I/O outside)")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for cls in build_class_models(module).classes:
            if not cls.locks:
                continue
            for method in cls.methods:
                for call, held in method.calls:
                    if not held:
                        continue
                    reason = _blocking_reason(call)
                    if reason is not None:
                        yield module.finding(
                            call, self,
                            f"{reason} while holding "
                            f"{', '.join(sorted(held))} (in "
                            f"{cls.name}.{method.name})")


def _blocking_reason(call: ast.Call) -> Optional[str]:
    """Why ``call`` counts as blocking, or ``None``."""
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "open":
            return "open() performs file I/O"
        if func.id in _EXECUTOR_FACTORIES:
            return f"{func.id}() spawns worker machinery"
        if func.id == "sleep":
            return "sleep() parks the holding thread"
        return None
    if not isinstance(func, ast.Attribute):
        return None
    attr = func.attr
    if attr == "sleep":
        return "sleep() parks the holding thread"
    if attr == "wait":
        return ".wait() blocks until another thread notifies"
    if attr == "submit":
        return "executor .submit() can block on a saturated pool"
    if attr == "result":
        return "Future.result() blocks until the worker finishes"
    if attr in _EXECUTOR_FACTORIES:
        return f"{attr}() spawns worker machinery"
    if attr == "join":
        receiver = func.value
        if isinstance(receiver, ast.Constant):
            return None  # "sep".join(...) — string join
        name = receiver.attr if isinstance(receiver, ast.Attribute) \
            else receiver.id if isinstance(receiver, ast.Name) else ""
        if any(fragment in name.lower()
               for fragment in _JOINABLE_FRAGMENTS):
            return ".join() waits for another thread to finish"
    return None
