"""R007: non-atomic file writes in the storage-critical packages.

A plain ``open(path, "w")`` truncates the destination *before* the new
bytes land: a crash between the truncate and the final flush leaves a
half-written file in place of a good one.  The storage layer's whole
durability story (docs/STORAGE.md) rests on never doing that — every
persistent file is written to a temp name, fsynced, and renamed over
the destination by :func:`repro.index.storage._atomic_write`, and the
snapshot commit point is one atomic ``CURRENT`` rename.

This rule guards that invariant where it matters: inside
``repro/index/``, ``repro/service/`` and ``repro/corpus/`` (the
packages that own persistent state), any call that opens a file for
writing — ``open``
with a ``w``/``a``/``x``/``+`` mode, ``os.open`` with ``O_WRONLY`` /
``O_RDWR``, or a ``.write_text()`` / ``.write_bytes()`` convenience
call — is flagged unless it happens inside the blessed
``_atomic_write`` helper itself.  Code elsewhere (CLI report sinks,
test fixtures, datagen output) may write however it likes.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import Finding, SourceModule

#: Path fragments naming the packages that own persistent state.
GUARDED_FRAGMENTS = ("repro/index/", "repro/service/", "repro/corpus/")

#: The one function allowed to open files for writing in there.
BLESSED_FUNCTION = "_atomic_write"

#: ``Path``-style convenience writers (always truncate in place).
CONVENIENCE_WRITERS = frozenset({"write_text", "write_bytes"})

#: ``os.open`` flag names that request write access.
OS_WRITE_FLAGS = frozenset({"O_WRONLY", "O_RDWR"})


class NonAtomicWriteRule:
    """Flag in-place file writes outside ``_atomic_write``."""

    rule_id = "R007"
    title = "non-atomic file write in a storage-critical package"
    hint = ("write via repro.index.storage._atomic_write (temp file + "
            "fsync + os.replace) so a crash can never leave a "
            "truncated file behind (docs/STORAGE.md)")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if not any(fragment in module.path
                   for fragment in GUARDED_FRAGMENTS):
            return
        yield from self._visit(module, module.tree, blessed=False)

    def _visit(self, module: SourceModule, node: ast.AST,
               blessed: bool) -> Iterator[Finding]:
        """Walk with context: inside ``_atomic_write``, writes are
        the point — nothing there is flagged."""
        for child in ast.iter_child_nodes(node):
            inside = blessed
            if isinstance(child, (ast.FunctionDef,
                                  ast.AsyncFunctionDef)):
                inside = blessed or child.name == BLESSED_FUNCTION
            if isinstance(child, ast.Call) and not inside:
                message = _describe_write(child)
                if message is not None:
                    yield module.finding(child, self, message)
            yield from self._visit(module, child, inside)


def _describe_write(call: ast.Call) -> "str | None":
    """A finding message when ``call`` opens a file for writing."""
    func = call.func
    if isinstance(func, ast.Name) and func.id == "open":
        mode = _literal_mode(call, position=1, keyword="mode")
        if mode is not None and any(flag in mode for flag in "wax+"):
            return (f"open(..., {mode!r}) writes in place; a crash "
                    f"mid-write corrupts the destination")
        return None
    if isinstance(func, ast.Attribute):
        if func.attr in CONVENIENCE_WRITERS:
            return (f".{func.attr}() truncates the destination in "
                    f"place before writing")
        if func.attr == "open" and isinstance(func.value, ast.Name) \
                and func.value.id == "os":
            if _has_os_write_flag(call):
                return ("os.open(..., O_WRONLY/O_RDWR) writes in "
                        "place; a crash mid-write corrupts the "
                        "destination")
    return None


def _literal_mode(call: ast.Call, position: int,
                  keyword: str) -> "str | None":
    """The call's literal mode string, if one is present."""
    if len(call.args) > position:
        argument = call.args[position]
        if isinstance(argument, ast.Constant) \
                and isinstance(argument.value, str):
            return argument.value
        return None
    for entry in call.keywords:
        if entry.arg == keyword and isinstance(entry.value, ast.Constant) \
                and isinstance(entry.value.value, str):
            return entry.value.value
    return None


def _has_os_write_flag(call: ast.Call) -> bool:
    """Whether any argument expression mentions a write-access flag."""
    for argument in call.args[1:]:
        for node in ast.walk(argument):
            if isinstance(node, ast.Attribute) \
                    and node.attr in OS_WRITE_FLAGS:
                return True
            if isinstance(node, ast.Name) and node.id in OS_WRITE_FLAGS:
                return True
    return False
