"""R009: inconsistent lock-acquisition order (deadlock shape).

Two locks acquired in opposite orders on two code paths deadlock the
first time the paths interleave.  This rule builds the module's
lock-order graph — a ``Class.lockA -> Class.lockB`` edge for every
``with self.lockB:`` entered while ``self.lockA`` is held — and flags
every acquisition that closes a cycle.

The graph is intraprocedural (direct ``with`` nesting); edges that
pass through calls are the runtime witness's job
(:class:`repro.analysis.concurrency.witness.LockWitness` checks the
declared order, :data:`~repro.analysis.concurrency.witness.DEFAULT_LOCK_ORDER`,
which a test keeps a superset of the statically derived edges).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set

from repro.analysis.concurrency.model import build_class_models
from repro.analysis.linter import Finding, SourceModule


class LockOrderRule:
    """Flag lock acquisitions that create an order cycle."""

    rule_id = "R009"
    title = "inconsistent lock-acquisition order"
    hint = ("pick one global order for the two locks and acquire them "
            "in that order on every path (docs/ANALYSIS.md lists the "
            "declared service lock order)")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        edges = build_class_models(module).order_edges()
        graph: Dict[str, Set[str]] = {}
        # Insert edges one at a time; an edge whose reverse direction
        # is already reachable closes a cycle and is flagged at its
        # acquisition site.
        for outer, inner, node in edges:
            if self._reachable(graph, inner, outer):
                yield module.finding(
                    node, self,
                    f"acquiring {inner} while holding {outer}, but the "
                    f"opposite order {inner} -> {outer} exists on "
                    f"another path")
                continue
            graph.setdefault(outer, set()).add(inner)

    @staticmethod
    def _reachable(graph: Dict[str, Set[str]], start: str,
                   goal: str) -> bool:
        seen = {start}
        frontier: List[str] = [start]
        while frontier:
            node = frontier.pop()
            if node == goal:
                return True
            for nxt in graph.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False
