"""R008: shared state accessed outside its guarding lock.

The service stack shares mutable objects across threads — caches,
collectors, the flight-recorder ring, reload bookkeeping — and each of
them nominates one lock that guards its mutable attributes.  This rule
checks the discipline statically, per class that owns at least one
lock attribute:

* an attribute annotated ``# repro: guarded-by[_lock]`` (on its
  ``__init__`` assignment) must only be touched with ``_lock`` held;
* ``# repro: guarded-by[_lock, writes]`` is the single-writer pattern
  (atomic reference swap): writes need the lock, lock-free reads are
  part of the design;
* ``# repro: guarded-by[lockfree]`` opts an attribute out entirely;
* an *unannotated* attribute whose writes (outside ``__init__``) all
  happen under exactly one lock is inferred guarded by it — reads and
  writes elsewhere without that lock are flagged, catching the classic
  "stats() reads the counters the hot path mutates under the lock"
  race.

Methods annotated ``# repro: holds[_lock]`` on the ``def`` line are
treated as running with the lock held (private helpers documented as
called under the lock).  Accesses inside construction methods are
exempt — the object is not shared yet.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.concurrency.model import (CONSTRUCTION_METHODS,
                                              build_class_models)
from repro.analysis.linter import Finding, SourceModule


class UnguardedSharedStateRule:
    """Flag guarded-attribute accesses without the guarding lock."""

    rule_id = "R008"
    title = "shared state accessed outside its guarding lock"
    hint = ("take the guarding lock around the access, annotate the "
            "attribute's intent (`# repro: guarded-by[lock]`, "
            "`[lock, writes]` or `[lockfree]`), or mark the helper "
            "`# repro: holds[lock]` (docs/ANALYSIS.md)")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for cls in build_class_models(module).classes:
            if not cls.locks:
                continue
            guards = cls.guard_map()
            if not guards:
                continue
            for method in cls.methods:
                if method.name in CONSTRUCTION_METHODS:
                    continue
                for access in method.accesses:
                    spec = guards.get(access.attr)
                    if spec is None:
                        continue
                    if spec.writes_only and not access.write:
                        continue
                    if spec.lock in access.held:
                        continue
                    flavour = "declared" if spec.declared else "inferred"
                    kind = "write to" if access.write else "read of"
                    yield module.finding(
                        access.node, self,
                        f"{kind} {cls.name}.{access.attr} without "
                        f"holding {spec.lock} ({flavour} guard; in "
                        f"{method.name})")
