"""R005: mutable default argument values.

A ``def merge(into={})`` default is evaluated once at function
definition time and then shared by every call — mutating it leaks state
across calls, which in this library would mean keyword tables or match
lists silently bleeding between queries.  Use ``None`` plus an
in-function default instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import Finding, SourceModule

_FACTORY_NAMES = frozenset({"list", "dict", "set", "bytearray"})


class MutableDefaultRule:
    """Flag list/dict/set literals (or constructors) as defaults."""

    rule_id = "R005"
    title = "mutable default argument"
    hint = "default to None and create the container inside the function"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = [*node.args.defaults,
                        *(d for d in node.args.kw_defaults if d is not None)]
            for default in defaults:
                if _is_mutable(default):
                    name = getattr(node, "name", "<lambda>")
                    yield module.finding(
                        default, self,
                        f"function {name!r} uses mutable default "
                        f"{ast.unparse(default)!r}")


def _is_mutable(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _FACTORY_NAMES)
