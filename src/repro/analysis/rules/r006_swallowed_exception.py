"""R006: exception handlers that silently swallow (``except: pass``).

An empty handler turns a wrong answer into a quiet one — the exact
failure mode this repo's whole analysis layer exists to prevent: a
``ModelError`` raised by a MUX mass check means a corrupted
distribution, and discarding it yields a plausible-looking but wrong
top-k.  Handle the exception, log it, re-raise something better, or
suppress the finding with a comment explaining why dropping it is
correct at that site.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import Finding, SourceModule


class SwallowedExceptionRule:
    """Flag except handlers whose whole body is ``pass`` / ``...``."""

    rule_id = "R006"
    title = "swallowed exception"
    hint = ("handle or log the exception; if dropping it is genuinely "
            "correct, suppress with '# repro: ignore[R006]' and say why")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if all(_is_noop(statement) for statement in node.body):
                caught = ("bare except" if node.type is None
                          else f"except {ast.unparse(node.type)}")
                yield module.finding(
                    node, self,
                    f"{caught} swallows the exception with an empty body")


def _is_noop(statement: ast.stmt) -> bool:
    if isinstance(statement, ast.Pass):
        return True
    return (isinstance(statement, ast.Expr)
            and isinstance(statement.value, ast.Constant)
            and statement.value.value is Ellipsis)
