"""R012: fork/process-pool payload unsafety.

Work shipped to a ``ProcessPoolExecutor`` worker is pickled (or, under
the fork start method, snapshotted mid-state): locks arrive
permanently held or fail to pickle, open file handles and sockets
alias the parent's descriptors, and collectors/recorders silently
diverge — the worker mutates a *copy* and the parent never sees it.
The service's own process tier therefore ships only plain data
(JSON-safe job tuples, a path, a fault spec string) and re-creates
everything heavy inside the worker via a module-level initializer.

This rule enforces that shape: for every variable bound to a
``ProcessPoolExecutor`` it checks ``submit``/``map`` payloads and the
constructor's ``initializer``/``initargs``, flagging arguments that
capture ``self``, anything lock/collector/recorder/tracer/witness-
named, bound methods, or lambdas (unpicklable).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.analysis.linter import Finding, SourceModule

#: Name fragments that mark a payload expression as process-unsafe.
_UNSAFE_FRAGMENTS = ("lock", "collector", "recorder", "tracer",
                     "witness", "semaphore", "condition")

#: Exact names that mark a payload as a live OS resource.
_UNSAFE_EXACT = frozenset({"pool", "handle", "sock", "socket", "conn",
                           "fh", "fp", "pipe"})


class ForkSafetyRule:
    """Flag live resources captured in process-pool payloads."""

    rule_id = "R012"
    title = "live resource shipped to a process-pool worker"
    hint = ("ship plain data (paths, tuples, spec strings) and rebuild "
            "heavy state in the worker via a module-level initializer "
            "(see QueryService._process_init); locks, collectors and "
            "open handles do not survive pickling/fork")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for scope in _scopes(module.tree):
            pools = _process_pool_names(scope)
            for node in _walk_scope(scope):
                if not isinstance(node, ast.Call):
                    continue
                if _is_process_pool_ctor(node):
                    yield from self._check_ctor(module, node)
                func = node.func
                if isinstance(func, ast.Attribute) \
                        and func.attr in ("submit", "map") \
                        and isinstance(func.value, ast.Name) \
                        and func.value.id in pools:
                    yield from self._check_payload(
                        module, node, node.args, func.attr)

    def _check_ctor(self, module: SourceModule,
                    call: ast.Call) -> Iterator[Finding]:
        for keyword in call.keywords:
            if keyword.arg == "initializer":
                reason = _unsafe_reason(keyword.value,
                                        allow_plain_name=True)
                if reason is not None:
                    yield module.finding(
                        keyword.value, self,
                        f"process-pool initializer {reason}")
            elif keyword.arg == "initargs":
                elements = keyword.value.elts \
                    if isinstance(keyword.value,
                                  (ast.Tuple, ast.List)) \
                    else [keyword.value]
                for element in elements:
                    reason = _unsafe_reason(element)
                    if reason is not None:
                        yield module.finding(
                            element, self,
                            f"process-pool initargs {reason}")

    def _check_payload(self, module: SourceModule, call: ast.Call,
                       args: List[ast.expr],
                       method: str) -> Iterator[Finding]:
        if args:
            reason = _unsafe_reason(args[0], allow_plain_name=True)
            if reason is not None:
                yield module.finding(
                    args[0], self,
                    f"process-pool .{method}() target {reason}")
        for argument in args[1:]:
            reason = _unsafe_reason(argument)
            if reason is not None:
                yield module.finding(
                    argument, self,
                    f"process-pool .{method}() payload {reason}")


def _scopes(tree: ast.Module) -> List[ast.AST]:
    """The module plus every function, each a pool-tracking scope."""
    return [tree] + [node for node in ast.walk(tree)
                     if isinstance(node, (ast.FunctionDef,
                                          ast.AsyncFunctionDef))]


def _walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope without descending into nested functions."""
    stack = list(getattr(scope, "body", []))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_process_pool_ctor(call: ast.Call) -> bool:
    func = call.func
    name = func.id if isinstance(func, ast.Name) else \
        func.attr if isinstance(func, ast.Attribute) else None
    return name == "ProcessPoolExecutor"


def _process_pool_names(scope: ast.AST) -> Set[str]:
    """Variables bound to a ``ProcessPoolExecutor`` in this scope."""
    pools: Set[str] = set()
    for node in _walk_scope(scope):
        if isinstance(node, ast.Assign) \
                and isinstance(node.value, ast.Call) \
                and _is_process_pool_ctor(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    pools.add(target.id)
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.context_expr, ast.Call) \
                        and _is_process_pool_ctor(item.context_expr) \
                        and isinstance(item.optional_vars, ast.Name):
                    pools.add(item.optional_vars.id)
    return pools


def _unsafe_reason(node: ast.AST,
                   allow_plain_name: bool = False) -> Optional[str]:
    """Why this payload expression cannot cross a process boundary."""
    if isinstance(node, ast.Lambda):
        return "is a lambda (not picklable)"
    if allow_plain_name and isinstance(node, ast.Name):
        return _name_reason(node.id)
    if isinstance(node, ast.Attribute) and allow_plain_name:
        # A target like self.method is a bound method: pickling drags
        # the whole instance (locks and all) across the boundary.
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            return (f"is the bound method self.{node.attr} (pickles "
                    f"the whole instance)")
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            if sub.id == "self":
                return "captures self (locks, caches and all)"
            reason = _name_reason(sub.id)
            if reason is not None:
                return reason
        if isinstance(sub, ast.Attribute):
            reason = _name_reason(sub.attr)
            if reason is not None:
                return reason
        if isinstance(sub, ast.Lambda):
            return "contains a lambda (not picklable)"
    return None


def _name_reason(name: str) -> Optional[str]:
    lowered = name.lower()
    if any(fragment in lowered for fragment in _UNSAFE_FRAGMENTS):
        return f"captures {name!r} (a live synchronisation/telemetry " \
               f"object)"
    if lowered in _UNSAFE_EXACT:
        return f"captures {name!r} (a live OS resource)"
    return None
