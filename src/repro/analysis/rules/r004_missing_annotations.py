"""R004: public probability-engine functions without type annotations.

The ``repro.core`` / ``repro.prxml`` / ``repro.slca`` packages are the
numeric heart of the reproduction and the target of the mypy strictness
ratchet (pyproject.toml): every *public* function and method there must
annotate all of its parameters and its return type, so the checker can
actually see the float/DistTable plumbing it is asked to verify.

Scope is deliberately limited to those packages — datagen, bench and
CLI glue gain little from forced annotations — and to public names
(no leading underscore; dunders included in the underscore exemption).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List

from repro.analysis.linter import Finding, SourceModule

#: Modules the rule applies to, by path fragment.
SCOPE_RE = re.compile(r"repro/(core|prxml|slca)/")


class MissingAnnotationsRule:
    """Flag un(der)-annotated public functions in core/prxml/slca."""

    rule_id = "R004"
    title = "public function missing type annotations"
    hint = ("annotate every parameter and the return type; these "
            "modules feed the mypy strictness ratchet")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if SCOPE_RE.search(module.path) is None:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            missing = _missing_annotations(node)
            if missing:
                yield module.finding(
                    node, self,
                    f"public function {node.name!r} is missing "
                    f"annotations: {', '.join(missing)}")


def _missing_annotations(node: "ast.FunctionDef | ast.AsyncFunctionDef"
                         ) -> List[str]:
    missing: List[str] = []
    positional = [*node.args.posonlyargs, *node.args.args]
    for index, arg in enumerate(positional):
        if index == 0 and arg.arg in ("self", "cls"):
            continue
        if arg.annotation is None:
            missing.append(f"parameter {arg.arg!r}")
    missing.extend(f"parameter {arg.arg!r}"
                   for arg in node.args.kwonlyargs
                   if arg.annotation is None)
    if node.returns is None:
        missing.append("return type")
    return missing
