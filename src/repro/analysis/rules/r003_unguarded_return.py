"""R003: probability arithmetic returned unguarded from a public API.

A public function that *returns* freshly combined probability mass
(``return p * q + r``) hands rounding drift straight to callers — and
downstream comparisons against 0/1 or pruning thresholds then operate
an ulp outside the unit interval.  Public returns of probability
arithmetic must pass through a guard (``clamp01`` from
:mod:`repro.analysis.numeric`, an explicit ``min``/``max``, or a
validation helper) or carry a suppression explaining why the raw sum is
the contract (e.g. a diagnostic total that must expose drift rather
than hide it).

The rule deliberately looks only at the *top level* of the returned
expression: ``return clamp01(a * b)`` is guarded, ``return a * b`` is
not.  Private helpers (leading underscore) are exempt — the guard
belongs at the public boundary.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import (Finding, SourceModule,
                                   is_probability_named, walk_function_body)

_ARITHMETIC = (ast.Add, ast.Sub, ast.Mult, ast.Div)


class UnguardedProbabilityReturnRule:
    """Flag public returns of raw probability arithmetic."""

    rule_id = "R003"
    title = "unguarded probability arithmetic on public return"
    hint = ("wrap the expression in repro.analysis.numeric.clamp01 (or "
            "min/max/validation), or suppress with a reason when the "
            "raw value is the contract")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            for statement in walk_function_body(node):
                if not isinstance(statement, ast.Return) \
                        or statement.value is None:
                    continue
                value = statement.value
                if isinstance(value, ast.BinOp) \
                        and isinstance(value.op, _ARITHMETIC) \
                        and _mentions_probability(value):
                    yield module.finding(
                        statement, self,
                        f"public function {node.name!r} returns raw "
                        "probability arithmetic "
                        f"{ast.unparse(value)!r} without a clamp/guard")


def _mentions_probability(node: ast.AST) -> bool:
    """Whether any leaf operand of an arithmetic tree is probability-named."""
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, ast.BinOp):
            stack.extend((current.left, current.right))
        elif isinstance(current, ast.UnaryOp):
            stack.append(current.operand)
        elif is_probability_named(current):
            return True
    return False
