"""Static analysis + runtime sanitizer for the probability engines.

Two halves guard the numeric invariants the type system cannot see
(probabilities in [0, 1], MUX mass at most 1, monotone Dewey scans,
sound Property 1-5 bounds):

* the **linter** (:mod:`repro.analysis.linter`,
  :mod:`repro.analysis.rules`) — AST rules R001-R007 with inline
  ``# repro: ignore[R00x]`` suppression and the machine-readable
  ``repro.lint/v1`` report (:mod:`repro.analysis.report`), surfaced as
  the ``repro lint`` CLI command and gated in CI;
* the **sanitizer** (:mod:`repro.analysis.sanitizer`) — an opt-in
  runtime mode (``REPRO_SANITIZE=1`` or ``topk_search(...,
  sanitize=True)``) asserting the same invariants live inside the
  engines, raising :class:`SanitizerError` with trace context.

A third half (:mod:`repro.analysis.concurrency`) guards the *locking*
invariants: rules R008-R012 lint lock discipline (guarded-by
annotations, lock order, blocking under locks, signal and fork
safety), while the opt-in :class:`LockWitness` /
:class:`InstrumentedLock` pair asserts the same discipline at runtime
(``repro check --concurrency`` stresses the service under it).

:mod:`repro.analysis.numeric` holds the shared float-tolerance helpers
(``is_one`` / ``is_zero`` / ``is_close`` / ``clamp01``) the R001 rule
steers probability comparisons through.

Everything is documented in docs/ANALYSIS.md.
"""

from repro.analysis.concurrency import (DEFAULT_LOCK_ORDER,
                                        ConcurrencyWitnessError,
                                        InstrumentedLock, LockWitness,
                                        NULL_WITNESS, NullWitness,
                                        WitnessLike, derive_lock_order,
                                        wrap_lock)
from repro.analysis.linter import (Finding, LintError, LintResult,
                                   lint_paths, lint_source)
from repro.analysis.numeric import (PROB_ATOL, clamp01, is_close, is_one,
                                    is_zero)
from repro.analysis.report import (LINT_SCHEMA_ID, LintReportError,
                                   build_lint_report, validate_lint_report)
from repro.analysis.rules import ALL_RULES, default_rules, select_rules
from repro.analysis.sanitizer import (NULL_SANITIZER, NullSanitizer,
                                      Sanitizer, SanitizerError,
                                      SanitizerLike, sanitize_from_env)

__all__ = [
    "DEFAULT_LOCK_ORDER", "ConcurrencyWitnessError", "InstrumentedLock",
    "LockWitness", "NULL_WITNESS", "NullWitness", "WitnessLike",
    "derive_lock_order", "wrap_lock",
    "Finding", "LintError", "LintResult", "lint_paths", "lint_source",
    "PROB_ATOL", "clamp01", "is_close", "is_one", "is_zero",
    "LINT_SCHEMA_ID", "LintReportError", "build_lint_report",
    "validate_lint_report",
    "ALL_RULES", "default_rules", "select_rules",
    "NULL_SANITIZER", "NullSanitizer", "Sanitizer", "SanitizerError",
    "SanitizerLike", "sanitize_from_env",
]
