"""Shared numeric tolerance helpers for probability values.

Probabilities in this library are ordinary Python floats, and the
bottom-up table computation multiplies and convolves thousands of them:
"exactly one" and "exactly zero" are therefore meaningful only up to
rounding dust.  Bare ``==``/``!=`` on probabilities is forbidden by the
R001 lint rule (see :mod:`repro.analysis.linter`); code that needs the
comparison goes through these helpers instead, so the tolerance is a
single repo-wide decision rather than a per-call-site accident.

The default tolerance is deliberately tight (``1e-12``): genuine
sentinels (an omitted ``prob`` attribute parses to exactly 1.0) compare
exactly, while accumulated arithmetic dust a few ulps away from the
sentinel still matches.  Call sites that compare *derived* quantities
(table masses, bound sums) should pass a looser explicit tolerance.
"""

from __future__ import annotations

import math

#: Absolute tolerance for "is this probability exactly 0/1" tests.
PROB_ATOL: float = 1e-12


def is_close(left: float, right: float, atol: float = PROB_ATOL) -> bool:
    """Whether two probabilities are equal up to absolute tolerance.

    Probabilities live in [0, 1], so an absolute tolerance is the right
    comparison (``math.isclose``'s default relative tolerance breaks
    down near zero, exactly where harvested SLCA masses live).
    """
    return math.isclose(left, right, rel_tol=0.0, abs_tol=atol)


def is_one(value: float, atol: float = PROB_ATOL) -> bool:
    """Whether ``value`` is probability 1 up to tolerance."""
    return math.isclose(value, 1.0, rel_tol=0.0, abs_tol=atol)


def is_zero(value: float, atol: float = PROB_ATOL) -> bool:
    """Whether ``value`` is probability 0 up to tolerance."""
    return math.isclose(value, 0.0, rel_tol=0.0, abs_tol=atol)


def clamp01(value: float) -> float:
    """Clamp a derived probability into ``[0, 1]``.

    Used on public returns whose mathematics guarantee the unit
    interval but whose floating-point evaluation may drift an ulp
    outside it.  This is a pure clamp — genuinely out-of-range values
    indicate a bug and are the runtime sanitizer's job to catch
    (:mod:`repro.analysis.sanitizer`), not this helper's.
    """
    if value < 0.0:
        return 0.0
    if value > 1.0:
        return 1.0
    return value
