"""The AST lock-discipline model behind lint rules R008–R012.

One pass over a module builds, per class, everything the concurrency
rules need:

* **lock discovery** — attributes assigned ``threading.Lock()`` /
  ``RLock()`` / ``Condition()`` / semaphores (or the repo's own
  :class:`~repro.analysis.concurrency.witness.InstrumentedLock`);
* **annotations** — the guarded-by grammar (docs/ANALYSIS.md):

  - ``# repro: guarded-by[_lock]`` on an attribute's ``__init__``
    assignment declares its guarding lock;
  - ``# repro: guarded-by[_lock, writes]`` declares a single-writer
    attribute: writes need the lock, lock-free reads are an accepted
    part of the design (atomic-reference swap, e.g.
    ``QueryService._state``);
  - ``# repro: guarded-by[lockfree]`` opts an attribute out (a
    GIL-atomic idempotent memo, e.g. ``QueryCaches.path_probs``);
  - ``# repro: holds[_lock]`` on a ``def`` line asserts every caller
    already holds the lock (private helpers called under a lock);

* **held-lock tracking** — each method's attribute accesses and calls
  annotated with the set of self-locks held at that point (following
  ``with self._lock:`` nesting, not entering nested ``def``/lambda
  scopes);
* **acquisition order** — every lock acquisition with the locks
  already held, feeding the per-module lock-order graph (R009) and
  :func:`derive_lock_order` (which keeps the runtime witness's
  declared order honest).

The model is deliberately intraprocedural — a held set does not flow
through calls.  Helpers that require a lock say so with ``holds[...]``
and the design keeps cross-class nesting shallow, so the heuristics
stay precise on this codebase.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.analysis.linter import SourceModule

#: Constructor names whose result makes an attribute a lock.
LOCK_FACTORIES: FrozenSet[str] = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
    "InstrumentedLock",
})

#: Methods that mutate their receiver in place: a call
#: ``self.attr.append(...)`` is a *write* of ``attr``.
MUTATOR_METHODS: FrozenSet[str] = frozenset({
    "append", "extend", "insert", "add", "remove", "discard", "pop",
    "popitem", "clear", "update", "setdefault", "move_to_end",
    "appendleft", "rotate", "sort",
})

#: Methods whose body runs before the object is shared: accesses there
#: are exempt from guarding.
CONSTRUCTION_METHODS: FrozenSet[str] = frozenset({
    "__init__", "__new__", "__post_init__",
})

#: The ``guarded-by[lockfree]`` opt-out token.
LOCKFREE = "lockfree"

_GUARDED_BY_RE = re.compile(
    r"#\s*repro:\s*guarded-by\[(?P<body>[A-Za-z0-9_,\s]+)\]")
_HOLDS_RE = re.compile(r"#\s*repro:\s*holds\[(?P<body>[A-Za-z0-9_,\s]+)\]")


@dataclass(frozen=True)
class GuardSpec:
    """How one attribute is guarded."""

    lock: str
    writes_only: bool = False
    declared: bool = True  # False when inferred by the heuristic


@dataclass(frozen=True)
class AttributeAccess:
    """One ``self.<attr>`` touch inside a method body."""

    attr: str
    node: ast.AST
    write: bool
    held: FrozenSet[str]
    method: str


@dataclass(frozen=True)
class Acquisition:
    """One ``with self.<lock>:`` entry, with the locks already held."""

    lock: str
    node: ast.AST
    held_before: Tuple[str, ...]
    method: str


@dataclass
class MethodModel:
    """One method's lock-relevant behaviour."""

    name: str
    node: ast.AST
    holds: FrozenSet[str] = frozenset()
    accesses: List[AttributeAccess] = field(default_factory=list)
    acquisitions: List[Acquisition] = field(default_factory=list)
    calls: List[Tuple[ast.Call, FrozenSet[str]]] = field(
        default_factory=list)


@dataclass
class ClassModel:
    """Everything the concurrency rules need to know about one class."""

    name: str
    node: ast.ClassDef
    locks: Dict[str, str] = field(default_factory=dict)
    declared_guards: Dict[str, GuardSpec] = field(default_factory=dict)
    lockfree: Set[str] = field(default_factory=set)
    methods: List[MethodModel] = field(default_factory=list)

    def guard_map(self) -> Dict[str, GuardSpec]:
        """Declared guards merged with the write-locality heuristic.

        An unannotated attribute is inferred guarded-by ``L`` when
        every write outside construction happens with exactly one
        self-lock ``L`` held.  Attributes never written outside
        construction (immutable config) get no guard; attributes with
        *mixed* locked/unlocked writes get a special
        ``GuardSpec(lock, declared=False)`` so R008 can flag the
        inconsistency at the unlocked write sites.
        """
        guards = dict(self.declared_guards)
        write_locks: Dict[str, Set[str]] = {}
        for method in self.methods:
            if method.name in CONSTRUCTION_METHODS:
                continue
            for access in method.accesses:
                if not access.write or access.attr in guards \
                        or access.attr in self.lockfree \
                        or access.attr in self.locks:
                    continue
                if access.held:
                    write_locks.setdefault(access.attr,
                                           set()).update(access.held)
        for attr, locks in write_locks.items():
            if len(locks) != 1:
                continue
            # Mixed locked/unlocked writes still infer the lock; R008
            # reports the unlocked accesses as inconsistently guarded.
            guards[attr] = GuardSpec(next(iter(locks)), declared=False)
        return guards

    def mixed_attrs(self) -> Set[str]:
        """Attributes written both with and without a lock held."""
        locked: Set[str] = set()
        unlocked: Set[str] = set()
        for method in self.methods:
            if method.name in CONSTRUCTION_METHODS:
                continue
            for access in method.accesses:
                if not access.write or access.attr in self.lockfree \
                        or access.attr in self.locks \
                        or access.attr in self.declared_guards:
                    continue
                (locked if access.held else unlocked).add(access.attr)
        return locked & unlocked


class LockModel:
    """All class models of one module plus the module's order graph."""

    def __init__(self, classes: List[ClassModel]) -> None:
        self.classes = classes

    def order_edges(self) -> List[Tuple[str, str, ast.AST]]:
        """Direct nesting edges ``(outer, inner, at_node)``, names
        qualified ``Class.lock``."""
        edges: List[Tuple[str, str, ast.AST]] = []
        for cls in self.classes:
            for method in cls.methods:
                for acq in method.acquisitions:
                    if not acq.held_before:
                        continue
                    inner = f"{cls.name}.{acq.lock}"
                    for outer_attr in acq.held_before:
                        outer = f"{cls.name}.{outer_attr}"
                        if outer != inner:
                            edges.append((outer, inner, acq.node))
        return edges


def _annotation_on_line(module: SourceModule, lineno: int,
                        pattern: re.Pattern) -> Optional[List[str]]:
    if 1 <= lineno <= len(module.lines):
        match = pattern.search(module.lines[lineno - 1])
        if match is not None:
            return [piece.strip()
                    for piece in match.group("body").split(",")
                    if piece.strip()]
    return None


def _self_attr(node: ast.AST) -> Optional[str]:
    """``attr`` when ``node`` is exactly ``self.<attr>``."""
    if isinstance(node, ast.Attribute) \
            and isinstance(node.value, ast.Name) \
            and node.value.id == "self":
        return node.attr
    return None


def _call_factory(node: ast.AST) -> Optional[str]:
    """The constructor name when ``node`` is ``Name(...)`` or
    ``mod.Name(...)``."""
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
    return None


def _parse_guard_tokens(tokens: List[str]) -> Optional[GuardSpec]:
    if not tokens:
        return None
    if tokens[0] == LOCKFREE:
        return GuardSpec(LOCKFREE)
    writes_only = len(tokens) > 1 and tokens[1] == "writes"
    return GuardSpec(tokens[0], writes_only=writes_only)


class _MethodWalker:
    """Tracks held self-locks through one method body."""

    def __init__(self, model: MethodModel, lock_attrs: Set[str]) -> None:
        self.model = model
        self.lock_attrs = lock_attrs

    def walk(self, body: Iterable[ast.stmt],
             held: Tuple[str, ...]) -> None:
        for stmt in body:
            self._visit(stmt, held)

    def _record(self, attr: str, node: ast.AST, write: bool,
                held: Tuple[str, ...]) -> None:
        if attr in self.lock_attrs:
            return
        self.model.accesses.append(AttributeAccess(
            attr=attr, node=node, write=write,
            held=frozenset(held), method=self.model.name))

    def _mark_write(self, target: ast.AST,
                    held: Tuple[str, ...]) -> None:
        """Record the write a statement performs on ``target``."""
        attr = _self_attr(target)
        if attr is not None:
            self._record(attr, target, True, held)
            return
        if isinstance(target, ast.Subscript):
            base = _self_attr(target.value)
            if base is not None:
                self._record(base, target.value, True, held)
            else:
                self._visit(target.value, held)
            self._visit(target.slice, held)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._mark_write(element, held)
            return
        if isinstance(target, ast.Starred):
            self._mark_write(target.value, held)
            return
        self._visit(target, held)

    def _visit(self, node: ast.AST, held: Tuple[str, ...]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: List[str] = []
            for item in node.items:
                lock = _self_attr(item.context_expr)
                if lock is not None and lock in self.lock_attrs:
                    self.model.acquisitions.append(Acquisition(
                        lock=lock, node=item.context_expr,
                        held_before=held, method=self.model.name))
                    acquired.append(lock)
                else:
                    self._visit(item.context_expr, held)
            inner = held + tuple(lock for lock in acquired
                                 if lock not in held)
            self.walk(node.body, inner)
            return
        if isinstance(node, ast.Assign):
            for target in node.targets:
                self._mark_write(target, held)
            self._visit(node.value, held)
            return
        if isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._mark_write(node.target, held)
                self._visit(node.value, held)
            return
        if isinstance(node, ast.AugAssign):
            self._mark_write(node.target, held)
            self._visit(node.value, held)
            return
        if isinstance(node, ast.Delete):
            for target in node.targets:
                self._mark_write(target, held)
            return
        if isinstance(node, ast.Call):
            self.model.calls.append((node, frozenset(held)))
            func = node.func
            if isinstance(func, ast.Attribute) \
                    and func.attr in MUTATOR_METHODS:
                base = _self_attr(func.value)
                if base is not None:
                    self._record(base, func.value, True, held)
                else:
                    self._visit(func.value, held)
            else:
                self._visit(func, held)
            for arg in node.args:
                self._visit(arg, held)
            for keyword in node.keywords:
                self._visit(keyword.value, held)
            return
        attr = _self_attr(node)
        if attr is not None:
            self._record(attr, node, False, held)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(child, held)


def build_class_models(module: SourceModule) -> LockModel:
    """Build the lock model for every class in ``module``."""
    classes: List[ClassModel] = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ClassDef):
            classes.append(_build_class(module, node))
    return LockModel(classes)


def _build_class(module: SourceModule, node: ast.ClassDef) -> ClassModel:
    cls = ClassModel(name=node.name, node=node)
    functions = [item for item in node.body
                 if isinstance(item, (ast.FunctionDef,
                                      ast.AsyncFunctionDef))]
    # Pass 1: lock attributes and guarded-by annotations (anywhere an
    # attribute is assigned, usually __init__).
    for function in functions:
        for stmt in ast.walk(function):
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(stmt, ast.Assign):
                targets, value = list(stmt.targets), stmt.value
            elif isinstance(stmt, ast.AnnAssign) \
                    and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                attr = _self_attr(target)
                if attr is None:
                    continue
                factory = _call_factory(value) if value is not None \
                    else None
                if factory in LOCK_FACTORIES:
                    cls.locks[attr] = factory
                tokens = _annotation_on_line(
                    module, getattr(stmt, "lineno", 0), _GUARDED_BY_RE)
                if tokens is not None:
                    spec = _parse_guard_tokens(tokens)
                    if spec is not None:
                        if spec.lock == LOCKFREE:
                            cls.lockfree.add(attr)
                        else:
                            cls.declared_guards[attr] = spec
    # Pass 2: per-method access/acquisition walk with held tracking.
    for function in functions:
        holds_tokens = _annotation_on_line(module, function.lineno,
                                           _HOLDS_RE)
        holds = frozenset(holds_tokens or ())
        method = MethodModel(name=function.name, node=function,
                             holds=holds)
        walker = _MethodWalker(method, set(cls.locks))
        walker.walk(function.body, tuple(holds))
        cls.methods.append(method)
    return cls


def derive_lock_order(paths: Iterable[str]) -> List[Tuple[str, str]]:
    """The statically-visible lock-order edges of a set of files.

    Direct ``with``-nesting edges only (names ``Class.lock``); edges
    that pass through a call (e.g. a collector hook invoked under a
    cache lock) are invisible here and must be declared in
    :data:`repro.analysis.concurrency.witness.DEFAULT_LOCK_ORDER` — a
    test asserts the derived set is a subset of the declared one.
    """
    import os

    edges: Set[Tuple[str, str]] = set()
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for base, _dirs, names in os.walk(path):
                files.extend(os.path.join(base, name)
                             for name in names if name.endswith(".py"))
        else:
            files.append(path)
    for path in files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                module = SourceModule(path, handle.read())
        except (OSError, SyntaxError):
            continue
        for outer, inner, _node in build_class_models(
                module).order_edges():
            edges.add((outer, inner))
    return sorted(edges)
