"""Concurrency correctness tooling: static lock model + runtime witness.

Two halves share this package (docs/ANALYSIS.md):

* :mod:`repro.analysis.concurrency.model` — the AST lock-discipline
  model the lint rules R008–R012 consume: per-class lock discovery,
  ``# repro: guarded-by[...]`` / ``# repro: holds[...]`` annotation
  parsing, held-lock-set tracking through ``with self._lock:`` blocks,
  and the cross-class lock-order graph.
* :mod:`repro.analysis.concurrency.witness` — the opt-in runtime
  witness (:class:`LockWitness` / :class:`InstrumentedLock`) that
  checks the statically-derived lock order and guarded-object
  discipline while real threads hammer the service.  The default is
  :data:`NULL_WITNESS`, the repo's usual zero-overhead null object.

The stress harness that drives the witness lives in
:mod:`repro.analysis.concurrency.stress`; it is imported lazily (by
``repro check --concurrency`` and the stress tests) because it pulls
in the service layer.
"""

from repro.analysis.concurrency.model import (ClassModel, LockModel,
                                              MethodModel,
                                              build_class_models,
                                              derive_lock_order)
from repro.analysis.concurrency.witness import (DEFAULT_LOCK_ORDER,
                                                ConcurrencyWitnessError,
                                                InstrumentedLock,
                                                LockWitness, NullWitness,
                                                NULL_WITNESS, WitnessLike,
                                                wrap_lock)

__all__ = [
    "ClassModel",
    "LockModel",
    "MethodModel",
    "build_class_models",
    "derive_lock_order",
    "DEFAULT_LOCK_ORDER",
    "ConcurrencyWitnessError",
    "InstrumentedLock",
    "LockWitness",
    "NullWitness",
    "NULL_WITNESS",
    "WitnessLike",
    "wrap_lock",
]
