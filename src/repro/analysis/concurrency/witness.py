"""The runtime lock witness: dynamic checking of static lock discipline.

The static rules (R008–R012) prove lock discipline about the *code*;
this module watches the same discipline hold at *runtime* while real
threads hammer the service.  It extends the PR-2 sanitizer pattern —
an opt-in checker behind a zero-overhead null object — from
probability arithmetic to locking:

* :class:`InstrumentedLock` wraps a ``threading.Lock``/``RLock`` and
  reports every acquire/release to a witness, by name;
* :class:`LockWitness` keeps a per-thread stack of held locks (with
  the acquisition site), maintains the observed lock-order graph,
  checks every acquisition against the statically-derived order
  (:data:`DEFAULT_LOCK_ORDER` plus everything observed so far), and
  flags same-thread re-acquisition of non-reentrant locks — the exact
  self-deadlock shape R011 warns about in signal handlers;
* ``assert_holding`` lets guarded objects (e.g.
  :class:`repro.index.cache.LRUCache`) verify at their access points
  that the declared guarding lock really is held by the current
  thread, catching unguarded access the moment a refactor introduces
  it;
* :data:`NULL_WITNESS` is the library default: every hook is a pass
  behind an ``enabled`` class attribute, exactly like
  ``NULL_COLLECTOR`` — production code pays one attribute load.

Lock names are hierarchical: ``ClassName._lock`` identifies the
discipline role, an optional ``:suffix`` (``LRUCache._lock:results``)
distinguishes instances.  Order checking works on the base name, so
the three per-service caches share one role in the order graph while
their acquisitions stay individually attributable in dumps.

Only the standard library and :mod:`repro.exceptions` may be imported
here — core modules (``index.cache``, ``obs.recorder``) import this
module, so anything heavier would be an import cycle.
"""

from __future__ import annotations

import threading
import traceback
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.exceptions import ReproError

#: The statically-derived lock order of the service stack: every
#: ``(outer, inner)`` pair that the R009 lock-order analysis finds in
#: the source tree (``derive_lock_order`` in
#: :mod:`repro.analysis.concurrency.model`; a test asserts the two
#: stay in sync).  The witness seeds its order graph with these edges,
#: so an inversion against the *declared* order trips even if the
#: stress run never happens to interleave the two acquisition paths.
DEFAULT_LOCK_ORDER: Tuple[Tuple[str, str], ...] = (
    ("QueryService._reload_lock", "QueryService._stats_lock"),
    ("QueryService._reload_lock", "MetricsCollector._lock"),
    ("QueryService._reload_lock", "FlightRecorder._lock"),
    ("LRUCache._lock", "MetricsCollector._lock"),
)


class ConcurrencyWitnessError(ReproError):
    """The runtime witness observed a lock-discipline violation."""


def base_name(name: str) -> str:
    """The discipline role of a lock name (instance suffix dropped)."""
    return name.split(":", 1)[0]


class LockWitness:
    """Records per-thread held-lock stacks and checks lock discipline.

    Args:
        order: declared ``(outer, inner)`` lock-order edges (base
            names); defaults to :data:`DEFAULT_LOCK_ORDER`.
        strict: raise :class:`ConcurrencyWitnessError` at the point of
            violation (the default — a stress test should fail at the
            guilty acquisition, with its stack).  When False,
            violations only accumulate in :attr:`violations`.
        capture_stacks: record the acquisition stack of every held
            lock so violation messages show both sites.  Costs a
            ``traceback.format_stack`` per acquisition; leave off for
            overhead-sensitive runs.

    The witness itself is thread-safe: per-thread state lives in a
    ``threading.local``; the shared order graph and counters are
    guarded by an internal meta-lock (never held while a client lock
    is being acquired, so the witness cannot deadlock its subject).
    """

    enabled = True

    def __init__(self, order: Optional[Sequence[Tuple[str, str]]] = None,
                 strict: bool = True, capture_stacks: bool = False) -> None:
        self.strict = strict
        self.capture_stacks = capture_stacks
        self._local = threading.local()
        self._meta = threading.Lock()
        # base name -> base names that must come strictly *after* it.
        self._after: Dict[str, Set[str]] = {}
        edges = DEFAULT_LOCK_ORDER if order is None else tuple(order)
        for outer, inner in edges:
            self._after.setdefault(outer, set()).add(inner)
        self._declared = {(outer, inner) for outer, inner in edges}
        self.acquisitions: Dict[str, int] = {}
        self.violations: List[str] = []

    # -- per-thread state --------------------------------------------------

    def _stack(self) -> List[Tuple[str, int, str]]:
        """This thread's held stack: ``(name, depth, acquire_site)``."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def held(self) -> Tuple[str, ...]:
        """Names of the locks the current thread holds, outer first."""
        return tuple(name for name, _, _ in self._stack())

    def holds(self, name: str) -> bool:
        """Whether the current thread holds ``name`` (by base name)."""
        want = base_name(name)
        return any(base_name(held) == want for held, _, _ in self._stack())

    # -- violation plumbing ------------------------------------------------

    def _site(self) -> str:
        if not self.capture_stacks:
            return ""
        return "".join(traceback.format_stack(limit=12)[:-3])

    def _flag(self, message: str, fatal: bool = False) -> None:
        with self._meta:
            self.violations.append(message)
        if fatal or self.strict:
            raise ConcurrencyWitnessError(message)

    def _reachable(self, start: str, goal: str) -> bool:  # repro: holds[_meta]
        """Is there a declared/observed order path ``start -> goal``?"""
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            if node == goal:
                return True
            for nxt in self._after.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    # -- lock hooks (called by InstrumentedLock) ---------------------------

    def before_acquire(self, name: str, reentrant: bool = False) -> None:
        """Check ``name`` may be acquired now; called *before* the real
        acquire so a certain deadlock raises instead of hanging.

        A same-thread re-acquisition of a non-reentrant lock is always
        fatal (the real acquire would self-deadlock, e.g. a signal
        handler re-entering a critical section), regardless of
        ``strict``.
        """
        stack = self._stack()
        mine = base_name(name)
        for held_name, _, site in stack:
            if held_name == name:
                if reentrant:
                    return
                self._flag(
                    f"same-thread re-acquisition of non-reentrant lock "
                    f"{name} (self-deadlock; e.g. a signal handler "
                    f"re-entering a held critical section)"
                    + (f"\nfirst acquired at:\n{site}" if site else ""),
                    fatal=True)
                return
        if not stack:
            return
        inversion: Optional[str] = None
        with self._meta:
            for held_name, _, _ in stack:
                outer = base_name(held_name)
                if outer == mine:
                    continue
                if self._reachable(mine, outer):
                    inversion = (
                        f"lock-order inversion: acquiring {name} while "
                        f"holding {held_name}, but the order "
                        f"{mine} -> {outer} is already "
                        f"declared or was observed (held: "
                        f"{', '.join(h for h, _, _ in stack)})")
                    break
                self._after.setdefault(outer, set()).add(mine)
        if inversion is not None:
            self._flag(inversion)

    def on_acquired(self, name: str, reentrant: bool = False) -> None:
        """Record a successful acquire of ``name`` by this thread."""
        stack = self._stack()
        if reentrant:
            for position, (held_name, depth, site) in enumerate(stack):
                if held_name == name:
                    stack[position] = (held_name, depth + 1, site)
                    return
        stack.append((name, 1, self._site()))
        with self._meta:
            self.acquisitions[name] = self.acquisitions.get(name, 0) + 1

    def on_release(self, name: str) -> None:
        """Record a release of ``name`` by this thread."""
        stack = self._stack()
        for position in range(len(stack) - 1, -1, -1):
            held_name, depth, site = stack[position]
            if held_name == name:
                if depth > 1:
                    stack[position] = (held_name, depth - 1, site)
                else:
                    del stack[position]
                return
        self._flag(f"release of {name}, which this thread does not hold")

    # -- guarded-object hook -----------------------------------------------

    def assert_holding(self, name: str, what: str = "") -> None:
        """Fail unless the current thread holds lock ``name``.

        Guarded objects call this at their access points (e.g.
        ``LRUCache`` before touching ``_data``), so an access that a
        refactor moved out of its ``with self._lock:`` block trips the
        witness the first time any stress thread runs it.
        """
        if not self.holds(name):
            held = self.held()
            self._flag(
                f"unguarded access: {what or name} touched without "
                f"holding {name} (thread "
                f"{threading.current_thread().name} holds: "
                f"{', '.join(held) if held else 'no locks'})")

    # -- reporting ---------------------------------------------------------

    def order_edges(self) -> List[Tuple[str, str]]:
        """Every ``(outer, inner)`` edge declared or observed so far."""
        with self._meta:
            return sorted((outer, inner)
                          for outer, inners in self._after.items()
                          for inner in inners)

    def summary(self) -> Dict[str, object]:
        """Plain-dict report for stress harness output."""
        with self._meta:
            acquisitions = dict(sorted(self.acquisitions.items()))
            violations = list(self.violations)
        return {
            "acquisitions": acquisitions,
            "total_acquisitions": sum(acquisitions.values()),
            "order_edges": [f"{outer} -> {inner}"
                            for outer, inner in self.order_edges()],
            "violations": violations,
        }


class NullWitness:
    """The do-nothing witness: the default on every locking path."""

    enabled = False

    __slots__ = ()

    def before_acquire(self, name: str, reentrant: bool = False) -> None:
        pass

    def on_acquired(self, name: str, reentrant: bool = False) -> None:
        pass

    def on_release(self, name: str) -> None:
        pass

    def assert_holding(self, name: str, what: str = "") -> None:
        pass

    def holds(self, name: str) -> bool:
        return True

    def held(self) -> Tuple[str, ...]:
        return ()

    def summary(self) -> Dict[str, object]:
        return {}


#: Shared no-op instance; lock-owning classes default to this.
NULL_WITNESS = NullWitness()

#: What witness-aware signatures accept: a live witness or the no-op.
WitnessLike = Union[LockWitness, NullWitness]

_RLOCK_TYPES = (type(threading.RLock()),)


class InstrumentedLock:
    """A named lock that reports acquire/release to a witness.

    Drop-in for the ``threading.Lock``/``RLock`` subset the codebase
    uses (context manager plus explicit ``acquire``/``release``).
    Constructed only when a witness is attached — the production path
    keeps plain ``threading.Lock`` objects and pays nothing.

    Args:
        name: hierarchical lock name (``ClassName._lock`` or
            ``ClassName._lock:instance``).
        witness: where acquire/release events go.
        inner: the real lock to wrap; a fresh ``threading.Lock`` by
            default.  Reentrancy is detected from the inner lock's
            type so an ``RLock`` keeps its semantics under the witness.
    """

    def __init__(self, name: str, witness: WitnessLike = NULL_WITNESS,
                 inner: Optional[object] = None) -> None:
        self.name = name
        self.witness = witness
        self._inner = threading.Lock() if inner is None else inner
        self.reentrant = isinstance(self._inner, _RLOCK_TYPES)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if self.witness.enabled:
            self.witness.before_acquire(self.name, self.reentrant)
        acquired = self._inner.acquire(blocking, timeout)  # type: ignore[attr-defined]
        if acquired and self.witness.enabled:
            self.witness.on_acquired(self.name, self.reentrant)
        return bool(acquired)

    def release(self) -> None:
        self._inner.release()  # type: ignore[attr-defined]
        if self.witness.enabled:
            self.witness.on_release(self.name)

    def __enter__(self) -> "InstrumentedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"InstrumentedLock({self.name!r}, "
                f"reentrant={self.reentrant})")


def wrap_lock(owner: object, attribute: str, name: str,
              witness: WitnessLike) -> None:
    """Replace ``owner.<attribute>`` with an instrumented wrapper.

    The escape hatch for objects constructed before the witness exists
    (a shared :class:`~repro.obs.metrics.MetricsCollector`, a
    :class:`~repro.obs.recorder.FlightRecorder`): the existing lock
    becomes the wrapper's inner lock, preserving reentrancy, and every
    later acquisition is witnessed.  Only safe while no thread holds
    the lock (call it during setup).
    """
    inner = getattr(owner, attribute)
    if isinstance(inner, InstrumentedLock):  # already wrapped
        return
    setattr(owner, attribute, InstrumentedLock(name, witness, inner))
