"""Deterministic concurrency stress harness for :class:`QueryService`.

The static rules (R008-R012) prove lock *discipline*; this module
proves lock *behaviour*: many threads hammer one live service with
searches, batches, stats reads, hot reloads and (optionally) SIGUSR2
flight dumps while every lock in the system is wrapped in an
:class:`~repro.analysis.concurrency.witness.InstrumentedLock`
reporting to one shared :class:`LockWitness`.  Any acquisition that
inverts the declared lock order, any unguarded touch of a registered
guarded object, and any answer that drifts from the serially-computed
oracle fails the run.

Determinism: every thread gets its own seeded RNG, the query set and
its expected answers are computed serially before the storm, and all
threads leave a barrier together.  Thread interleaving itself is of
course not reproducible — the *checks* are what make failures crisp.

Shared by ``tests/test_concurrency_stress.py`` and
``repro check --concurrency`` (the CI gate).  Service imports are
lazy so ``repro.analysis.concurrency`` stays importable from the
low-level modules (``index.cache``, ``obs``) that the service itself
builds on.
"""

from __future__ import annotations

import random
import signal as _signal
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.concurrency.witness import (DEFAULT_LOCK_ORDER,
                                                LockWitness, wrap_lock)

#: Default worker-thread count (reloader excluded).
DEFAULT_THREADS = 6

#: Default operations per worker thread.
DEFAULT_ITERATIONS = 40

#: Hard per-phase timeout: a stress run that has not finished after
#: this many seconds is reported as hung rather than waited on forever.
JOIN_TIMEOUT_S = 120.0

_Answer = Tuple[str, float]


def _canonical(outcome: Any) -> List[_Answer]:
    """A search outcome reduced to an order-sensitive comparable form."""
    return [(str(result.code), round(result.probability, 9))
            for result in outcome.results]


def _sample_queries(service: Any, seed: int,
                    max_queries: int = 8) -> List[List[str]]:
    """Deterministic keyword queries drawn from the served index.

    The most frequent terms (ties broken lexicographically) become
    single-term queries plus adjacent two-term conjunctions, so the
    set exercises both the single-posting path and the multi-keyword
    SLCA merge regardless of which fixture database is loaded.
    """
    index = service._index
    terms = sorted(index.vocabulary(),
                   key=lambda t: (-index.document_frequency(t), t))
    terms = terms[:max_queries]
    if not terms:
        return []
    queries: List[List[str]] = [[t] for t in terms[:max_queries // 2]]
    for i in range(min(max_queries - len(queries), len(terms) - 1)):
        queries.append([terms[i], terms[i + 1]])
    rng = random.Random(seed)
    rng.shuffle(queries)
    return queries


def run_stress(source: Any,
               threads: int = DEFAULT_THREADS,
               iterations: int = DEFAULT_ITERATIONS,
               k: int = 5,
               seed: int = 673,
               reload_every: int = 7,
               dump_dir: Optional[str] = None,
               witness: Optional[LockWitness] = None) -> Dict[str, Any]:
    """Hammer one :class:`QueryService` from many threads under the
    runtime witness and return a verdict summary.

    Args:
        source: anything :class:`QueryService` accepts (database
            directory, p-document, parsed database).
        threads: concurrent worker threads.
        iterations: operations per worker.
        k: answers requested per query.
        seed: base RNG seed; worker ``i`` uses ``seed * 1000 + i``.
        reload_every: a worker triggers a hot reload every this many
            operations (0 disables reloads).
        dump_dir: when set (and running on the main thread), SIGUSR2
            is registered via :func:`safe_signal` and raised twice
            mid-storm so flight dumps race the workers.
        witness: supply a pre-configured witness; by default a strict
            :class:`LockWitness` seeded with ``DEFAULT_LOCK_ORDER``.

    Returns:
        dict with ``ok`` (bool verdict), ``errors`` (answer drift,
        exceptions, hangs), ``ops`` counters, ``witness`` summary and
        the service's final cache/storage stats.
    """
    from repro.obs.metrics import MetricsCollector
    from repro.obs.recorder import FlightRecorder
    from repro.service.service import QueryService
    from repro.service.signals import on_main_thread, safe_signal

    if witness is None:
        witness = LockWitness(order=DEFAULT_LOCK_ORDER)
    collector = MetricsCollector()
    wrap_lock(collector, "_lock", "MetricsCollector._lock", witness)
    recorder = FlightRecorder(capacity=256)
    wrap_lock(recorder, "_lock", "FlightRecorder._lock", witness)
    service = QueryService(source, cache_size=64, collector=collector,
                           recorder=recorder, witness=witness)

    queries = _sample_queries(service, seed)
    expected: Dict[Tuple[str, ...], List[_Answer]] = {}
    for query in queries:
        expected[tuple(query)] = _canonical(service.search(query, k=k))

    errors: List[str] = []
    ops = {"searches": 0, "batches": 0, "reloads": 0,
           "stat_reads": 0, "dumps": 0}
    ops_lock = threading.Lock()
    start = threading.Barrier(threads + 1)

    def bump(name: str) -> None:
        with ops_lock:
            ops[name] += 1

    def fail(message: str) -> None:
        with ops_lock:
            errors.append(message)

    def worker(wid: int) -> None:
        rng = random.Random(seed * 1000 + wid)
        try:
            start.wait(timeout=30)
        except threading.BrokenBarrierError:
            fail(f"worker {wid}: start barrier broken")
            return
        for step in range(iterations):
            query = queries[rng.randrange(len(queries))]
            try:
                if reload_every and step % reload_every == reload_every - 1:
                    service.reload(source=source)
                    bump("reloads")
                    continue
                roll = rng.random()
                if roll < 0.6:
                    got = _canonical(service.search(query, k=k))
                    if got != expected[tuple(query)]:
                        fail(f"worker {wid}: answer drift for "
                             f"{query}: {got!r} != "
                             f"{expected[tuple(query)]!r}")
                    bump("searches")
                elif roll < 0.85:
                    sample = [queries[rng.randrange(len(queries))]
                              for _ in range(3)]
                    batch = service.batch_search(sample, k=k,
                                                 executor="thread",
                                                 workers=2)
                    if len(batch.outcomes) != len(sample):
                        fail(f"worker {wid}: batch returned "
                             f"{len(batch.outcomes)} outcomes for "
                             f"{len(sample)} queries")
                    bump("batches")
                else:
                    service.cache_stats()
                    service.storage_stats()
                    bump("stat_reads")
            except Exception as error:  # noqa: BLE001 - verdict capture
                fail(f"worker {wid} step {step}: "
                     f"{type(error).__name__}: {error}")
                return

    pool = [threading.Thread(target=worker, args=(wid,),
                             name=f"stress-{wid}", daemon=True)
            for wid in range(threads)]

    restore = lambda: None  # noqa: E731 - trivial no-op default
    dumps_wanted = (dump_dir is not None and on_main_thread()
                    and hasattr(_signal, "SIGUSR2"))
    if dumps_wanted:
        def handle(signum: int, frame: Any) -> None:
            # Reentrant by construction: FlightRecorder holds an RLock
            # (the R011 worked example in docs/ANALYSIS.md), so dumping
            # from a handler that interrupted a record() is safe.
            recorder.dump(dump_dir, "stress-sigusr2")
            bump("dumps")
        restore = safe_signal(_signal.SIGUSR2, handle,
                              "stress SIGUSR2 dump")

    try:
        for thread in pool:
            thread.start()
        start.wait(timeout=30)
        if dumps_wanted:
            # raise_signal delivers on this (main) thread at the next
            # bytecode boundary — deterministic, no kill() racing.
            _signal.raise_signal(_signal.SIGUSR2)
        for thread in pool:
            thread.join(timeout=JOIN_TIMEOUT_S)
        if dumps_wanted:
            _signal.raise_signal(_signal.SIGUSR2)
        hung = [thread.name for thread in pool if thread.is_alive()]
        if hung:
            fail(f"threads still alive after {JOIN_TIMEOUT_S:.0f}s: "
                 f"{hung} (likely deadlock; witness order edges: "
                 f"{witness.summary()['order_edges']})")
    finally:
        restore()

    summary: Dict[str, Any] = {
        "queries": len(queries),
        "ops": dict(ops),
        "errors": list(errors),
        "witness": witness.summary(),
        "cache_stats": service.cache_stats(),
        "reloads": service.storage_stats().get("reloads", {}),
    }
    summary["ok"] = not errors and not witness.violations
    return summary
