"""AST-based lint framework with repo-specific correctness rules.

The value of this reproduction rests on numeric invariants the type
system cannot see — probabilities in [0, 1], MUX branch sums at most 1,
monotone Dewey scans, sound pruning bounds.  The linter encodes the
*static* half of guarding them: each rule in :mod:`repro.analysis.rules`
walks a module's AST and emits structured :class:`Finding` objects
(file, line, rule id, message, fix hint).

Suppression
-----------

A finding is suppressed by a comment on the same line as the flagged
node::

    if root.edge_prob != 1.0:  # repro: ignore[R001] exact sentinel

``# repro: ignore[R001,R003]`` suppresses several rules;
``# repro: ignore`` (no bracket) suppresses every rule on that line.
Suppressed findings are retained (marked ``suppressed=True``) so
reports can count them — they just do not fail the build.

Entry points: :func:`lint_source` for in-memory snippets (tests),
:func:`lint_paths` for files and directory trees (the ``repro lint``
CLI).  The JSON report shape lives in :mod:`repro.analysis.report`.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import ReproError

#: Rule id reserved for files the linter cannot parse at all.
PARSE_ERROR_RULE = "R000"

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?")


class LintError(ReproError):
    """A lint run could not be performed (bad path, unknown rule id)."""


@dataclass(frozen=True)
class Finding:
    """One structured lint finding."""

    file: str
    line: int
    col: int
    rule: str
    message: str
    hint: str = ""
    suppressed: bool = False

    def render(self) -> str:
        """The conventional one-line ``path:line:col ID message`` form."""
        text = f"{self.file}:{self.line}:{self.col} {self.rule} {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        if self.suppressed:
            text += " [suppressed]"
        return text


class SourceModule:
    """One parsed module handed to every rule.

    Attributes:
        path: the (forward-slash normalised) path findings report.
        source: raw module text.
        tree: the parsed :class:`ast.Module`.
        lines: source split into lines (1-indexed via ``line - 1``).
        suppressions: ``line -> set of rule ids`` (``{"*"}`` for a
            blanket ``# repro: ignore``).
    """

    def __init__(self, path: str, source: str) -> None:
        self.path = path.replace(os.sep, "/")
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self.lines = source.splitlines()
        self.suppressions = _parse_suppressions(self.lines)

    def finding(self, node: ast.AST, rule: "object", message: str) -> Finding:
        """Build a :class:`Finding` for ``node``, applying suppression."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        rule_id = rule.rule_id  # type: ignore[attr-defined]
        hint = rule.hint  # type: ignore[attr-defined]
        allowed = self.suppressions.get(line, ())
        suppressed = "*" in allowed or rule_id in allowed
        return Finding(file=self.path, line=line, col=col, rule=rule_id,
                       message=message, hint=hint, suppressed=suppressed)


def _parse_suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Map line numbers to the rule ids suppressed on them."""
    table: Dict[int, Set[str]] = {}
    for number, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            table[number] = {"*"}
        else:
            table[number] = {piece.strip().upper()
                             for piece in rules.split(",") if piece.strip()}
    return table


@dataclass
class LintResult:
    """Outcome of one lint run over any number of files."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def clean(self) -> bool:
        """Whether no *active* (unsuppressed) finding remains."""
        return not self.findings

    def by_rule(self) -> Dict[str, int]:
        """Active finding counts keyed by rule id."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def render_lines(self) -> List[str]:
        """Human-readable report lines (findings, then the summary)."""
        lines = [finding.render() for finding in self.findings]
        lines.append(
            f"{len(self.findings)} finding(s), "
            f"{len(self.suppressed)} suppressed, "
            f"{self.files_scanned} file(s) scanned")
        return lines


def lint_source(source: str, path: str = "<string>",
                rules: Optional[Sequence[object]] = None) -> LintResult:
    """Lint one in-memory module; the workhorse behind :func:`lint_paths`."""
    result = LintResult(files_scanned=1)
    _lint_into(result, path, source, _resolve_rules(rules))
    return result


def lint_paths(paths: Iterable[str],
               rules: Optional[Sequence[object]] = None) -> LintResult:
    """Lint every ``.py`` file in ``paths`` (files or directory trees).

    Raises:
        LintError: when a path does not exist.
    """
    chosen = _resolve_rules(rules)
    result = LintResult()
    for path in _python_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as error:
            raise LintError(f"cannot read {path}: {error}") from error
        result.files_scanned += 1
        _lint_into(result, path, source, chosen)
    result.findings.sort(key=lambda f: (f.file, f.line, f.col, f.rule))
    result.suppressed.sort(key=lambda f: (f.file, f.line, f.col, f.rule))
    return result


def _lint_into(result: LintResult, path: str, source: str,
               rules: Sequence[object]) -> None:
    try:
        module = SourceModule(path, source)
    except SyntaxError as error:
        result.findings.append(Finding(
            file=path.replace(os.sep, "/"),
            line=error.lineno or 1, col=(error.offset or 0) + 1,
            rule=PARSE_ERROR_RULE,
            message=f"file cannot be parsed: {error.msg}",
            hint="fix the syntax error; R000 cannot be suppressed"))
        return
    for rule in rules:
        for finding in rule.check(module):  # type: ignore[attr-defined]
            if finding.suppressed:
                result.suppressed.append(finding)
            else:
                result.findings.append(finding)


def _python_files(paths: Iterable[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for base, _dirs, names in os.walk(path):
                files.extend(os.path.join(base, name)
                             for name in sorted(names)
                             if name.endswith(".py"))
        else:
            raise LintError(f"no such file or directory: {path}")
    return sorted(files)


def _resolve_rules(rules: Optional[Sequence[object]]) -> Sequence[object]:
    if rules is not None:
        return rules
    from repro.analysis.rules import default_rules
    return default_rules()


# -- shared helpers for the rule implementations ----------------------------

#: Identifier fragments that mark an expression as probability-valued.
PROBABILITY_TOKENS: Tuple[str, ...] = (
    "prob", "probabilit", "lost", "residue", "marginal", "mass", "lambda")

_PROB_NAME_RE = re.compile("|".join(PROBABILITY_TOKENS))


def expression_name(node: ast.AST) -> Optional[str]:
    """The rightmost identifier of a name-like expression chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        return expression_name(node.value)
    if isinstance(node, ast.Call):
        return expression_name(node.func)
    return None


def is_probability_named(node: ast.AST) -> bool:
    """Heuristic: does this expression's name say it holds a probability?"""
    name = expression_name(node)
    return name is not None and _PROB_NAME_RE.search(name.lower()) is not None


def walk_function_body(function: ast.AST) -> Iterable[ast.AST]:
    """Walk a function's own statements, not entering nested scopes."""
    stack = list(getattr(function, "body", []))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))
