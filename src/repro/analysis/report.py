"""The lint JSON report: schema, construction, validation.

``repro lint PATHS --format json`` emits one machine-readable report
per run; CI validates a freshly emitted report against this module
before gating on the finding count.  The shape is versioned by the
``schema`` field — ``repro.lint/v1`` — and mirrors the conventions of
the metrics report (:mod:`repro.obs.report`, ``repro.metrics/v1``).

Top-level shape (``repro.lint/v1``)::

    {
      "schema": "repro.lint/v1",
      "paths": ["src/repro"],
      "files_scanned": int,
      "rules": [{"id": "R001", "title": str, "hint": str}],
      "findings": [{"file": str, "line": int, "col": int,
                    "rule": str, "message": str, "hint": str}],
      "suppressed": [ ...same shape... ],
      "summary": {"total": int, "suppressed": int,
                  "by_rule": {"R001": int, ...}}
    }

``findings`` holds only *active* findings; a clean tree reports an
empty list and ``summary.total == 0`` (the CI gate).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.analysis.linter import Finding, LintResult
from repro.exceptions import ReproError

#: Version tag written into (and required from) every lint report.
LINT_SCHEMA_ID = "repro.lint/v1"

#: Keys every report must carry.
REQUIRED_KEYS = ("schema", "paths", "files_scanned", "rules", "findings",
                 "suppressed", "summary")

#: Keys every serialised finding must carry.
FINDING_KEYS = ("file", "line", "col", "rule", "message", "hint")


class LintReportError(ReproError):
    """A lint report does not conform to the documented schema."""


def build_lint_report(result: LintResult, paths: Sequence[str],
                      rules: Iterable[object]) -> Dict[str, object]:
    """Assemble the ``repro.lint/v1`` report for one lint run."""
    return {
        "schema": LINT_SCHEMA_ID,
        "paths": [str(path) for path in paths],
        "files_scanned": result.files_scanned,
        "rules": [{"id": rule.rule_id,  # type: ignore[attr-defined]
                   "title": rule.title,  # type: ignore[attr-defined]
                   "hint": rule.hint}  # type: ignore[attr-defined]
                  for rule in rules],
        "findings": [_finding_dict(finding) for finding in result.findings],
        "suppressed": [_finding_dict(finding)
                       for finding in result.suppressed],
        "summary": {
            "total": len(result.findings),
            "suppressed": len(result.suppressed),
            "by_rule": result.by_rule(),
        },
    }


def _finding_dict(finding: Finding) -> Dict[str, object]:
    return {"file": finding.file, "line": finding.line, "col": finding.col,
            "rule": finding.rule, "message": finding.message,
            "hint": finding.hint}


def validate_lint_report(report: object) -> Dict[str, object]:
    """Check a parsed report against the v1 schema.

    Returns the report (for chaining) or raises :class:`LintReportError`
    naming the first violation.  Deliberately dependency-free, like the
    metrics validator it mirrors — CI runs it against the report the
    lint job just emitted.
    """
    if not isinstance(report, dict):
        raise LintReportError(
            f"report must be an object, got {type(report).__name__}")
    for key in REQUIRED_KEYS:
        if key not in report:
            raise LintReportError(f"report is missing required key {key!r}")
    if report["schema"] != LINT_SCHEMA_ID:
        raise LintReportError(f"unknown schema {report['schema']!r}; "
                              f"expected {LINT_SCHEMA_ID!r}")
    if not isinstance(report["paths"], list) \
            or not all(isinstance(p, str) for p in report["paths"]):
        raise LintReportError("paths must be a list of strings")
    if not isinstance(report["files_scanned"], int) \
            or isinstance(report["files_scanned"], bool):
        raise LintReportError("files_scanned must be an integer")

    rules = report["rules"]
    if not isinstance(rules, list):
        raise LintReportError("rules must be a list")
    for position, rule in enumerate(rules):
        if not isinstance(rule, dict) \
                or not isinstance(rule.get("id"), str) \
                or not isinstance(rule.get("title"), str):
            raise LintReportError(
                f"rules[{position}] must be an object with string "
                "'id' and 'title'")

    for block in ("findings", "suppressed"):
        findings = report[block]
        if not isinstance(findings, list):
            raise LintReportError(f"{block} must be a list")
        for position, finding in enumerate(findings):
            _validate_finding(finding, f"{block}[{position}]")

    summary = report["summary"]
    if not isinstance(summary, dict):
        raise LintReportError("summary must be an object")
    for key in ("total", "suppressed"):
        if not isinstance(summary.get(key), int) \
                or isinstance(summary.get(key), bool):
            raise LintReportError(f"summary.{key} must be an integer")
    by_rule = summary.get("by_rule")
    if not isinstance(by_rule, dict) \
            or not all(isinstance(count, int) for count in by_rule.values()):
        raise LintReportError(
            "summary.by_rule must map rule ids to integer counts")
    if summary["total"] != len(report["findings"]):
        raise LintReportError(
            f"summary.total {summary['total']} does not match "
            f"{len(report['findings'])} findings")
    if sum(by_rule.values()) != summary["total"]:
        raise LintReportError(
            "summary.by_rule counts do not sum to summary.total")
    return report


def _validate_finding(finding: object, where: str) -> None:
    if not isinstance(finding, dict):
        raise LintReportError(f"{where} must be an object")
    for key in FINDING_KEYS:
        if key not in finding:
            raise LintReportError(f"{where} is missing key {key!r}")
    for key in ("file", "rule", "message", "hint"):
        if not isinstance(finding[key], str):
            raise LintReportError(f"{where}.{key} must be a string")
    for key in ("line", "col"):
        if not isinstance(finding[key], int) \
                or isinstance(finding[key], bool):
            raise LintReportError(f"{where}.{key} must be an integer")
