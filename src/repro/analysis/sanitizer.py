"""Runtime invariant sanitizer — the dynamic half of ``repro.analysis``.

An opt-in, ASan-style mode that wraps the query engines and asserts the
paper's numeric invariants *live*, at the moment they can break:

* every probability the engines handle stays in ``[0, 1]`` (± epsilon);
* every finalised keyword-distribution table is a genuine probability
  distribution — entries plus excluded mass sum to 1 (Section III-B);
* MUX children's edge probabilities never exceed total mass 1 (Eq. 8);
* the document-order scan sees strictly increasing Dewey codes;
* the top-k heap keeps its heap invariant and never exceeds ``k``;
* every EagerTopK Property 1–5 upper bound dominates the exact PrStack
  probability (checked post-hoc on small inputs, Section IV-B).

Enable it with ``REPRO_SANITIZE=1`` in the environment or
``topk_search(..., sanitize=True)``.  Violations raise
:class:`SanitizerError` carrying the tail of the active
:mod:`repro.obs` trace (when the query runs with tracing), so a failed
invariant arrives with the narrative that led to it.

Like the metrics layer, the default is a no-op: engines hold a
:data:`NULL_SANITIZER` whose ``enabled`` flag guards every hook, so an
unsanitized query pays one attribute test per hook point.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.exceptions import ReproError
from repro.obs.metrics import NULL_COLLECTOR

#: Default tolerance for mass/bound checks (looser than
#: :data:`repro.analysis.numeric.PROB_ATOL`: these compare *derived*
#: sums over thousands of float operations, not sentinels).
DEFAULT_EPSILON = 1e-6

#: Above this many match entries the post-hoc exact bound cross-check
#: is skipped — it re-runs the whole query through PrStack.
EXACT_CHECK_MAX_ENTRIES = 512


class SanitizerError(ReproError):
    """A paper invariant was violated at runtime (sanitize mode)."""


class NullSanitizer:
    """The do-nothing sanitizer: the default on every query path."""

    enabled = False
    epsilon = 0.0
    checks = 0

    __slots__ = ()

    def check_probability(self, value: float, what: str) -> None:
        pass

    def check_table(self, table: Any, what: str) -> None:
        pass

    def check_mux_mass(self, total: float, what: str) -> None:
        pass

    def check_order(self, previous: Any, current: Any) -> None:
        pass

    def check_emission(self, code: Any, probability: float,
                       path_prob: float) -> None:
        pass

    def check_heap(self, entries: Any, best: Any, k: int) -> None:
        pass

    def record_bound(self, code: Any, path_bound: float,
                     node_bound: float) -> None:
        pass

    def verify_bounds(self, exact: Mapping[Any, float]) -> None:
        pass

    def summary(self) -> Dict[str, object]:
        return {}


#: Shared no-op instance; engines default their ``sanitizer`` to this.
NULL_SANITIZER = NullSanitizer()


class Sanitizer:
    """Live invariant checker threaded through one (or more) queries.

    Args:
        epsilon: absolute tolerance for mass and bound comparisons.
        collector: the query's metrics collector; when it carries a
            :class:`repro.obs.TraceRecorder`, violation messages quote
            the last few trace events as context.
    """

    enabled = True

    __slots__ = ("epsilon", "collector", "checks", "bounds_recorded")

    def __init__(self, epsilon: float = DEFAULT_EPSILON,
                 collector: Any = NULL_COLLECTOR) -> None:
        if epsilon < 0.0:
            raise ReproError(f"epsilon must be >= 0, got {epsilon!r}")
        self.epsilon = epsilon
        self.collector = collector
        self.checks = 0
        #: ``(code, path_bound, node_bound)`` per bound evaluation,
        #: consumed by :meth:`verify_bounds` after the search.
        self.bounds_recorded: List[Tuple[Any, float, float]] = []

    # -- invariant checks --------------------------------------------------

    def check_probability(self, value: float, what: str) -> None:
        """Assert one probability lies in ``[0, 1]`` (± epsilon)."""
        self.checks += 1
        if not (-self.epsilon <= value <= 1.0 + self.epsilon):
            self._fail(f"{what}: probability {value!r} outside [0, 1]")

    def check_table(self, table: Any, what: str) -> None:
        """Assert a finalised :class:`DistTable` is a distribution.

        Every retained mask probability and the excluded (``lost``)
        mass must lie in [0, 1], and together they must sum to 1 — the
        Section III-B invariant "entry + lost mass always sums to 1".
        """
        self.checks += 1
        for mask, probability in table.masks.items():
            if not (-self.epsilon <= probability <= 1.0 + self.epsilon):
                self._fail(f"{what}: mask {mask:b} probability "
                           f"{probability!r} outside [0, 1]")
        if not (-self.epsilon <= table.lost <= 1.0 + self.epsilon):
            self._fail(f"{what}: lost mass {table.lost!r} outside [0, 1]")
        total = sum(table.masks.values()) + table.lost
        if abs(total - 1.0) > self.epsilon:
            self._fail(f"{what}: table mass {total!r} != 1 "
                       f"(masks={len(table.masks)}, lost={table.lost!r})")

    def check_mux_mass(self, total: float, what: str) -> None:
        """Assert merged MUX edge probabilities sum to at most 1 (Eq. 8)."""
        self.checks += 1
        if total > 1.0 + self.epsilon:
            self._fail(f"{what}: MUX children probabilities sum to "
                       f"{total!r} > 1")
        if total < -self.epsilon:
            self._fail(f"{what}: negative MUX mass {total!r}")

    def check_order(self, previous: Any, current: Any) -> None:
        """Assert the scan's Dewey codes are strictly increasing."""
        self.checks += 1
        if previous is not None \
                and current.positions <= previous.positions:
            self._fail(f"document-order violation in scan: {current} "
                       f"arrived after {previous}")

    def check_emission(self, code: Any, probability: float,
                       path_prob: float) -> None:
        """Assert an emitted SLCA result respects its path probability.

        ``Pr_slca(v) = Pr(path root->v) * Pr_local`` with a local factor
        in [0, 1], so the global result can never exceed the path
        probability (nor 1).
        """
        self.checks += 1
        if not (-self.epsilon <= probability <= 1.0 + self.epsilon):
            self._fail(f"emitted probability {probability!r} for {code} "
                       "outside [0, 1]")
        if probability > path_prob + self.epsilon:
            self._fail(f"emitted probability {probability!r} for {code} "
                       f"exceeds its path probability {path_prob!r}")

    def check_heap(self, entries: Any, best: Mapping[Any, float],
                   k: int) -> None:
        """Assert the top-k heap invariant and its size bound."""
        self.checks += 1
        if len(best) > k:
            self._fail(f"top-k heap holds {len(best)} results for k={k}")
        for index in range(1, len(entries)):
            parent = (index - 1) // 2
            if entries[index] < entries[parent]:
                self._fail(
                    "top-k heap invariant broken at index "
                    f"{index}: child orders before parent")
        for code, probability in best.items():
            if not (-self.epsilon <= probability <= 1.0 + self.epsilon):
                self._fail(f"heap entry {code} probability "
                           f"{probability!r} outside [0, 1]")

    # -- Eager bound bookkeeping (Properties 1-5) --------------------------

    def record_bound(self, code: Any, path_bound: float,
                     node_bound: float) -> None:
        """Record one candidate bound evaluation, sanity-checking the
        algebraic relations that hold unconditionally."""
        self.checks += 1
        if node_bound > path_bound + self.epsilon:
            self._fail(f"candidate {code}: node bound {node_bound!r} "
                       f"exceeds its path bound {path_bound!r}")
        if node_bound < -self.epsilon or path_bound > 1.0 + self.epsilon:
            self._fail(f"candidate {code}: bounds ({path_bound!r}, "
                       f"{node_bound!r}) outside [0, 1]")
        self.bounds_recorded.append((code, path_bound, node_bound))

    def verify_bounds(self, exact: Mapping[Any, float]) -> None:
        """Assert every recorded Property 1-5 bound dominates the truth.

        ``exact`` maps Dewey codes to exact SLCA probabilities (from an
        exhaustive PrStack run).  Soundness of the pruning machinery
        (:mod:`repro.core.bounds`) requires, for every candidate ``v``
        at every evaluation time: ``node_bound >= Pr_slca(v)`` and
        ``path_bound >= sum of Pr_slca over the path root -> v``.
        """
        for code, path_bound, node_bound in self.bounds_recorded:
            self.checks += 1
            truth = exact.get(code, 0.0)
            if node_bound + self.epsilon < truth:
                self._fail(
                    f"candidate {code}: node bound {node_bound!r} below "
                    f"exact SLCA probability {truth!r} "
                    "(Properties 4-5 unsound)")
            path_truth = sum(exact.get(code.prefix(length), 0.0)
                             for length in range(1, len(code) + 1))
            if path_bound + self.epsilon < path_truth:
                self._fail(
                    f"candidate {code}: path bound {path_bound!r} below "
                    f"exact path mass {path_truth!r} "
                    "(Properties 1-3 unsound)")

    # -- reporting ---------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """Plain-dict rendering for ``outcome.stats['sanitizer']``."""
        return {"checks": self.checks, "epsilon": self.epsilon,
                "bounds_recorded": len(self.bounds_recorded),
                "violations": 0}

    def _fail(self, message: str) -> None:
        raise SanitizerError(message + self._trace_context())

    def _trace_context(self, limit: int = 5) -> str:
        trace = getattr(self.collector, "trace", None)
        if trace is None or not len(trace):
            return ""
        events = trace.as_dicts()[-limit:]
        rendered = " | ".join(
            "{name}({fields})".format(
                name=event["name"],
                fields=", ".join(
                    f"{key}={value}" for key, value in event.items()
                    if key not in ("name", "seq", "offset_ms")))
            for event in events)
        return f" [trace tail: {rendered}]"


#: Either sanitizer flavour — engine signatures annotate with this.
SanitizerLike = Union[Sanitizer, NullSanitizer]


def sanitize_from_env(environ: Optional[Mapping[str, str]] = None) -> bool:
    """Whether ``REPRO_SANITIZE`` asks for sanitize mode.

    Recognised as *off*: unset, empty, ``0``, ``false``, ``no`` (any
    case).  Anything else — conventionally ``1`` — switches it on.
    """
    if environ is None:
        import os
        environ = os.environ
    value = environ.get("REPRO_SANITIZE", "")
    return value.strip().lower() not in ("", "0", "false", "no")
