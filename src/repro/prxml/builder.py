"""Fluent construction of p-documents.

:class:`DocumentBuilder` lets tests and examples write p-document shapes
declaratively::

    builder = DocumentBuilder("movies")
    with builder.element("movie"):
        builder.leaf("title", text="Paris, Texas")
        with builder.mux():
            builder.leaf("year", text="1984", prob=0.8)
            builder.leaf("year", text="1985", prob=0.2)
    document = builder.build()

Distributional nodes are opened with :meth:`ind` / :meth:`mux`; all
``with`` blocks nest naturally.
"""

from __future__ import annotations

import contextlib
from typing import ContextManager, Iterable, Iterator, Optional, Sequence, Tuple

from repro.exceptions import ModelError
from repro.prxml.model import NodeType, PDocument, PNode


class DocumentBuilder:
    """Incrementally builds a :class:`PDocument` with a cursor stack."""

    def __init__(self, root_label: str = "root", root_text: Optional[str] = None):
        self._root = PNode(root_label, NodeType.ORDINARY, root_text)
        self._stack = [self._root]
        self._built = False

    # -- internal -----------------------------------------------------------

    def _attach(self, node: PNode) -> PNode:
        if self._built:
            raise ModelError("builder already produced a document")
        self._stack[-1].add_child(node)
        return node

    @contextlib.contextmanager
    def _opened(self, node: PNode) -> Iterator[PNode]:
        self._attach(node)
        self._stack.append(node)
        try:
            yield node
        finally:
            popped = self._stack.pop()
            assert popped is node

    # -- public construction methods ------------------------------------------

    def element(self, label: str, text: Optional[str] = None,
                prob: float = 1.0) -> ContextManager[PNode]:
        """Open an ordinary element as a context manager."""
        return self._opened(PNode(label, NodeType.ORDINARY, text, prob))

    def ind(self, prob: float = 1.0) -> ContextManager[PNode]:
        """Open an IND distributional node as a context manager."""
        return self._opened(PNode("IND", NodeType.IND, None, prob))

    def mux(self, prob: float = 1.0) -> ContextManager[PNode]:
        """Open a MUX distributional node as a context manager."""
        return self._opened(PNode("MUX", NodeType.MUX, None, prob))

    def exp(self, subsets: Iterable[Tuple[Sequence[int], float]],
            prob: float = 1.0) -> ContextManager[PNode]:
        """Open an EXP distributional node as a context manager.

        ``subsets`` is the explicit subset distribution over the
        children created inside the block — ``[(positions, prob), ...]``
        with 1-based child positions; it is validated and installed
        when the block closes (children must exist by then).
        """
        node = PNode("EXP", NodeType.EXP, None, prob)
        return self._opened_exp(node, list(subsets))

    @contextlib.contextmanager
    def _opened_exp(self, node: PNode, subsets):
        with self._opened(node):
            yield node
        node.set_exp_subsets(subsets)

    def leaf(self, label: str, text: Optional[str] = None,
             prob: float = 1.0) -> PNode:
        """Attach an ordinary leaf under the current cursor."""
        return self._attach(PNode(label, NodeType.ORDINARY, text, prob))

    def node(self, node: PNode) -> PNode:
        """Attach an externally constructed subtree under the cursor."""
        return self._attach(node)

    # -- finalisation -----------------------------------------------------------

    def build(self) -> PDocument:
        """Close the builder and return the finished document."""
        if len(self._stack) != 1:
            raise ModelError(
                f"{len(self._stack) - 1} element(s) still open; "
                "exit their 'with' blocks before build()")
        self._built = True
        return PDocument(self._root)
