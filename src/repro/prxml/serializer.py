"""Serialising p-documents back to the XML text format.

The output round-trips through :func:`repro.prxml.parser.parse_pxml`:
ordinary nodes keep their labels, IND/MUX nodes become ``<ind>`` /
``<mux>`` elements, and edge probabilities below 1 are emitted as
``prob`` attributes.
"""

from __future__ import annotations

import os
from typing import List, Union
from xml.sax.saxutils import escape, quoteattr

from repro.prxml.model import NodeType, PDocument, PNode

_TAGS = {NodeType.IND: "ind", NodeType.MUX: "mux", NodeType.EXP: "exp"}


def _subsets_attribute(node: PNode) -> str:
    """Render an EXP distribution as ``1+2:0.5 1:0.3``."""
    return " ".join(
        f"{'+'.join(str(p) for p in positions)}:{probability!r}"
        for positions, probability in node.exp_subsets or [])


def serialize_pxml(document: PDocument, indent: int = 2) -> str:
    """Render ``document`` as indented p-document XML text."""
    pieces: List[str] = []
    # Iterative rendering: each stack entry is either a node to open (with
    # its depth) or a ready-made closing tag string.
    stack: List[object] = [(document.root, 0)]
    while stack:
        entry = stack.pop()
        if isinstance(entry, str):
            pieces.append(entry)
            continue
        node, depth = entry
        pad = " " * (indent * depth)
        tag = _TAGS.get(node.node_type, node.label)
        attrs = ""
        # Exact sentinel: only an edge whose stored probability is
        # bit-for-bit 1.0 may drop its 'prob' attribute, or the
        # parse -> serialize round trip would not be the identity.
        if (node.edge_prob != 1.0  # repro: ignore[R001] round-trip sentinel
                and node.parent is not None
                and node.parent.node_type is not NodeType.EXP):
            # repr is the shortest exact decimal form, so serialise ->
            # parse is lossless for every float (``:g`` would truncate
            # to 6 significant digits and skew probabilities).
            attrs = f" prob={quoteattr(repr(node.edge_prob))}"
        if node.node_type is NodeType.EXP:
            attrs += f" subsets={quoteattr(_subsets_attribute(node))}"
        if not node.children and node.text is None:
            pieces.append(f"{pad}<{tag}{attrs}/>")
        elif not node.children:
            pieces.append(
                f"{pad}<{tag}{attrs}>{escape(node.text)}</{tag}>")
        else:
            text = escape(node.text) if node.text else ""
            pieces.append(f"{pad}<{tag}{attrs}>{text}")
            stack.append(f"{pad}</{tag}>")
            stack.extend((child, depth + 1)
                         for child in reversed(node.children))
    return "\n".join(pieces) + "\n"


def write_pxml_file(document: PDocument,
                    path: "Union[str, os.PathLike[str]]") -> None:
    """Serialize ``document`` to ``path`` (UTF-8)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(serialize_pxml(document))


def node_to_fragment(node: PNode) -> str:
    """Render a single subtree (used in error messages and examples)."""
    return serialize_pxml(_SubtreeView(node))


class _SubtreeView:
    """Duck-typed minimal stand-in for PDocument over one subtree."""

    def __init__(self, root: PNode):
        self.root = root
