"""Parsing p-documents from an XML text representation.

The on-disk format is plain XML with two reserved element names:

* ``<ind>`` — an IND distributional node;
* ``<mux>`` — a MUX distributional node.

Any element may carry a ``prob`` attribute in ``(0, 1]`` giving the
conditional probability of the edge from its parent; omitted means 1.
Example (the movie-year fragment from the library README)::

    <movie>
      <title>Paris, Texas</title>
      <mux>
        <year prob="0.8">1984</year>
        <year prob="0.2">1985</year>
      </mux>
    </movie>

:func:`parse_pxml` turns such text into a :class:`PDocument`;
:mod:`repro.prxml.serializer` provides the inverse.
"""

from __future__ import annotations

import os
import xml.etree.ElementTree as ET
from typing import Optional, Union

from repro.exceptions import ModelError, ParseError
from repro.prxml.model import NodeType, PDocument, PNode

#: Reserved tags marking distributional nodes in the text format.
DISTRIBUTIONAL_TAGS = {"ind": NodeType.IND, "mux": NodeType.MUX,
                       "exp": NodeType.EXP}

#: Attribute holding the conditional edge probability.
PROB_ATTRIBUTE = "prob"

#: Attribute holding an EXP node's subset distribution, e.g.
#: ``subsets="1+2:0.5 1:0.3"`` (1-based child positions; the residue
#: probability is implicit).
SUBSETS_ATTRIBUTE = "subsets"


def parse_pxml(text: str) -> PDocument:
    """Parse p-document XML text into a :class:`PDocument`.

    Raises:
        ParseError: on malformed XML, bad ``prob`` values, or a
            distributional root.
    """
    try:
        root_element = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ParseError(f"malformed XML: {exc}") from exc
    return _document_from_element(root_element)


def parse_pxml_file(path: Union[str, "os.PathLike[str]"]) -> PDocument:
    """Parse a p-document from a file path."""
    try:
        tree = ET.parse(path)
    except ET.ParseError as exc:
        raise ParseError(f"malformed XML in {path}: {exc}") from exc
    except OSError as exc:
        raise ParseError(f"cannot read {path}: {exc}") from exc
    return _document_from_element(tree.getroot())


def _document_from_element(root_element: ET.Element) -> PDocument:
    if root_element.tag.lower() in DISTRIBUTIONAL_TAGS:
        raise ParseError("the document root cannot be a distributional node")
    root = _node_from_element(root_element)
    # Exact sentinel, not a numeric comparison: an omitted 'prob'
    # attribute parses to exactly 1.0, so anything else means the
    # attribute was explicitly (and illegally) present on the root.
    if root.edge_prob != 1.0:  # repro: ignore[R001] exact parse sentinel
        raise ParseError("the document root cannot carry a 'prob' attribute")
    # Convert iteratively: (element, already-built parent node) pairs.
    # EXP subset specs apply only once children exist, so they are
    # collected and installed after the whole tree is built.
    exp_specs = []
    stack = [(root_element, root)]
    while stack:
        element, node = stack.pop()
        if node.node_type is NodeType.EXP:
            spec = element.get(SUBSETS_ATTRIBUTE)
            if spec is None:
                raise ParseError(
                    "<exp> element is missing its 'subsets' attribute")
            exp_specs.append((node, spec))
        for child_element in element:
            child = _node_from_element(child_element)
            node.add_child(child)
            stack.append((child_element, child))
    for node, spec in exp_specs:
        try:
            node.set_exp_subsets(_parse_subsets(spec))
        except ModelError as exc:
            raise ParseError(f"bad <exp> distribution: {exc}") from exc
    return PDocument(root)


def _parse_subsets(spec: str):
    """Parse ``"1+2:0.5 1:0.3"`` into ``[((1, 2), 0.5), ((1,), 0.3)]``."""
    subsets = []
    for entry in spec.split():
        positions_text, _, probability_text = entry.partition(":")
        try:
            positions = tuple(int(piece)
                              for piece in positions_text.split("+"))
            probability = float(probability_text)
        except ValueError:
            raise ParseError(
                f"bad subset entry {entry!r}; expected "
                "'pos[+pos...]:probability'") from None
        subsets.append((positions, probability))
    if not subsets:
        raise ParseError("empty 'subsets' attribute on <exp>")
    return subsets


def _node_from_element(element: ET.Element) -> PNode:
    tag = element.tag
    node_type = DISTRIBUTIONAL_TAGS.get(tag.lower(), NodeType.ORDINARY)
    prob = _read_probability(element)
    text: Optional[str] = None
    if node_type is NodeType.ORDINARY:
        text = _gather_text(element)
    elif _gather_text(element):
        raise ParseError(f"distributional <{tag}> element carries text")
    label = (node_type.name if node_type.is_distributional else tag)
    return PNode(label, node_type, text, prob)


def _read_probability(element: ET.Element) -> float:
    raw = element.get(PROB_ATTRIBUTE)
    if raw is None:
        return 1.0
    try:
        prob = float(raw)
    except ValueError:
        raise ParseError(
            f"<{element.tag}>: prob={raw!r} is not a number") from None
    if not 0.0 < prob <= 1.0:
        raise ParseError(
            f"<{element.tag}>: prob={prob!r} outside (0, 1]")
    return prob


def _gather_text(element: ET.Element) -> Optional[str]:
    """Collect the element's own text plus its children's tail text."""
    pieces = []
    if element.text and element.text.strip():
        pieces.append(element.text.strip())
    for child in element:
        if child.tail and child.tail.strip():
            pieces.append(child.tail.strip())
    return " ".join(pieces) or None
