"""Parsing p-documents from an XML text representation.

The on-disk format is plain XML with two reserved element names:

* ``<ind>`` — an IND distributional node;
* ``<mux>`` — a MUX distributional node.

Any element may carry a ``prob`` attribute in ``(0, 1]`` giving the
conditional probability of the edge from its parent; omitted means 1.
Example (the movie-year fragment from the library README)::

    <movie>
      <title>Paris, Texas</title>
      <mux>
        <year prob="0.8">1984</year>
        <year prob="0.2">1985</year>
      </mux>
    </movie>

:func:`parse_pxml` turns such text into a :class:`PDocument`;
:mod:`repro.prxml.serializer` provides the inverse.

Diagnostics
-----------

Every :class:`~repro.exceptions.ParseError` raised for a specific
element names the source (``path:line:column``) of that element — the
positions come from a second, cheap expat scan whose start-element
events fire in exactly the pre-order that ``Element.iter()`` walks, so
the two align index-for-index.  ``repro fsck`` leans on those positions
to quarantine malformed subtrees with actionable ``path:line``
diagnostics (docs/STORAGE.md); :func:`parse_pxml_salvage` is the
lenient entry point it uses — instead of raising on the first bad
element it detaches every malformed subtree and reports each one as a
:class:`SalvageDrop`.
"""

from __future__ import annotations

import os
import xml.etree.ElementTree as ET
import xml.parsers.expat
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.exceptions import ModelError, ParseError
from repro.prxml.model import NodeType, PDocument, PNode

#: Reserved tags marking distributional nodes in the text format.
DISTRIBUTIONAL_TAGS = {"ind": NodeType.IND, "mux": NodeType.MUX,
                       "exp": NodeType.EXP}

#: Attribute holding the conditional edge probability.
PROB_ATTRIBUTE = "prob"

#: Attribute holding an EXP node's subset distribution, e.g.
#: ``subsets="1+2:0.5 1:0.3"`` (1-based child positions; the residue
#: probability is implicit).
SUBSETS_ATTRIBUTE = "subsets"


@dataclass(frozen=True)
class SourcePosition:
    """Where an element starts in its source text (1-based)."""

    path: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.column}"


@dataclass(frozen=True)
class SalvageDrop:
    """One malformed subtree detached by :func:`parse_pxml_salvage`.

    Attributes:
        position: where the offending element starts.
        tag: its tag name.
        reason: why it was rejected (the strict parser's message).
        xml_text: the dropped subtree serialised back to XML, so a
            quarantine file preserves exactly what was removed.
    """

    position: SourcePosition
    tag: str
    reason: str
    xml_text: str

    def describe(self) -> str:
        """The conventional one-line ``path:line:col`` diagnostic."""
        return f"{self.position}: {self.reason}"


#: ``id(element) -> SourcePosition`` for one parsed tree.
_Positions = Dict[int, SourcePosition]


def parse_pxml(text: Union[str, bytes],
               path: str = "<string>") -> PDocument:
    """Parse p-document XML text into a :class:`PDocument`.

    Args:
        text: the XML source.
        path: name reported in diagnostics (``path:line:column``).

    Raises:
        ParseError: on malformed XML, bad ``prob`` values, or a
            distributional root — each naming the offending element's
            source position.
    """
    root_element, positions = _parse_positioned(text, path)
    return _document_from_element(root_element, positions, path)


def parse_pxml_file(path: Union[str, "os.PathLike[str]"]) -> PDocument:
    """Parse a p-document from a file path."""
    name = os.fspath(path)
    try:
        with open(path, "rb") as handle:
            text = handle.read()
    except OSError as exc:
        raise ParseError(f"cannot read {name}: {exc}") from exc
    return parse_pxml(text, path=name)


def parse_pxml_salvage(text: Union[str, bytes],
                       path: str = "<string>"
                       ) -> Tuple[PDocument, List[SalvageDrop]]:
    """Lenient parse: drop malformed subtrees instead of raising.

    Walks the well-formed XML tree, detaches every element the strict
    parser would reject (bad ``prob`` attribute, distributional element
    carrying text, missing/ill-formed ``subsets``), and builds the
    document from what survives.  The dropped subtrees come back as
    :class:`SalvageDrop` records carrying ``path:line:column``
    diagnostics and the removed XML — the raw material of fsck's
    quarantine (docs/STORAGE.md).

    Raises:
        ParseError: only when no document can be salvaged at all —
            byte-level malformed XML, or a root that is itself invalid.
    """
    root_element, positions = _parse_positioned(text, path)
    drops: List[SalvageDrop] = []
    _prune_malformed(root_element, positions, path, drops)
    document = _document_from_element(root_element, positions, path)
    return document, drops


# -- positioned parsing -------------------------------------------------------


def _parse_positioned(text: Union[str, bytes],
                      path: str) -> Tuple[ET.Element, _Positions]:
    """Parse XML text and map every element to its source position.

    expat fires start-element events in document pre-order — the same
    order ``Element.iter()`` yields — so one extra scan pairs each
    element with its (line, column) without touching ElementTree
    internals.
    """
    try:
        root_element = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ParseError(f"{path}: malformed XML: {exc}") from exc
    positions: _Positions = {}
    spots: List[Tuple[int, int]] = []
    scanner = xml.parsers.expat.ParserCreate()

    def on_start(_tag: str, _attrs: Dict[str, str]) -> None:
        spots.append((scanner.CurrentLineNumber,
                      scanner.CurrentColumnNumber + 1))

    scanner.StartElementHandler = on_start
    try:
        scanner.Parse(text, True)
    except xml.parsers.expat.ExpatError:  # pragma: no cover - ET caught it
        spots.clear()
    for element, spot in zip(root_element.iter(), spots):
        positions[id(element)] = SourcePosition(path, spot[0], spot[1])
    return root_element, positions


def _where(element: ET.Element, positions: _Positions,
           path: str) -> str:
    """Diagnostic prefix for one element: ``path:line:col: `` or ``path: ``."""
    position = positions.get(id(element))
    if position is None:  # pragma: no cover - every parsed element has one
        return f"{path}: "
    return f"{position}: "


# -- strict conversion --------------------------------------------------------


def _document_from_element(root_element: ET.Element,
                           positions: _Positions,
                           path: str) -> PDocument:
    if root_element.tag.lower() in DISTRIBUTIONAL_TAGS:
        raise ParseError(
            f"{_where(root_element, positions, path)}the document root "
            f"cannot be a distributional node")
    root = _node_from_element(root_element, positions, path)
    # Exact sentinel, not a numeric comparison: an omitted 'prob'
    # attribute parses to exactly 1.0, so anything else means the
    # attribute was explicitly (and illegally) present on the root.
    if root.edge_prob != 1.0:  # repro: ignore[R001] exact parse sentinel
        raise ParseError(
            f"{_where(root_element, positions, path)}the document root "
            f"cannot carry a 'prob' attribute")
    # Convert iteratively: (element, already-built parent node) pairs.
    # EXP subset specs apply only once children exist, so they are
    # collected and installed after the whole tree is built.
    exp_specs = []
    stack = [(root_element, root)]
    while stack:
        element, node = stack.pop()
        if node.node_type is NodeType.EXP:
            spec = element.get(SUBSETS_ATTRIBUTE)
            if spec is None:
                raise ParseError(
                    f"{_where(element, positions, path)}<exp> element "
                    f"is missing its 'subsets' attribute")
            exp_specs.append((element, node, spec))
        for child_element in element:
            child = _node_from_element(child_element, positions, path)
            node.add_child(child)
            stack.append((child_element, child))
    for element, node, spec in exp_specs:
        try:
            node.set_exp_subsets(_parse_subsets(spec))
        except (ModelError, ParseError) as exc:
            raise ParseError(
                f"{_where(element, positions, path)}bad <exp> "
                f"distribution: {_bare_message(exc)}") from exc
    return PDocument(root)


def _bare_message(exc: BaseException) -> str:
    """An exception's message without any position prefix it carries."""
    return str(exc)


def _parse_subsets(spec: str):
    """Parse ``"1+2:0.5 1:0.3"`` into ``[((1, 2), 0.5), ((1,), 0.3)]``."""
    subsets = []
    for entry in spec.split():
        positions_text, _, probability_text = entry.partition(":")
        try:
            positions = tuple(int(piece)
                              for piece in positions_text.split("+"))
            probability = float(probability_text)
        except ValueError:
            raise ParseError(
                f"bad subset entry {entry!r}; expected "
                "'pos[+pos...]:probability'") from None
        subsets.append((positions, probability))
    if not subsets:
        raise ParseError("empty 'subsets' attribute on <exp>")
    return subsets


def _node_from_element(element: ET.Element, positions: _Positions,
                       path: str) -> PNode:
    tag = element.tag
    node_type = DISTRIBUTIONAL_TAGS.get(tag.lower(), NodeType.ORDINARY)
    prob = _read_probability(element, positions, path)
    text: Optional[str] = None
    if node_type is NodeType.ORDINARY:
        text = _gather_text(element)
    elif _gather_text(element):
        raise ParseError(
            f"{_where(element, positions, path)}distributional <{tag}> "
            f"element carries text (mis-nested content: move the text "
            f"into an ordinary child element)")
    label = (node_type.name if node_type.is_distributional else tag)
    return PNode(label, node_type, text, prob)


def _read_probability(element: ET.Element, positions: _Positions,
                      path: str) -> float:
    raw = element.get(PROB_ATTRIBUTE)
    if raw is None:
        return 1.0
    try:
        prob = float(raw)
    except ValueError:
        raise ParseError(
            f"{_where(element, positions, path)}<{element.tag}>: "
            f"prob={raw!r} is not a number") from None
    if not 0.0 < prob <= 1.0:
        raise ParseError(
            f"{_where(element, positions, path)}<{element.tag}>: "
            f"prob={prob!r} outside (0, 1]")
    return prob


def _gather_text(element: ET.Element) -> Optional[str]:
    """Collect the element's own text plus its children's tail text."""
    pieces = []
    if element.text and element.text.strip():
        pieces.append(element.text.strip())
    for child in element:
        if child.tail and child.tail.strip():
            pieces.append(child.tail.strip())
    return " ".join(pieces) or None


# -- lenient salvage ----------------------------------------------------------


def _element_fault(element: ET.Element, positions: _Positions,
                   path: str) -> Optional[str]:
    """Why the strict parser would reject this element (None = fine)."""
    tag = element.tag
    node_type = DISTRIBUTIONAL_TAGS.get(tag.lower(), NodeType.ORDINARY)
    try:
        _read_probability(element, positions, path)
    except ParseError as exc:
        return _strip_position(str(exc))
    if node_type is not NodeType.ORDINARY and _gather_text(element):
        return (f"distributional <{tag}> element carries text "
                f"(mis-nested content)")
    if node_type is NodeType.EXP:
        spec = element.get(SUBSETS_ATTRIBUTE)
        if spec is None:
            return "<exp> element is missing its 'subsets' attribute"
        try:
            _parse_subsets(spec)
        except ParseError as exc:
            return f"bad <exp> distribution: {exc}"
    return None


def _strip_position(message: str) -> str:
    """Drop a leading ``path:line:col: `` prefix from a message."""
    head, sep, tail = message.rpartition(": <")
    if sep and ":" in head:
        return "<" + tail
    return message


def _prune_malformed(root_element: ET.Element, positions: _Positions,
                     path: str, drops: List[SalvageDrop]) -> None:
    """Detach every malformed subtree, recording a drop for each.

    The root itself is *not* prunable — a document with no root has
    nothing left to salvage; root faults propagate as ParseError from
    the strict conversion that follows.
    """
    stack = [root_element]
    while stack:
        element = stack.pop()
        doomed: List[ET.Element] = []
        for child in element:
            fault = _element_fault(child, positions, path)
            if fault is None:
                stack.append(child)
            else:
                doomed.append(child)
                position = positions.get(
                    id(child), SourcePosition(path, 1, 1))
                drops.append(SalvageDrop(
                    position=position, tag=child.tag, reason=fault,
                    xml_text=ET.tostring(child, encoding="unicode")))
        for child in doomed:
            element.remove(child)
