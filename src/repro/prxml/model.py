"""Tree model for PrXML{ind,mux} probabilistic XML documents.

A p-document is a rooted, ordered, labelled tree with two kinds of nodes:

* *ordinary* nodes — regular XML elements that may appear in possible
  worlds, carrying a tag label and optional text content;
* *distributional* nodes — ``IND`` (children exist independently) and
  ``MUX`` (children are mutually exclusive) nodes that only describe the
  random process generating possible worlds and never appear in them.

Every edge carries a conditional probability in ``(0, 1]``: the
probability the child exists given that its parent exists.  Edges with no
explicit probability default to 1.  This matches the model of Section II
of the paper (Nierman & Jagadish's ProTDB types, as formalised by
Kimelfeld et al.).
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.numeric import is_one, is_zero
from repro.exceptions import ModelError


class NodeType(Enum):
    """The node kinds of a p-document.

    ``ORDINARY``, ``IND`` and ``MUX`` are the paper's PrXML{ind,mux}
    model; ``EXP`` (explicit subsets, from the same PrXML family of
    Kimelfeld et al. that the paper adopts) is supported as an
    extension: an EXP node carries an explicit probability distribution
    over subsets of its children.
    """

    ORDINARY = "ordinary"
    IND = "ind"
    MUX = "mux"
    EXP = "exp"

    @property
    def is_distributional(self) -> bool:
        """Whether nodes of this type are deleted when generating worlds."""
        return self is not NodeType.ORDINARY


class PNode:
    """One node of a p-document.

    Attributes:
        label: tag name for ordinary nodes; ``"IND"`` / ``"MUX"`` markers
            for distributional nodes (informational only).
        text: optional text content.  Keywords match both the label and
            the text of ordinary nodes.  Distributional nodes never carry
            text.
        node_type: the :class:`NodeType` of this node.
        edge_prob: conditional probability of this node existing given its
            parent exists; 1.0 for the root.
        children: ordered child list.
        parent: parent node, or ``None`` for the root.
        node_id: preorder position assigned by :meth:`PDocument.refresh`;
            ``-1`` until the node is part of a refreshed document.
    """

    __slots__ = ("label", "text", "node_type", "edge_prob",
                 "children", "parent", "node_id", "exp_subsets")

    def __init__(self, label: str, node_type: NodeType = NodeType.ORDINARY,
                 text: Optional[str] = None, edge_prob: float = 1.0):
        if node_type.is_distributional and text is not None:
            raise ModelError(
                f"distributional node {label!r} cannot carry text")
        self.label = label
        self.text = text
        self.node_type = node_type
        self.edge_prob = float(edge_prob)
        self.children: List[PNode] = []
        self.parent: Optional[PNode] = None
        self.node_id = -1
        #: EXP nodes only: ``[(child positions (1-based), probability)]``
        #: over subsets of children; the residue ``1 - sum`` is the
        #: probability that no child appears.
        self.exp_subsets: Optional[List] = None

    # -- construction -----------------------------------------------------

    def add_child(self, child: "PNode", edge_prob: Optional[float] = None) -> "PNode":
        """Append ``child`` under this node and return the child.

        Args:
            child: node to attach; must not already have a parent.
            edge_prob: if given, overrides ``child.edge_prob``.
        """
        if child.parent is not None:
            raise ModelError(
                f"node {child.label!r} already has parent "
                f"{child.parent.label!r}; a p-document is a tree")
        if edge_prob is not None:
            child.edge_prob = float(edge_prob)
        child.parent = self
        self.children.append(child)
        return child

    def set_exp_subsets(
            self,
            subsets: Iterable[Tuple[Sequence[int], float]]) -> None:
        """Install an EXP node's subset distribution.

        Call after all children are attached.  ``subsets`` is an
        iterable of ``(positions, probability)`` where positions are
        1-based child indices; probabilities must sum to at most 1
        (the residue is the no-child case).  Each child's ``edge_prob``
        is set to its marginal existence probability so path
        probabilities stay a simple product along the root path.

        Raises:
            ModelError: for a non-EXP node, bad indices, or a
                distribution that is not a sub-probability.
        """
        if self.node_type is not NodeType.EXP:
            raise ModelError(
                f"{self.label!r} is {self.node_type.value}, not EXP")
        normalised = []
        total = 0.0
        for positions, probability in subsets:
            positions = tuple(sorted(set(int(p) for p in positions)))
            if not positions:
                raise ModelError(
                    "empty subsets are implicit (the residue); do not "
                    "list them")
            if any(not 1 <= p <= len(self.children) for p in positions):
                raise ModelError(
                    f"subset {positions} references missing children "
                    f"(node has {len(self.children)})")
            if not 0.0 < probability <= 1.0:
                raise ModelError(
                    f"subset probability {probability!r} outside (0, 1]")
            total += probability
            normalised.append((positions, float(probability)))
        if total > 1.0 + 1e-9:
            raise ModelError(
                f"EXP subset probabilities sum to {total:.6f} > 1")
        if len({positions for positions, _ in normalised}) \
                != len(normalised):
            raise ModelError("duplicate subsets in EXP distribution")
        self.exp_subsets = normalised
        for index, child in enumerate(self.children, start=1):
            marginal = sum(probability
                           for positions, probability in normalised
                           if index in positions)
            if is_zero(marginal):
                raise ModelError(
                    f"child #{index} of EXP node appears in no subset; "
                    "remove it instead")
            child.edge_prob = marginal

    # -- predicates and navigation ----------------------------------------

    @property
    def is_ordinary(self) -> bool:
        """Whether this is a regular XML node (appears in worlds)."""
        return self.node_type is NodeType.ORDINARY

    @property
    def is_distributional(self) -> bool:
        """Whether this is an IND/MUX/EXP node (deleted in worlds)."""
        return self.node_type.is_distributional

    @property
    def is_leaf(self) -> bool:
        """Whether the node has no children."""
        return not self.children

    @property
    def depth(self) -> int:
        """Number of edges from the root to this node."""
        depth = 0
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def ancestors(self) -> Iterator["PNode"]:
        """Yield proper ancestors from parent up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def path_probability(self) -> float:
        """``Pr(path_root->v)``: product of edge probabilities above ``v``.

        This is the probability that this node exists in a random possible
        world (conditional probabilities multiply along the root path; the
        events along one root path are conditionally chained, so the
        product is exact).
        """
        prob = self.edge_prob
        node = self.parent
        while node is not None:
            prob *= node.edge_prob
            node = node.parent
        return prob

    def iter_subtree(self) -> Iterator["PNode"]:
        """Yield this node and all descendants in document (pre)order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = self.node_type.name
        return f"PNode({self.label!r}, {kind}, p={self.edge_prob:g})"


class PDocument:
    """A p-document: a rooted tree of :class:`PNode` objects.

    The document owns a preorder numbering of its nodes (``node_id``)
    which downstream components (Dewey encoder, inverted index) use as a
    stable identity.  After structurally mutating the tree call
    :meth:`refresh`.
    """

    def __init__(self, root: PNode):
        if root.parent is not None:
            raise ModelError("document root must not have a parent")
        if not root.is_ordinary:
            raise ModelError("document root must be an ordinary node")
        if not is_one(root.edge_prob):
            raise ModelError("document root must exist with probability 1")
        self.root = root
        self._nodes: List[PNode] = []
        self.refresh()

    # -- maintenance --------------------------------------------------------

    def refresh(self) -> None:
        """Recompute the preorder ``node_id`` numbering after mutations."""
        self._nodes = list(self.root.iter_subtree())
        for position, node in enumerate(self._nodes):
            node.node_id = position

    # -- accessors ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[PNode]:
        return iter(self._nodes)

    def node_by_id(self, node_id: int) -> PNode:
        """The node at a preorder position; raises on stale numbering."""
        try:
            node = self._nodes[node_id]
        except IndexError:
            raise ModelError(f"no node with id {node_id}") from None
        if node.node_id != node_id:
            raise ModelError(
                "node numbering is stale; call PDocument.refresh()")
        return node

    def iter_preorder(self) -> Iterator[PNode]:
        """Document-order traversal (root first)."""
        return iter(self._nodes)

    def iter_postorder(self) -> Iterator[PNode]:
        """Children-before-parent traversal (the order in which the
        bottom-up probability computation finalises nodes)."""
        # An explicit stack keeps very deep documents from hitting the
        # interpreter recursion limit.
        stack: List[tuple] = [(self.root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                yield node
            else:
                stack.append((node, True))
                stack.extend((child, False) for child in reversed(node.children))

    def iter_ordinary(self) -> Iterator[PNode]:
        """Document-order traversal of ordinary nodes only."""
        return (node for node in self._nodes if node.is_ordinary)

    def find_first(self, predicate: Callable[[PNode], bool]) -> Optional[PNode]:
        """First node in document order satisfying ``predicate``."""
        return next((node for node in self._nodes if predicate(node)), None)

    def find_all(self, predicate: Callable[[PNode], bool]) -> List[PNode]:
        """All nodes satisfying ``predicate``, in document order."""
        return [node for node in self._nodes if predicate(node)]

    def find_by_label(self, label: str) -> List[PNode]:
        """All nodes with exactly this tag, in document order."""
        return self.find_all(lambda node: node.label == label)

    @property
    def height(self) -> int:
        """Length (in edges) of the longest root-to-leaf path."""
        best = 0
        stack = [(self.root, 0)]
        while stack:
            node, depth = stack.pop()
            best = max(best, depth)
            stack.extend((child, depth + 1) for child in node.children)
        return best

    def theoretical_world_count(self) -> int:
        """Number of raw instance documents the generation procedure of
        Section II would emit (before merging identical copies).

        IND nodes with ``m`` children multiply the count by ``2**m``; MUX
        nodes by ``m + 1``.  This grows astronomically on real documents,
        which is exactly why the paper's direct computation matters.
        """
        count = 1
        for node in self._nodes:
            if node.node_type is NodeType.IND:
                count *= 2 ** len(node.children)
            elif node.node_type is NodeType.MUX:
                count *= len(node.children) + 1
            elif node.node_type is NodeType.EXP:
                count *= len(node.exp_subsets or ()) + 1
        return count

    def copy(self) -> "PDocument":
        """Deep-copy the document (fresh, independently mutable nodes)."""
        root_twin = PNode(self.root.label, self.root.node_type,
                          self.root.text, self.root.edge_prob)
        # Iterative clone so arbitrarily deep documents cannot overflow
        # the interpreter stack.
        stack = [(self.root, root_twin)]
        while stack:
            original, twin = stack.pop()
            if original.exp_subsets is not None:
                twin.exp_subsets = list(original.exp_subsets)
            for child in original.children:
                child_twin = PNode(child.label, child.node_type,
                                   child.text, child.edge_prob)
                twin.add_child(child_twin)
                stack.append((child, child_twin))
        return PDocument(root_twin)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PDocument(nodes={len(self._nodes)}, height={self.height})"


def iter_edges(document: PDocument) -> Iterator[tuple]:
    """Yield ``(parent, child)`` pairs in document order."""
    return itertools.chain.from_iterable(
        ((node, child) for child in node.children)
        for node in document.iter_preorder())
