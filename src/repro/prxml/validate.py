"""Validation of p-documents against the PrXML{ind,mux} model.

:func:`validate_document` checks the structural and probabilistic
constraints of Section II of the paper:

* every edge probability lies in ``(0, 1]``;
* the probabilities on a MUX node's outgoing edges sum to at most 1
  (the residue is the probability that no child is chosen);
* distributional nodes carry no text and have at least one child
  (a childless distributional node encodes nothing);
* in *strict* mode, edges leaving ordinary nodes must have probability
  exactly 1 — the paper only places probabilities under distributional
  nodes.  The default lenient mode permits ``p < 1`` on ordinary edges
  and interprets them with independent-existence (IND) semantics, which
  is how Section III's computation treats ordinary parents anyway.
"""

from __future__ import annotations

from typing import List

from repro.exceptions import ModelError
from repro.prxml.model import NodeType, PDocument

# Summed MUX probabilities may exceed 1 by this much before we call it a
# violation, so documents built from float arithmetic do not false-alarm.
_MUX_SUM_TOLERANCE = 1e-9


def validate_document(document: PDocument, strict: bool = False) -> None:
    """Raise :class:`ModelError` if ``document`` violates the model.

    Args:
        document: the p-document to check.
        strict: additionally require ordinary-parent edges to carry
            probability 1 (paper-conformant placement of probabilities).
    """
    problems = collect_violations(document, strict=strict)
    if problems:
        shown = "; ".join(problems[:5])
        more = f" (+{len(problems) - 5} more)" if len(problems) > 5 else ""
        raise ModelError(f"invalid p-document: {shown}{more}")


def collect_violations(document: PDocument, strict: bool = False) -> List[str]:
    """Return human-readable descriptions of every model violation."""
    problems: List[str] = []
    for node in document.iter_preorder():
        where = f"node #{node.node_id} ({node.label!r})"
        if not 0.0 < node.edge_prob <= 1.0:
            problems.append(
                f"{where}: edge probability {node.edge_prob!r} "
                "outside (0, 1]")
        if node.is_distributional:
            if node.text is not None:
                problems.append(f"{where}: distributional node has text")
            if not node.children:
                problems.append(
                    f"{where}: distributional node without children")
        if node.node_type is NodeType.MUX and node.children:
            total = sum(child.edge_prob for child in node.children)
            if total > 1.0 + _MUX_SUM_TOLERANCE:
                problems.append(
                    f"{where}: MUX child probabilities sum to {total:.6f} > 1")
        if node.node_type is NodeType.EXP:
            problems.extend(f"{where}: {text}"
                            for text in _exp_violations(node))
        elif node.exp_subsets is not None:
            problems.append(
                f"{where}: non-EXP node carries an EXP distribution")
        if strict and node.is_ordinary:
            for child in node.children:
                # Exact sentinel: 1.0 means "no probability annotation";
                # strict mode flags any explicit annotation, however
                # close to 1 its value is.
                if child.edge_prob != 1.0:  # repro: ignore[R001] sentinel
                    problems.append(
                        f"{where}: strict mode forbids probability "
                        f"{child.edge_prob!r} on edge to ordinary parent's "
                        f"child {child.label!r}")
    return problems


def _exp_violations(node) -> List[str]:
    """Checks specific to EXP nodes and their subset distributions."""
    if node.exp_subsets is None:
        return ["EXP node without a subset distribution "
                "(call set_exp_subsets)"]
    problems = []
    total = 0.0
    seen = set()
    for positions, probability in node.exp_subsets:
        if not positions:
            problems.append("explicit empty subset (the residue is "
                            "implicit)")
        if positions in seen:
            problems.append(f"duplicate subset {positions}")
        seen.add(positions)
        if any(not 1 <= p <= len(node.children) for p in positions):
            problems.append(f"subset {positions} references missing "
                            "children")
        if not 0.0 < probability <= 1.0:
            problems.append(
                f"subset probability {probability!r} outside (0, 1]")
        total += probability
    if total > 1.0 + _MUX_SUM_TOLERANCE:
        problems.append(f"subset probabilities sum to {total:.6f} > 1")
    for index, child in enumerate(node.children, start=1):
        marginal = sum(probability
                       for positions, probability in node.exp_subsets
                       if index in positions)
        if abs(marginal - child.edge_prob) > 1e-9:
            problems.append(
                f"child #{index} edge probability {child.edge_prob!r} "
                f"differs from its subset marginal {marginal:.6g}")
    return problems
