"""PrXML{ind,mux} probabilistic XML documents.

This subpackage implements the data substrate of the paper: the
p-document tree model (ordinary, IND and MUX nodes with conditional edge
probabilities), a text parser/serializer, model validation, exact
possible-world enumeration, and dataset statistics.
"""

from repro.prxml.model import NodeType, PNode, PDocument
from repro.prxml.builder import DocumentBuilder
from repro.prxml.parser import parse_pxml, parse_pxml_file
from repro.prxml.serializer import serialize_pxml, write_pxml_file
from repro.prxml.validate import validate_document
from repro.prxml.possible_worlds import (
    PossibleWorld,
    enumerate_possible_worlds,
    count_possible_worlds,
    sample_possible_world,
)
from repro.prxml.stats import DocumentStats, document_stats

__all__ = [
    "NodeType",
    "PNode",
    "PDocument",
    "DocumentBuilder",
    "parse_pxml",
    "parse_pxml_file",
    "serialize_pxml",
    "write_pxml_file",
    "validate_document",
    "PossibleWorld",
    "enumerate_possible_worlds",
    "count_possible_worlds",
    "sample_possible_world",
    "DocumentStats",
    "document_stats",
]
