"""Dataset statistics (the quantities reported in Table II of the paper)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.prxml.model import NodeType, PDocument


@dataclass(frozen=True)
class DocumentStats:
    """Node-type breakdown and shape statistics of a p-document."""

    total_nodes: int
    ordinary_nodes: int
    ind_nodes: int
    mux_nodes: int
    height: int
    leaf_nodes: int
    max_fanout: int

    @property
    def distributional_nodes(self) -> int:
        """Total IND + MUX (+ EXP) node count."""
        return self.ind_nodes + self.mux_nodes

    @property
    def distributional_ratio(self) -> float:
        """Fraction of nodes that are distributional (paper keeps 10-20%)."""
        if self.total_nodes == 0:
            return 0.0
        return self.distributional_nodes / self.total_nodes

    def as_table_row(self, name: str = "") -> str:
        """Format like a row of Table II: name, #IND, #MUX, #Ordinary."""
        return (f"{name:<12} nodes={self.total_nodes:>9,} "
                f"#IND={self.ind_nodes:>8,} #MUX={self.mux_nodes:>8,} "
                f"#Ordinary={self.ordinary_nodes:>9,}")


def document_stats(document: PDocument) -> DocumentStats:
    """Compute :class:`DocumentStats` in one pass over the document."""
    ordinary = ind = mux = leaves = 0
    max_fanout = 0
    for node in document.iter_preorder():
        if node.node_type is NodeType.ORDINARY:
            ordinary += 1
        elif node.node_type is NodeType.IND:
            ind += 1
        else:
            mux += 1
        if node.is_leaf:
            leaves += 1
        max_fanout = max(max_fanout, len(node.children))
    return DocumentStats(
        total_nodes=len(document),
        ordinary_nodes=ordinary,
        ind_nodes=ind,
        mux_nodes=mux,
        height=document.height,
        leaf_nodes=leaves,
        max_fanout=max_fanout,
    )
