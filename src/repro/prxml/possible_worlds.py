"""Exact possible-world semantics for p-documents.

This is the semantic ground truth of the paper (Section II): a
p-document encodes a probability distribution over deterministic XML
documents.  :func:`enumerate_possible_worlds` materialises that
distribution exactly, following the top-down generation procedure —

* an IND node with ``m`` children spawns ``2**m`` copies, one per child
  subset, each child kept with its edge probability independently;
* a MUX node with ``m`` children spawns ``m + 1`` copies: one per single
  child (with that child's edge probability) and one with no child
  (probability ``1 - sum``);
* distributional nodes are deleted and their surviving children are
  spliced onto the closest ordinary ancestor;
* identical copies are merged, summing their probabilities.

Ordinary-parent edges with probability below 1 (allowed in lenient
documents) are treated with independent-existence semantics, matching
how Section III's computation treats ordinary parents.

Enumeration is exponential by nature; it exists as the correctness
oracle for tests and as the naive baseline the paper argues against.
Use :func:`sample_possible_world` for Monte-Carlo work on large trees.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import ModelError
from repro.prxml.model import NodeType, PDocument, PNode

#: Safety valve for exact enumeration: raise rather than grind forever.
DEFAULT_MAX_WORLDS = 1_000_000


class DetNode:
    """A node of a deterministic instance document.

    ``source_id`` is the ``node_id`` of the originating ordinary p-node,
    which is how SLCA answers found in a world are mapped back to the
    p-document.
    """

    __slots__ = ("label", "text", "children", "source_id")

    def __init__(self, label: str, text: Optional[str], source_id: int):
        self.label = label
        self.text = text
        self.source_id = source_id
        self.children: List[DetNode] = []

    def iter_subtree(self) -> Iterator["DetNode"]:
        """This instance node and its descendants, document order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DetNode({self.label!r}, source={self.source_id})"


class PossibleWorld:
    """One deterministic document plus its probability of being generated."""

    __slots__ = ("root", "probability", "node_ids")

    def __init__(self, root: DetNode, probability: float):
        self.root = root
        self.probability = probability
        self.node_ids: FrozenSet[int] = frozenset(
            node.source_id for node in root.iter_subtree())

    def contains(self, node: PNode) -> bool:
        """Whether the given ordinary p-node survives in this world."""
        return node.node_id in self.node_ids

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PossibleWorld(p={self.probability:.6g}, "
                f"nodes={len(self.node_ids)})")


# A "forest option" is the tuple of instance subtrees a p-node resolves
# to, together with the probability of that resolution (conditioned on
# the node existing).
_ForestOption = Tuple[Tuple[DetNode, ...], float]


def enumerate_possible_worlds(document: PDocument,
                              max_worlds: int = DEFAULT_MAX_WORLDS
                              ) -> List[PossibleWorld]:
    """Return every possible world of ``document`` with merged duplicates.

    Worlds that materialise the same set of ordinary nodes are identical
    documents, so they are merged and their probabilities summed.  The
    returned probabilities sum to 1 (up to float rounding).

    Raises:
        ModelError: if the document encodes more than ``max_worlds`` raw
            instance copies (see :meth:`PDocument.theoretical_world_count`).
    """
    raw_count = document.theoretical_world_count()
    if raw_count > max_worlds:
        raise ModelError(
            f"document encodes {raw_count} raw possible worlds, more than "
            f"max_worlds={max_worlds}; use sample_possible_world() instead")

    merged: Dict[FrozenSet[int], PossibleWorld] = {}
    for forest, probability in _options(document.root):
        root = forest[0]
        world = PossibleWorld(root, probability)
        existing = merged.get(world.node_ids)
        if existing is None:
            merged[world.node_ids] = world
        else:
            existing.probability += probability
    return sorted(merged.values(), key=lambda world: -world.probability)


def count_possible_worlds(document: PDocument,
                          max_worlds: int = DEFAULT_MAX_WORLDS) -> int:
    """Number of *distinct* possible worlds (after merging duplicates)."""
    return len(enumerate_possible_worlds(document, max_worlds))


def _options(node: PNode) -> List[_ForestOption]:
    """All resolutions of ``node``'s subtree, conditioned on ``node``.

    Ordinary nodes resolve to a single-tree forest; distributional nodes
    resolve to the forest of their surviving (spliced-up) children.
    """
    child_choices: List[List[_ForestOption]] = []
    if node.node_type is NodeType.MUX:
        absent_prob = 1.0 - sum(child.edge_prob for child in node.children)
        options: List[_ForestOption] = []
        if absent_prob > 0.0:
            options.append(((), absent_prob))
        for child in node.children:
            options.extend(
                (forest, child.edge_prob * prob)
                for forest, prob in _options(child))
        return options

    if node.node_type is NodeType.EXP:
        subsets = node.exp_subsets or []
        absent_prob = 1.0 - sum(prob for _, prob in subsets)
        options = []
        if absent_prob > 1e-12:
            options.append(((), absent_prob))
        for positions, subset_prob in subsets:
            chosen = [node.children[position - 1]
                      for position in positions]
            # Children of a chosen subset exist with certainty; each
            # still resolves its own subtree independently.
            for combo in itertools.product(
                    *(_options(child) for child in chosen)):
                forest = tuple(itertools.chain.from_iterable(
                    part for part, _ in combo))
                probability = subset_prob
                for _, part_prob in combo:
                    probability *= part_prob
                options.append((forest, probability))
        return options

    # IND and ordinary parents: children are independent; each child is
    # either absent (1 - edge_prob) or resolves to one of its options.
    for child in node.children:
        choices: List[_ForestOption] = []
        if child.edge_prob < 1.0:
            choices.append(((), 1.0 - child.edge_prob))
        choices.extend((forest, child.edge_prob * prob)
                       for forest, prob in _options(child))
        child_choices.append(choices)

    combined: List[_ForestOption] = []
    for combo in itertools.product(*child_choices):
        forest: Tuple[DetNode, ...] = tuple(
            itertools.chain.from_iterable(part for part, _ in combo))
        probability = 1.0
        for _, part_prob in combo:
            probability *= part_prob
        combined.append((forest, probability))

    if node.node_type is NodeType.IND:
        return combined

    resolved: List[_ForestOption] = []
    for forest, probability in combined:
        det = DetNode(node.label, node.text, node.node_id)
        det.children = list(forest)
        resolved.append(((det,), probability))
    return resolved


def sample_possible_world(document: PDocument,
                          rng: Optional[random.Random] = None
                          ) -> PossibleWorld:
    """Draw one possible world according to the document's distribution.

    Useful as a Monte-Carlo estimator of SLCA probabilities on documents
    too large for exact enumeration (the library's statistical tests use
    it to validate the direct computation at scale).
    """
    rng = rng or random.Random()

    def realise(node: PNode) -> Tuple[DetNode, ...]:
        if node.node_type is NodeType.MUX:
            pick = rng.random()
            cumulative = 0.0
            for child in node.children:
                cumulative += child.edge_prob
                if pick < cumulative:
                    return realise(child)
            return ()
        if node.node_type is NodeType.EXP:
            pick = rng.random()
            cumulative = 0.0
            for positions, probability in node.exp_subsets or []:
                cumulative += probability
                if pick < cumulative:
                    survivors: List[DetNode] = []
                    for position in positions:
                        survivors.extend(
                            realise(node.children[position - 1]))
                    return tuple(survivors)
            return ()
        survivors: List[DetNode] = []
        for child in node.children:
            if child.edge_prob >= 1.0 or rng.random() < child.edge_prob:
                survivors.extend(realise(child))
        if node.node_type is NodeType.IND:
            return tuple(survivors)
        det = DetNode(node.label, node.text, node.node_id)
        det.children = survivors
        return (det,)

    forest = realise(document.root)
    return PossibleWorld(forest[0], probability=1.0)


def world_probability_total(worlds: Sequence[PossibleWorld]) -> float:
    """Sum of world probabilities — should be 1 for a valid document."""
    return sum(world.probability for world in worlds)
