"""Bounded top-k result heap with per-node deduplication.

Both algorithms stream ``(node, probability)`` results and keep only the
``k`` best.  EagerTopK additionally needs the current k-th highest
probability as its pruning threshold: :meth:`TopKHeap.threshold` is 0
until the heap fills, after which it is the smallest retained
probability — so comparisons against it are always conservative.

Probability ties at the k boundary are broken by document order
(earlier nodes win), making the retained set a pure function of the
offered results — PrStack and EagerTopK therefore return *identical*
answers even when several nodes share the k-th probability, despite
discovering results in different orders.
"""

from __future__ import annotations

import heapq
from typing import Dict, List

from repro.analysis.sanitizer import NULL_SANITIZER, SanitizerLike
from repro.core.order import result_order_key
from repro.core.result import SLCAResult
from repro.encoding.dewey import DeweyCode
from repro.exceptions import QueryError
from repro.obs.metrics import Collector, NULL_COLLECTOR


class _Entry:
    """Heap entry ordered worst-first: lowest probability, then latest
    document order (so eviction keeps document-order-earliest nodes)."""

    __slots__ = ("probability", "code")

    def __init__(self, probability: float, code: DeweyCode):
        self.probability = probability
        self.code = code

    def __lt__(self, other: "_Entry") -> bool:
        # Worst-first is the exact reverse of the shared result order
        # (repro.core.order): the entry the global order ranks *later*
        # sits at the heap top.  The key compares probabilities
        # bitwise — a total order over heap entries must treat any two
        # distinct floats as distinct, or the document-order tiebreak
        # would kick in for nearly-equal probabilities and break the
        # PrStack/EagerTopK answer-set identity the tests pin down.
        return (result_order_key(other.code, other.probability)
                < result_order_key(self.code, self.probability))


class TopKHeap:
    """Min-heap of the k highest-probability (code, probability) pairs."""

    def __init__(self, k: int, collector: Collector = NULL_COLLECTOR,
                 sanitizer: SanitizerLike = NULL_SANITIZER):
        """``collector`` receives the ``heap.*`` counters and, when
        tracing, one ``heap.threshold`` event per threshold raise — the
        k-th probability's evolution over the scan.  ``sanitizer``
        (sanitize mode only) asserts offered probabilities are in
        range and the heap invariant holds after every acceptance."""
        if k <= 0:
            raise QueryError(f"k must be positive, got {k}")
        self.k = k
        self.collector = collector
        self.sanitizer = sanitizer
        self._heap: List[_Entry] = []
        self._best: Dict[DeweyCode, float] = {}

    def __len__(self) -> int:
        return len(self._best)

    @property
    def threshold(self) -> float:
        """The current k-th highest probability (0 until k answers exist).

        A candidate whose probability or upper bound is *strictly below*
        this value can never enter the result set.  An equal-probability
        candidate may still enter on the document-order tiebreak, so
        pruning decisions must compare strictly (``bound < threshold``)
        to keep PrStack and EagerTopK answer sets identical.
        """
        if len(self._best) < self.k:
            return 0.0
        return self._heap[0].probability

    def would_accept(self, code: DeweyCode, probability: float) -> bool:
        """Whether an offer of ``(code, probability)`` would enter the
        heap right now — the tie-aware form of a threshold comparison.

        EagerTopK suspends a candidate when even its upper bound would
        not be accepted: a bound *equal* to the k-th probability still
        loses if the candidate's code falls after the current boundary
        entry in document order, which is exactly the tiebreak
        :meth:`offer` applies.  Using this test keeps the pruned search
        result-identical to PrStack while pruning ties aggressively.
        """
        if probability <= 0.0:
            return False
        known = self._best.get(code)
        if known is not None:
            return probability > known
        if len(self._best) >= self.k:
            return not _Entry(probability, code) < self._heap[0]
        return True

    def offer(self, code: DeweyCode, probability: float) -> bool:
        """Insert a result if it belongs in the top-k; returns acceptance.

        Zero-probability results are rejected outright: the paper only
        returns nodes with non-zero probability.  Re-offering a node
        keeps the higher probability (the algorithms compute each node's
        probability once, so this is purely defensive).
        """
        collector = self.collector
        observed = collector.enabled
        if observed:
            collector.count("heap.offers")
        if self.sanitizer.enabled:
            self.sanitizer.check_probability(
                probability, f"heap offer for {code}")
        if probability <= 0.0:
            return False
        known = self._best.get(code)
        if known is not None and probability <= known:
            return False
        if known is None and len(self._best) >= self.k:
            if _Entry(probability, code) < self._heap[0]:
                if observed:
                    collector.count("heap.rejected_below_threshold")
                return False
        before = self.threshold if observed else 0.0
        self._best[code] = probability
        heapq.heappush(self._heap, _Entry(probability, code))
        self._shrink()
        if self.sanitizer.enabled:
            self.sanitizer.check_heap(self._heap, self._best, self.k)
        if observed:
            collector.count("heap.accepted")
            threshold = self.threshold
            if threshold > before:
                collector.count("heap.threshold_raises")
                collector.observe("heap.threshold", threshold)
                if collector.trace is not None:
                    collector.event("heap.threshold",
                                    value=round(threshold, 9),
                                    size=len(self._best))
        return True

    def _shrink(self) -> None:
        """Drop superseded and evicted entries from the heap top."""
        while len(self._best) > self.k:
            entry = heapq.heappop(self._heap)
            if self._best.get(entry.code) == entry.probability:
                del self._best[entry.code]
                if self.collector.enabled:
                    self.collector.count("heap.evictions")
        # Clean stale heads so threshold() reads a live value.
        while self._heap:
            entry = self._heap[0]
            if self._best.get(entry.code) == entry.probability:
                break
            heapq.heappop(self._heap)

    def results(self) -> List[SLCAResult]:
        """Answers sorted by probability descending, document order on ties."""
        ordered = sorted(self._best.items(),
                         key=lambda item: result_order_key(item[0], item[1]))
        return [SLCAResult(code=code, probability=probability)
                for code, probability in ordered]
