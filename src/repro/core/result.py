"""Result types of a top-k probabilistic SLCA search."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, TYPE_CHECKING

from repro.encoding.dewey import DeweyCode
from repro.prxml.model import PNode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.trace import TraceRecorder


@dataclass(frozen=True)
class SLCAResult:
    """One answer: an ordinary node and its global SLCA probability.

    ``probability`` is ``Pr^G_slca(v)`` of Equation 1 — the total
    probability of the possible worlds in which the node is an SLCA.
    """

    code: DeweyCode
    probability: float
    node: Optional[PNode] = None

    @property
    def label(self) -> str:
        """The answer node's tag (falls back to its code)."""
        return self.node.label if self.node is not None else str(self.code)

    def __str__(self) -> str:
        return f"{self.label} [{self.code}] p={self.probability:.6g}"


@dataclass
class SearchOutcome:
    """Top-k answers plus the counters the experiments report.

    Attributes:
        results: answers sorted by descending probability (ties broken
            by document order); at most ``k``, fewer when fewer nodes
            have non-zero probability (the paper returns only those).
        stats: free-form instrumentation counters (entries scanned,
            candidates pruned, tables merged, ...), filled in by each
            algorithm and consumed by the benchmark harness.  When the
            query ran with a metrics collector, ``stats["metrics"]``
            holds its snapshot and — with tracing on —
            ``stats["trace"]`` the live
            :class:`repro.obs.TraceRecorder` (see
            docs/OBSERVABILITY.md for the layout).
        partial: True when the search stopped before convergence — a
            :class:`repro.resilience.Deadline` expired mid-scan, or the
            service substituted an error outcome for a failed query.
            Partial results are a sound *anytime* answer: every
            returned probability is exact for its node, and the set is
            a rank-wise lower bound of the complete answer
            (docs/RESILIENCE.md).  Always False for a converged search.
        termination_reason: why the search stopped — ``"complete"``
            (the default), ``"deadline"`` / ``"step_budget"`` (budget
            expiry) or ``"error"`` (a service-layer error outcome; the
            message is in ``stats["error"]``).
    """

    results: List[SLCAResult] = field(default_factory=list)
    stats: dict = field(default_factory=dict)
    partial: bool = False
    termination_reason: str = "complete"

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def metrics(self) -> dict:
        """The collector snapshot ({} when run uninstrumented)."""
        return self.stats.get("metrics", {})

    @property
    def trace(self) -> "Optional[TraceRecorder]":
        """The recorded trace (None unless run with ``trace=True``)."""
        return self.stats.get("trace")

    def probabilities(self) -> List[float]:
        """Result probabilities, best first."""
        return [result.probability for result in self.results]

    def codes(self) -> List[DeweyCode]:
        """Result codes, best first."""
        return [result.code for result in self.results]
