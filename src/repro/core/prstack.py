"""PrStack (Algorithm 1): single-scan top-k probabilistic SLCA search.

Reads the merged keyword match entries once in document order, maintains
a stack of path frames whose tables are finalised bottom-up, and offers
every harvested ordinary-node probability to a k-size result heap.  The
SLCA probability of a node is therefore determined exactly when all of
its descendants' contributions are known — the invariant the paper's
postorder ``O*`` numbering in Figure 1(a) illustrates.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.sanitizer import NULL_SANITIZER, SanitizerLike
from repro.core.engine import StackEngine, StackItem
from repro.core.heap import TopKHeap
from repro.core.result import SearchOutcome
from repro.index.cache import CachesLike, NULL_CACHES
from repro.index.inverted import InvertedIndex
from repro.index.matchlist import build_match_entries
from repro.obs.logging import get_logger
from repro.obs.metrics import Collector, NULL_COLLECTOR
from repro.resilience.deadline import DeadlineLike, NULL_DEADLINE

_log = get_logger("core.prstack")


def prstack_search(index: InvertedIndex, keywords: Iterable[str],
                   k: int = 10, elca: bool = False,
                   collector: Collector = NULL_COLLECTOR,
                   sanitizer: SanitizerLike = NULL_SANITIZER,
                   caches: CachesLike = NULL_CACHES,
                   deadline: DeadlineLike = NULL_DEADLINE
                   ) -> SearchOutcome:
    """Top-k SLCA answers by probability, via one document-order scan.

    Args:
        index: inverted index over an encoded p-document.
        keywords: query keywords (multi-word strings are split; all
            resulting terms are required, AND semantics).
        k: number of answers wanted; fewer are returned when fewer nodes
            have non-zero SLCA probability.
        elca: rank by Exclusive-LCA probability instead of SLCA — an
            extension after the paper's reference [23]; see
            :class:`repro.core.engine.StackEngine`.
        collector: metrics collector receiving the ``engine.*`` /
            ``heap.*`` operation counts and scan timings
            (docs/OBSERVABILITY.md); the default no-op records nothing.
        sanitizer: runtime invariant checker (sanitize mode,
            docs/ANALYSIS.md); asserts the scan order, every table and
            every emitted probability live.  The default checks nothing.
        caches: shared :class:`repro.index.cache.QueryCaches` reusing
            merged match entries across queries on the same index
            (docs/SERVICE.md); the default reuses nothing.
        deadline: per-query budget (docs/RESILIENCE.md), polled once
            per match entry.  On expiry the scan stops and the current
            heap comes back as a partial outcome: every node finalised
            (popped) before the cut has its *exact* probability, while
            frames still open are dropped — finalising them early
            would fabricate probabilities that ignore the unscanned
            part of their subtrees.  The default never expires.

    Returns:
        A :class:`SearchOutcome` with ranked results and scan counters.
    """
    terms, entries = build_match_entries(index, keywords,
                                         collector=collector,
                                         caches=caches)
    heap = TopKHeap(k, collector=collector, sanitizer=sanitizer)
    outcome = SearchOutcome(stats={
        "algorithm": "prstack",
        "semantics": "elca" if elca else "slca",
        "terms": len(terms),
        "match_entries": len(entries),
        "entries_scanned": 0,
        "frames_pushed": 0,
        "results_emitted": 0,
    })

    # AND semantics: a term with no match anywhere makes the full mask
    # unreachable, so no node can be an answer.
    if any(not index.postings(term) for term in terms):
        _log.debug("prstack: a term has no postings; zero answers")
        return outcome

    full_mask = (1 << len(terms)) - 1
    engine = StackEngine(full_mask, heap.offer, elca=elca,
                         exp_resolver=index.encoded.exp_subsets_at,
                         collector=collector, sanitizer=sanitizer)
    sanitized = sanitizer.enabled
    previous = None
    with collector.time("prstack.scan"):
        for entry in entries:
            if deadline.enabled and deadline.expired():
                outcome.partial = True
                outcome.termination_reason = deadline.reason
                break
            if sanitized:
                sanitizer.check_order(previous, entry.code)
                previous = entry.code
            engine.feed(StackItem(entry.code, entry.link, entry.mask))
            outcome.stats["entries_scanned"] += 1
        else:
            engine.finish()

    if outcome.partial:
        outcome.stats["deadline"] = deadline.summary()
        if collector.enabled:
            collector.count("resilience.deadline_expired")
        _log.debug("prstack: %s expired after %d/%d entries; returning "
                   "partial heap", outcome.termination_reason,
                   outcome.stats["entries_scanned"], len(entries))
    outcome.results = heap.results()
    outcome.stats["frames_pushed"] = engine.frames_pushed
    outcome.stats["frames_popped"] = engine.frames_popped
    outcome.stats["results_emitted"] = engine.results_emitted
    outcome.stats["heap_threshold_final"] = heap.threshold
    if collector.enabled:
        collector.count("prstack.entries_scanned",
                        outcome.stats["entries_scanned"])
        collector.mark("entries_scanned",
                       outcome.stats["entries_scanned"])
    if _log.isEnabledFor(10):  # logging.DEBUG
        _log.debug(
            "prstack: %d entries -> %d frames, %d results, final "
            "threshold %.6g", outcome.stats["entries_scanned"],
            engine.frames_pushed, engine.results_emitted, heap.threshold)
    return outcome
