"""The shared bottom-up stack engine.

Both algorithms compute SLCA probabilities the same way (Section III-B):
walk keyword-matching items in document order with a stack of path
frames; when a frame pops, finalise its node's keyword distribution
table (MUX residue, self mask, ordinary-node harvesting) and promote it
into the parent frame with the rule matching the parent's type.

PrStack feeds *every* match entry and runs the stack to the root
(:meth:`StackEngine.finish`).  EagerTopK runs one engine per candidate
over just that candidate's subtree items — unconsumed match entries plus
the precomputed ("preset") tables of already-processed descendant
regions — and stops at the candidate itself
(:meth:`StackEngine.finish_candidate`), which is exactly the paper's
``ComputeSLCAProbability``.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional

from repro.analysis.sanitizer import NULL_SANITIZER, SanitizerLike
from repro.core.distribution import DistTable
from repro.encoding.dewey import DeweyCode, common_prefix_length
from repro.encoding.prlink import PrLink
from repro.exceptions import ReproError
from repro.obs.metrics import Collector, NULL_COLLECTOR
from repro.prxml.model import NodeType

#: Callback invoked for every harvested SLCA result:
#: ``(code, global_probability)``.
ResultSink = Callable[[DeweyCode, float], None]


class StackItem:
    """One unit of input: a match entry or a preset descendant table."""

    __slots__ = ("code", "link", "mask", "table")

    def __init__(self, code: DeweyCode, link: PrLink, mask: int = 0,
                 table: Optional[DistTable] = None):
        if table is not None and mask:
            raise ReproError("a preset item cannot also carry a self mask")
        self.code = code
        self.link = link
        self.mask = mask
        self.table = table

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "preset" if self.table is not None else f"mask={self.mask:b}"
        return f"StackItem({self.code}, {kind})"


class _Frame:
    """State of one node on the current root path."""

    __slots__ = ("kind", "edge_prob", "path_prob", "self_mask", "table",
                 "lambda_merged", "preset", "child_tables")

    def __init__(self, kind: NodeType, edge_prob: float, path_prob: float):
        self.kind = kind
        self.edge_prob = edge_prob
        self.path_prob = path_prob
        self.self_mask = 0
        # IND/ordinary frames accumulate by convolution starting from the
        # "contains nothing" unit; MUX frames accumulate a plain sum whose
        # missing mass is restored by the Equation 8 residue at pop time;
        # EXP frames keep each child's table separate (keyed by sibling
        # position) until the subset distribution combines them.
        if kind is NodeType.MUX:
            self.table = DistTable()
        else:
            self.table = DistTable.unit()
        self.lambda_merged = 0.0
        self.preset = False
        self.child_tables = {} if kind is NodeType.EXP else None


class StackEngine:
    """Document-order stack evaluator for keyword distribution tables."""

    def __init__(self, full_mask: int, sink: ResultSink,
                 context_length: int = 0, elca: bool = False,
                 exp_resolver: Optional[Callable] = None,
                 collector: Collector = NULL_COLLECTOR,
                 sanitizer: SanitizerLike = NULL_SANITIZER):
        """
        Args:
            full_mask: ``2**n - 1`` for an ``n``-keyword query.
            sink: receives every harvested ``(code, Pr^G_slca)`` result.
            context_length: number of leading Dewey components outside
                this engine's responsibility — 0 for a whole-document
                run (PrStack), ``len(candidate) - 1`` when evaluating one
                candidate's subtree (EagerTopK pops stop above it).
            elca: evaluate Exclusive-LCA semantics instead of SLCA —
                full-mask mass at an answer node is consumed (keywords
                used up, ancestors may still answer from other
                occurrences) rather than excluded from the whole path.
            exp_resolver: ``code -> [(child positions, probability)]``
                returning the subset distribution of an EXP node; only
                needed when the document contains EXP nodes (typically
                ``EncodedDocument.exp_subsets_at``).
            collector: metrics collector receiving the ``engine.*``
                counters and histograms (docs/OBSERVABILITY.md); the
                default no-op collector records nothing.
            sanitizer: runtime invariant checker (sanitize mode);
                asserts edge probabilities, finalised tables, MUX mass
                and emitted results live (docs/ANALYSIS.md).  The
                default no-op checks nothing.
        """
        if full_mask <= 0:
            raise ReproError("full_mask must cover at least one keyword")
        self.full_mask = full_mask
        self.sink = sink
        self.context_length = context_length
        self.elca = elca
        self.exp_resolver = exp_resolver
        self.collector = collector
        self.sanitizer = sanitizer
        self._observed = collector.enabled
        self._frames: List[_Frame] = []
        self._current: Optional[DeweyCode] = None
        self.frames_pushed = 0
        self.frames_popped = 0
        self.results_emitted = 0

    # -- feeding ---------------------------------------------------------------

    def feed(self, item: StackItem) -> None:
        """Process the next item; items must arrive in document order."""
        code = item.code
        if len(code) <= self.context_length:
            raise ReproError(
                f"item {code} is outside the engine context "
                f"(length {self.context_length})")
        if self._current is None:
            self._push_components(item, self.context_length)
        else:
            if code.positions <= self._current.positions:
                raise ReproError(
                    f"items out of document order: {code} after "
                    f"{self._current}")
            shared = common_prefix_length(self._current, code)
            self._pop_to(max(shared, self.context_length))
            self._push_components(item, max(shared, self.context_length))
        self._current = code
        if self._observed:
            self.collector.count("engine.items_fed")
            if item.table is not None:
                self.collector.count("engine.preset_tables_fed")
        frame = self._frames[-1]
        if item.table is not None:
            if frame.self_mask or frame.lambda_merged or frame.table.masks \
                    not in ({}, {0: 1.0}):
                raise ReproError(
                    f"preset table for {code} collides with live state")
            frame.table = item.table
            frame.preset = True
        else:
            frame.self_mask |= item.mask

    def _push_components(self, item: StackItem, from_length: int) -> None:
        code, link = item.code, item.link
        sanitized = self.sanitizer.enabled
        path_prob = math.prod(link[:from_length])
        for depth in range(from_length, len(code)):
            edge_prob = link[depth]
            path_prob *= edge_prob
            if sanitized:
                self.sanitizer.check_probability(
                    edge_prob, f"edge probability at depth {depth} of "
                    f"{code}")
                self.sanitizer.check_probability(
                    path_prob, f"path probability at depth {depth} of "
                    f"{code}")
            self._frames.append(
                _Frame(code.kinds[depth], edge_prob, path_prob))
            self.frames_pushed += 1
        if self._observed:
            self.collector.observe("engine.stack_depth", len(self._frames))

    # -- popping ---------------------------------------------------------------

    def _pop_to(self, keep: int) -> None:
        while len(self._frames) + self.context_length > keep:
            self._pop_frame()

    def _pop_frame(self) -> None:
        frame = self._frames.pop()
        self.frames_popped += 1
        depth = self.context_length + len(self._frames) + 1
        table = self._finalize(frame, depth)
        if not self._frames:
            return
        parent = self._frames[-1]
        if parent.kind is NodeType.EXP:
            # EXP parents combine children per explicit subset at their
            # own finalisation; keep the child's table unpromoted.
            position = self._current.positions[depth - 1]
            parent.child_tables[position] = table
        elif parent.kind is NodeType.MUX:
            parent.table.merge_mux(table.promoted_mux(frame.edge_prob))
            parent.lambda_merged += frame.edge_prob
        else:
            parent.table.merge_ind(table.promoted_ind(frame.edge_prob))

    def _finalize(self, frame: _Frame, depth: int) -> DistTable:
        """Close a frame's table: residue / subset combination for
        distributional kinds, then the ordinary-node hook."""
        if frame.preset:
            return frame.table
        table = frame.table
        if frame.kind is NodeType.MUX:
            if self.sanitizer.enabled:
                self.sanitizer.check_mux_mass(
                    frame.lambda_merged, f"MUX node at depth {depth}")
            table.add_mux_residue(frame.lambda_merged)
            if self._observed:
                self.collector.count("engine.mux_residues")
        elif frame.kind is NodeType.EXP:
            table = self._combine_exp(frame, depth)
            if self._observed:
                self.collector.count("engine.exp_combinations")
        if frame.kind is NodeType.ORDINARY:
            table = self._finalize_ordinary(frame, table, depth)
        if self.sanitizer.enabled:
            self.sanitizer.check_table(
                table, f"finalised table at depth {depth} "
                f"({frame.kind.name} frame)")
        if self._observed:
            self.collector.observe("engine.dist_table_size",
                                   len(table.masks))
        return table

    def _finalize_ordinary(self, frame: _Frame, table: DistTable,
                           depth: int) -> DistTable:
        """Keyword semantics at an ordinary node: OR the node's own
        keyword mask in, then harvest (SLCA) or consume (ELCA) the full
        mask as this node's answer.  The twig engine overrides this with
        its pattern-state transform."""
        table.apply_self_mask(frame.self_mask)
        if self.elca:
            local = table.consume(self.full_mask)
        else:
            local = table.harvest(self.full_mask)
        if local > 0.0:
            code = self._current.prefix(depth)
            probability = frame.path_prob * local
            if self.sanitizer.enabled:
                self.sanitizer.check_emission(code, probability,
                                              frame.path_prob)
            self.sink(code, probability)
            self.results_emitted += 1
        return table

    def _combine_exp(self, frame: _Frame, depth: int) -> DistTable:
        """Combine an EXP frame's child tables per its explicit subset
        distribution: ``tab = sum_S q_S * conv(tab_c for c in S)`` plus
        the no-subset residue on mask 0.  Children without keyword
        matches have the unit table and drop out of the convolution."""
        if self.exp_resolver is None:
            raise ReproError(
                "document contains EXP nodes; construct the engine with "
                "an exp_resolver (EncodedDocument.exp_subsets_at)")
        code = self._current.prefix(depth)
        combined = DistTable()
        total = 0.0
        for positions, probability in self.exp_resolver(code):
            convolution = DistTable.unit()
            for position in positions:
                child_table = frame.child_tables.get(position)
                if child_table is not None:
                    convolution.merge_ind(child_table)
            combined.merge_mux(convolution.promoted_mux(probability))
            total += probability
        combined.add_mux_residue(total)
        return combined

    # -- termination ------------------------------------------------------------

    def finish(self) -> None:
        """Pop every frame (whole-document mode); results flow to the sink."""
        self._pop_to(self.context_length)
        if self._observed:
            self._flush_counters()

    def finish_candidate(self) -> DistTable:
        """Pop down to the candidate frame, finalise it *without*
        promotion, and return its table (EagerTopK mode).

        The candidate sits at depth ``context_length + 1``; its harvested
        result (if any) has already been delivered to the sink.  Returns
        the unit table when the engine was fed nothing (an empty subtree
        contains no keywords).
        """
        if self._current is None:
            return DistTable.unit()
        self._pop_to(self.context_length + 1)
        frame = self._frames.pop()
        self.frames_popped += 1
        table = self._finalize(frame, self.context_length + 1)
        if self._observed:
            self._flush_counters()
        return table

    def _flush_counters(self) -> None:
        """Fold this engine run's frame totals into the collector (bulk,
        at termination — cheaper than per-frame counting)."""
        self.collector.count("engine.frames_pushed", self.frames_pushed)
        self.collector.count("engine.frames_popped", self.frames_popped)
        self.collector.count("engine.results_emitted", self.results_emitted)
