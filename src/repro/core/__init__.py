"""The paper's contribution: top-k probabilistic SLCA keyword search.

* :mod:`repro.core.distribution` — keyword distribution tables and the
  IND / MUX / ordinary promotion-and-merge rules (Section III-B);
* :mod:`repro.core.prstack` — the PrStack algorithm (Algorithm 1);
* :mod:`repro.core.eager` — the EagerTopK algorithm (Algorithm 2);
* :mod:`repro.core.bounds` — the five pruning properties (Section IV-B);
* :mod:`repro.core.possible_worlds_search` — the naive baseline;
* :mod:`repro.core.api` — the public entry point :func:`topk_search`.
"""

from repro.core.result import SLCAResult, SearchOutcome
from repro.core.distribution import DistTable
from repro.core.heap import TopKHeap
from repro.core.prstack import prstack_search
from repro.core.eager import eager_topk_search
from repro.core.possible_worlds_search import possible_worlds_search
from repro.core.monte_carlo import EstimatedResult, monte_carlo_search
from repro.core.threshold import threshold_search
from repro.core.explain import Explanation, explain_result, profile_lines
from repro.core.api import Algorithm, topk_search

__all__ = [
    "SLCAResult",
    "SearchOutcome",
    "DistTable",
    "TopKHeap",
    "prstack_search",
    "eager_topk_search",
    "possible_worlds_search",
    "monte_carlo_search",
    "EstimatedResult",
    "threshold_search",
    "explain_result",
    "profile_lines",
    "Explanation",
    "Algorithm",
    "topk_search",
]
