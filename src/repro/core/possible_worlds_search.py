"""The naive baseline: evaluate the query in every possible world.

This is the "straightforward solution" Section II dismisses as
infeasible: generate all possible worlds, run a deterministic SLCA
search in each, and sum world probabilities per answer node
(Equation 1).  It is exponential in the number of distributional nodes,
so it serves two purposes only — the ground-truth oracle for the test
suite and the baseline of the infeasibility ablation benchmark.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.core import order
from repro.core.result import SearchOutcome, SLCAResult
from repro.index.inverted import InvertedIndex
from repro.obs.metrics import Collector, NULL_COLLECTOR
from repro.prxml.possible_worlds import (DEFAULT_MAX_WORLDS,
                                         enumerate_possible_worlds)
from repro.slca.deterministic import elca_of_world, slca_of_world


def possible_worlds_search(index: InvertedIndex, keywords: Iterable[str],
                           k: int = 10,
                           max_worlds: int = DEFAULT_MAX_WORLDS,
                           elca: bool = False,
                           collector: Collector = NULL_COLLECTOR
                           ) -> SearchOutcome:
    """Exact top-k SLCA answers by explicit possible-world enumeration.

    Same contract as :func:`repro.core.prstack.prstack_search`
    (including the ``elca`` extension switch and the metrics
    ``collector``); raises :class:`repro.exceptions.ModelError` when
    the document encodes more than ``max_worlds`` raw worlds.
    """
    if k <= 0:
        from repro.exceptions import QueryError
        raise QueryError(f"k must be positive, got {k}")
    terms = index.query_terms(keywords)
    encoded = index.encoded
    with collector.time("possible_worlds.enumerate"):
        worlds = enumerate_possible_worlds(encoded.document, max_worlds)
    answers_of_world = elca_of_world if elca else slca_of_world

    probability_of: Dict[int, float] = {}
    with collector.time("possible_worlds.scan"):
        for world in worlds:
            for det_node in answers_of_world(world.root, terms):
                node_id = det_node.source_id
                probability_of[node_id] = (
                    probability_of.get(node_id, 0.0) + world.probability)
    if collector.enabled:
        collector.count("possible_worlds.worlds", len(worlds))
        collector.count("possible_worlds.distinct_answers",
                        len(probability_of))

    results = [
        SLCAResult(code=encoded.codes[node_id], probability=probability,
                   node=encoded.document.node_by_id(node_id))
        for node_id, probability in probability_of.items()
    ]
    results.sort(key=order.sort_key)
    return SearchOutcome(
        results=results[:k],
        stats={
            "algorithm": "possible_worlds",
            "semantics": "elca" if elca else "slca",
            "worlds": len(worlds),
            "distinct_answers": len(results),
        },
    )
