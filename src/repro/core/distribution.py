"""Keyword distribution tables (Section III-B of the paper).

For a query of ``n`` keywords and a node ``v``, the table ``tab_v`` maps
each keyword bitmask ``x`` (``0 .. 2**n - 1``) to the probability that,
in a random local possible world of ``T_sub(v)`` conditioned on ``v``
existing, the subtree contains exactly the keywords in ``x`` *and* no
descendant ordinary node already accounted for an SLCA.

Mass removed when an ordinary descendant harvests the full mask is
tracked in :attr:`DistTable.lost`: those worlds contain all keywords
below, so neither ``v`` nor any ancestor can be an SLCA in them, but
they still matter for the ``Pr_all`` upper bounds of Section IV-B —
``P(T_sub(v) contains all | v exists) = tab_v[full] + lost_v``.

Entry + lost mass always sums to 1 (the tables are genuine probability
distributions over local worlds); zero-probability masks are simply
absent, as the paper's implementation note prescribes.

The promotion/merge rules implement Equations 4-8:

========  =======================================================
Eq 4      promote under an IND/ordinary parent (absence adds to 0)
Eq 5      independent merge: bitwise-OR convolution
Eq 6      promote under a MUX parent (no per-child absence term)
Eq 7      mutually exclusive merge: pointwise addition
Eq 8      MUX residue: no-child-chosen probability joins mask 0
========  =======================================================
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.analysis.numeric import clamp01, is_one, is_zero
from repro.exceptions import ModelError


class DistTable:
    """A sparse keyword-mask distribution with excluded-mass tracking."""

    __slots__ = ("masks", "lost")

    def __init__(self, masks: Optional[Dict[int, float]] = None,
                 lost: float = 0.0) -> None:
        self.masks: Dict[int, float] = masks if masks is not None else {}
        self.lost: float = lost

    # -- constructors ---------------------------------------------------------

    @classmethod
    def unit(cls) -> "DistTable":
        """The empty-subtree distribution: contains nothing, surely."""
        return cls({0: 1.0})

    @classmethod
    def for_match(cls, mask: int) -> "DistTable":
        """Distribution of a leaf that matches exactly ``mask``'s keywords."""
        return cls({mask: 1.0})

    # -- inspection --------------------------------------------------------------

    def probability(self, mask: int) -> float:
        """Probability of containing exactly ``mask``'s keywords."""
        return self.masks.get(mask, 0.0)

    def total(self) -> float:
        """Retained + lost mass; 1.0 for any correctly maintained table.

        Deliberately *not* clamped: this is the diagnostic the tests and
        the runtime sanitizer use to detect mass drift, so hiding the
        drift here would defeat its purpose.
        """
        return sum(self.masks.values()) + self.lost  # repro: ignore[R003]

    def all_probability(self, full_mask: int) -> float:
        """Local probability that the subtree contains every keyword
        (including worlds already harvested below): feeds Pr_all."""
        return clamp01(self.masks.get(full_mask, 0.0) + self.lost)

    def items(self) -> Iterable[Tuple[int, float]]:
        """(mask, probability) pairs of the retained distribution."""
        return self.masks.items()

    def copy(self) -> "DistTable":
        """An independent copy."""
        return DistTable(dict(self.masks), self.lost)

    def __eq__(self, other: object) -> bool:
        # Structural identity for tests and caching — bitwise equality
        # of the stored floats is the contract here, not numeric
        # closeness (use total()/sanitizer checks for that).
        return (isinstance(other, DistTable) and self.masks == other.masks
                and self.lost == other.lost)  # repro: ignore[R001]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{mask:b}->{prob:.4g}"
                         for mask, prob in sorted(self.masks.items()))
        return f"DistTable({{{body}}}, lost={self.lost:.4g})"

    # -- promotion (child -> edge into parent) -------------------------------

    def promoted_ind(self, edge_prob: float) -> "DistTable":
        """Equation 4: promotion under an IND or ordinary parent.

        With probability ``1 - edge_prob`` the child is absent and the
        subtree contributes no keywords, so that mass joins mask 0.
        A certain edge is the identity, so the table is returned as-is
        (callers never mutate promoted tables).
        """
        if is_one(edge_prob):
            return self
        _check_probability(edge_prob)
        masks = {mask: prob * edge_prob for mask, prob in self.masks.items()}
        masks[0] = masks.get(0, 0.0) + (1.0 - edge_prob)
        return DistTable(masks, self.lost * edge_prob)

    def promoted_mux(self, edge_prob: float) -> "DistTable":
        """Equation 6: promotion under a MUX parent.

        Absence mass is *not* added per child; the parent folds the
        whole no-child-chosen residue into mask 0 once (Equation 8).
        """
        if is_one(edge_prob):
            return self
        _check_probability(edge_prob)
        masks = {mask: prob * edge_prob for mask, prob in self.masks.items()}
        return DistTable(masks, self.lost * edge_prob)

    # -- merging (within a parent's accumulating table) ------------------------

    def merge_ind(self, other: "DistTable") -> None:
        """Equation 5 in place: independent children combine by bitwise-OR
        convolution; excluded mass excludes the world regardless of the
        sibling, so retained fractions multiply."""
        if is_zero(self.lost) and (not self.masks
                                   or self.masks == {0: 1.0}):
            # Fresh or unit table: direct assignment, as the paper notes
            # (convolving with "contains nothing, surely" is identity).
            self.masks = dict(other.masks)
            self.lost = other.lost
            return
        combined: Dict[int, float] = {}
        for mask_a, prob_a in self.masks.items():
            for mask_b, prob_b in other.masks.items():
                key = mask_a | mask_b
                combined[key] = combined.get(key, 0.0) + prob_a * prob_b
        self.masks = combined
        self.lost = self.lost + other.lost - self.lost * other.lost

    def merge_mux(self, other: "DistTable") -> None:
        """Equation 7 in place: mutually exclusive children's mass adds."""
        for mask, prob in other.masks.items():
            self.masks[mask] = self.masks.get(mask, 0.0) + prob
        self.lost += other.lost

    def add_mux_residue(self, merged_lambda_sum: float) -> None:
        """Equation 8: fold the probability that the MUX chose none of the
        merged children into mask 0.

        ``merged_lambda_sum`` is the sum of edge probabilities of the
        children actually merged (children without keyword matches were
        never materialised — their entire mass is keyword-free and lands
        in mask 0 through this same residue).
        """
        residue = 1.0 - merged_lambda_sum
        if residue < -1e-9:
            raise ModelError(
                f"MUX children probabilities sum to {merged_lambda_sum:.6f} > 1")
        if residue > 0.0:
            self.masks[0] = self.masks.get(0, 0.0) + residue

    # -- node-local operations ---------------------------------------------------

    def apply_self_mask(self, mask: int) -> None:
        """OR the node's own keyword mask into every entry (a node that
        matches keywords contributes them to its whole subtree)."""
        if mask == 0 or not self.masks:
            return
        updated: Dict[int, float] = {}
        for entry_mask, prob in self.masks.items():
            key = entry_mask | mask
            updated[key] = updated.get(key, 0.0) + prob
        self.masks = updated

    def transform(self, function: Callable[[int], int]) -> None:
        """Remap every mask through ``function`` in place, merging
        collisions (used by the twig engine, whose per-node state is a
        deterministic function of the children's aggregated state —
        :func:`apply_self_mask` is the special case ``m -> m | mask``)."""
        updated: Dict[int, float] = {}
        for mask, probability in self.masks.items():
            key = function(mask)
            updated[key] = updated.get(key, 0.0) + probability
        self.masks = updated

    def harvest(self, full_mask: int) -> float:
        """Remove and return the full-mask probability (the node's local
        SLCA probability, Pr^L_slca).  The removed mass moves to ``lost``
        so ancestors can still see it through ``all_probability``."""
        probability = self.masks.pop(full_mask, 0.0)
        self.lost += probability
        return probability

    def consume(self, full_mask: int) -> float:
        """ELCA variant of :meth:`harvest`: remove and return the
        full-mask probability, folding it into mask 0.

        Under Exclusive-LCA semantics the keyword occurrences below an
        answer node are *consumed* rather than excluded — ancestors can
        still be answers from their remaining occurrences — so the mass
        re-enters the distribution as "contains nothing" instead of
        moving to ``lost``."""
        probability = self.masks.pop(full_mask, 0.0)
        if probability:
            self.masks[0] = self.masks.get(0, 0.0) + probability
        return probability


def _check_probability(value: float) -> None:
    if not 0.0 < value <= 1.0:
        raise ModelError(f"edge probability {value!r} outside (0, 1]")
