"""Threshold-based probabilistic SLCA search.

The paper's introduction discusses the alternative to top-k: return
every node whose SLCA probability reaches a user threshold, and notes
why it is awkward ("the answer set may be empty or too large if we do
not set a proper probability threshold... such a threshold is likely to
be different for different datasets").  We provide it anyway as an
extension — it reuses the PrStack engine with an unbounded collector,
so it costs one document-order scan like PrStack itself.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.core import order
from repro.core.engine import StackEngine, StackItem
from repro.core.result import SearchOutcome, SLCAResult
from repro.encoding.dewey import DeweyCode
from repro.exceptions import QueryError
from repro.index.inverted import InvertedIndex
from repro.index.matchlist import build_match_entries


def threshold_search(index: InvertedIndex, keywords: Iterable[str],
                     threshold: float) -> SearchOutcome:
    """All nodes with ``Pr_slca >= threshold``, best first.

    Args:
        index: inverted index over an encoded p-document.
        keywords: query keywords (AND semantics, like the top-k API).
        threshold: minimum SLCA probability, in ``(0, 1]``.
    """
    if not 0.0 < threshold <= 1.0:
        raise QueryError(
            f"threshold must be in (0, 1], got {threshold!r}")
    terms, entries = build_match_entries(index, keywords)
    outcome = SearchOutcome(stats={
        "algorithm": "threshold",
        "threshold": threshold,
        "terms": len(terms),
        "match_entries": len(entries),
        "results_emitted": 0,
    })
    if any(not index.postings(term) for term in terms):
        return outcome

    collected: List[SLCAResult] = []

    def sink(code: DeweyCode, probability: float) -> None:
        outcome.stats["results_emitted"] += 1
        if probability >= threshold:
            collected.append(SLCAResult(code=code,
                                        probability=probability))

    engine = StackEngine((1 << len(terms)) - 1, sink,
                         exp_resolver=index.encoded.exp_subsets_at)
    for entry in entries:
        engine.feed(StackItem(entry.code, entry.link, entry.mask))
    engine.finish()

    collected.sort(key=order.sort_key)
    outcome.results = collected
    return outcome
