"""THE total result order: probability desc, then document order.

Every component that ranks answers — the in-process
:class:`~repro.core.heap.TopKHeap`, the possible-worlds oracle, the
Monte-Carlo and threshold baselines, and the corpus layer's
cross-shard merge (:mod:`repro.corpus`) — must sort by exactly one
total order, or two code paths can return the same answer *set* in
different orders (or worse, keep different members of a probability
tie at the k boundary).  That order is defined here, once:

* higher probability first, compared **bitwise** — two distinct
  floats are distinct, so a near-tie never falls through to the
  document-order tiebreak on one path but not another;
* probability ties break by document order (ascending Dewey
  ``positions``), so the earliest node in the document wins the last
  slot deterministically.

The order is *total* over ``(code, probability)`` pairs from one
document (codes are unique), which is what makes top-k answers
bit-identical regardless of executor, shard count, or arrival order —
the merge-determinism contract of the corpus layer
(docs/CORPUS.md).
"""

from __future__ import annotations

from typing import Tuple

from repro.core.result import SLCAResult
from repro.encoding.dewey import DeweyCode

#: What the order key looks like: ``(-probability, positions)``.
OrderKey = Tuple[float, Tuple[int, ...]]


def result_order_key(code: DeweyCode, probability: float) -> OrderKey:
    """The sort key of one answer under the global result order.

    Sorting ascending by this key yields probability descending with
    document order breaking ties.  Negation is exact for every float
    probability (IEEE-754 negation flips the sign bit), so the key
    preserves the bitwise-exact probability comparison the heap's
    answer-set identity depends on.
    """
    return (-probability, code.positions)


def sort_key(result: SLCAResult) -> OrderKey:
    """:func:`result_order_key` adapted to :class:`SLCAResult`."""
    return result_order_key(result.code, result.probability)


def orders_before(code_a: DeweyCode, probability_a: float,
                  code_b: DeweyCode, probability_b: float) -> bool:
    """Whether answer *a* ranks strictly ahead of answer *b*."""
    return (result_order_key(code_a, probability_a)
            < result_order_key(code_b, probability_b))
