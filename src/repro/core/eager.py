"""EagerTopK (Algorithm 2): bound-driven top-k probabilistic SLCA search.

The algorithm seeds from the *traditional* SLCAs of the query — computed
by Indexed Lookup Eager [12] over the Dewey lists with node types and
probabilities ignored.  Those seeds are exactly the lowest nodes whose
subtrees can ever contain all keywords (possible worlds only remove
nodes), so the true probabilistic answers are the seeds and their
ancestors, and every ancestor of a seed is visited as a *candidate*
while climbing towards the root.

Evaluating a candidate turns its subtree into a finished *region*: the
shared stack engine sweeps the unconsumed match entries plus previously
finished regions inside it (the paper's ``ComputeSLCAProbability``),
harvesting every SLCA answer on the way.  All finished regions live in
one sorted, pairwise-incomparable registry — the single source of truth
for bound computation — where an evaluated ancestor *collapses* the
regions it covers (the exact form of the paper's Property 3 "tricky
step").

The climb always expands the candidate with the highest potential
(``UBMap``) and prunes with two sound bounds (see
:mod:`repro.core.bounds`, which documents the correction to the paper's
printed Properties 1-3):

* the **path bound** kills a candidate and its whole root path
  (``DeleteSet``) when even the combined SLCA mass of that path cannot
  reach the current k-th probability;
* the **node bound** *suspends* a candidate that cannot itself reach
  the top-k — its subtree stays unswept and only its parent keeps
  climbing, so the work is deferred and often avoided entirely.

Bound comparisons are strict (<) so that document-order ties at the k
boundary resolve identically to PrStack: both algorithms return exactly
the same answer set.
"""

from __future__ import annotations

import heapq
import math
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.sanitizer import NULL_SANITIZER, SanitizerLike
from repro.core.bounds import RegionBound, candidate_bounds
from repro.core.distribution import DistTable
from repro.core.engine import StackEngine, StackItem
from repro.core.heap import TopKHeap
from repro.core.result import SearchOutcome
from repro.encoding.dewey import DeweyCode
from repro.encoding.prlink import PrLink
from repro.exceptions import ReproError
from repro.index.cache import CachesLike, NULL_CACHES
from repro.index.inverted import InvertedIndex
from repro.index.matchlist import (MatchList, build_match_entries,
                                   keyword_code_lists)
from repro.obs.logging import get_logger
from repro.obs.metrics import Collector, NULL_COLLECTOR
from repro.prxml.model import NodeType
from repro.resilience.deadline import DeadlineLike, NULL_DEADLINE
from repro.slca.indexed_lookup import indexed_lookup_eager

_log = get_logger("core.eager")


class _Region:
    """A fully evaluated subtree: its table and coverage numbers.

    Two coverage probabilities matter for bounds (both conditioned on
    the region's root existing):

    * ``harvested`` — some *ordinary* node inside the region covers all
      keywords (the table's ``lost`` mass).  Such a node is a real node
      of every possible world it covers in, so it forbids every
      ancestor from being an SLCA.
    * ``all_cover`` — the subtree covers all keywords at all, including
      the surviving full-mask mass at a distributional region root.
      That surviving mass does *not* by itself forbid ancestors (the
      distributional node vanishes and its children splice upward), but
      it is harvested by — and therefore forbids everything above — the
      first ordinary node on the way up.
    """

    __slots__ = ("code", "link", "table", "path_prob", "harvested",
                 "all_cover")

    def __init__(self, code: DeweyCode, link: PrLink, table: DistTable,
                 full_mask: int):
        self.code = code
        self.link = link
        self.table = table
        self.path_prob = math.prod(link)
        self.harvested = table.lost
        self.all_cover = table.all_probability(full_mask)

    def bound_for(self, candidate: DeweyCode,
                  candidate_path_prob: float) -> RegionBound:
        """This region's contribution to a candidate-ancestor's bounds.

        The exclusion probability is ``harvested``, upgraded to
        ``all_cover`` when an ordinary node lies strictly between the
        region and the candidate — that node harvests the surviving
        full mass, which then forbids the candidate and its path.
        """
        exclusion = self.harvested
        between = self.code.kinds[len(candidate):len(self.code) - 1]
        if any(kind is NodeType.ORDINARY for kind in between):
            exclusion = self.all_cover
        cover = exclusion * (self.path_prob / candidate_path_prob)
        return RegionBound(self.code.positions[len(candidate)], cover)


class _RegionRegistry:
    """Sorted registry of pairwise-incomparable finished regions.

    Regions are kept in document order, so the regions inside any
    subtree form one contiguous slice found by binary search.  Adding a
    region collapses (removes) every region it covers.
    """

    def __init__(self):
        self._positions: List[Tuple[int, ...]] = []
        self._regions: List[_Region] = []

    def __len__(self) -> int:
        return len(self._regions)

    def _slice(self, code: DeweyCode) -> Tuple[int, int]:
        lo = bisect_left(self._positions, code.positions)
        hi = bisect_left(self._positions, code.subtree_upper_bound())
        return lo, hi

    def add(self, region: _Region) -> None:
        """Insert, collapsing the regions the newcomer covers."""
        lo, hi = self._slice(region.code)
        self._positions[lo:hi] = [region.code.positions]
        self._regions[lo:hi] = [region]

    def under(self, code: DeweyCode) -> List[_Region]:
        """Regions whose root lies in ``code``'s subtree (incl. itself)."""
        lo, hi = self._slice(code)
        return self._regions[lo:hi]


def eager_topk_search(index: InvertedIndex, keywords: Iterable[str],
                      k: int = 10, use_path_bounds: bool = True,
                      use_node_bounds: bool = True,
                      exact_ties: bool = True,
                      collector: Collector = NULL_COLLECTOR,
                      sanitizer: SanitizerLike = NULL_SANITIZER,
                      caches: CachesLike = NULL_CACHES,
                      deadline: DeadlineLike = NULL_DEADLINE
                      ) -> SearchOutcome:
    """Top-k SLCA answers by probability, with eager bound pruning.

    Same contract and identical answers as
    :func:`repro.core.prstack.prstack_search`; usually faster because
    high-probability candidates surface early and the bound machinery
    skips low-probability regions without ever sweeping them.

    Args:
        use_path_bounds: disable DeleteSet path pruning (ablation).
        use_node_bounds: disable candidate suspension (ablation).
        exact_ties: with the default True, probability ties at the k
            boundary resolve by document order exactly like PrStack —
            which requires evaluating every document-earlier candidate
            whose bound *equals* the k-th probability, so workloads
            with large tie plateaus (siblings sharing one injected
            ancestor edge) degrade towards a full scan.  False prunes
            at equality like the paper's Algorithm 2: faster there, but
            the returned tie subset is arbitrary (probabilities are
            still exact and identical as a multiset).
        collector: metrics collector receiving the ``eager.*`` /
            ``engine.*`` / ``heap.*`` operation counts, bound
            histograms and (when tracing) the candidate-by-candidate
            trace (docs/OBSERVABILITY.md); the default no-op records
            nothing.
        sanitizer: runtime invariant checker (sanitize mode,
            docs/ANALYSIS.md); additionally records every Property 1-5
            bound evaluation so :func:`repro.core.api.topk_search` can
            cross-check them against exact probabilities afterwards.
            The default no-op checks nothing.
        caches: shared :class:`repro.index.cache.QueryCaches` reusing
            merged match entries, per-keyword Dewey lists and per-node
            path probabilities across queries on the same index
            (docs/SERVICE.md); the default reuses nothing.
        deadline: per-query budget (docs/RESILIENCE.md), polled once
            per candidate (seed or climbed ancestor).  On expiry the
            climb stops and the k-heap comes back as a partial
            outcome — the paper's algorithm is naturally *anytime*:
            every harvested probability is already exact for its node,
            so the partial heap is a rank-wise lower bound of the
            converged answer.  The default never expires.
    """
    search = _EagerSearch(index, keywords, k, use_path_bounds,
                          use_node_bounds, exact_ties, collector,
                          sanitizer, caches, deadline)
    return search.run()


class _EagerSearch:
    """One EagerTopK execution (state is per query)."""

    def __init__(self, index: InvertedIndex, keywords: Iterable[str],
                 k: int, use_path_bounds: bool, use_node_bounds: bool,
                 exact_ties: bool = True,
                 collector: Collector = NULL_COLLECTOR,
                 sanitizer: SanitizerLike = NULL_SANITIZER,
                 caches: CachesLike = NULL_CACHES,
                 deadline: DeadlineLike = NULL_DEADLINE):
        self.index = index
        self.keywords = list(keywords)
        self.collector = collector
        self.sanitizer = sanitizer
        self.caches = caches
        self.deadline = deadline
        self.heap = TopKHeap(k, collector=collector, sanitizer=sanitizer)
        self.use_path_bounds = use_path_bounds
        self.use_node_bounds = use_node_bounds
        self.exact_ties = exact_ties
        self.regions = _RegionRegistry()
        # UBMap: the open candidates.  The dict is the source of truth;
        # the heap orders them by the node potential computed when they
        # were inserted (lazy priorities: a stale entry is skipped at
        # pop time if its candidate is gone, and pruning never relies
        # on the ordering, only on bounds recomputed at pop).
        self.candidates: Dict[DeweyCode, None] = {}
        self._queue: List[Tuple[float, int, Tuple[int, ...], DeweyCode]] = []
        # DeleteSet: codes whose whole root path is out of the top-k.
        self.delete_list: List[DeweyCode] = []
        self.full_mask = 0
        self.matches: Optional[MatchList] = None
        # Path probabilities are query-independent, so with live caches
        # the memo is the shared per-document one (docs/SERVICE.md).
        self._path_prob_cache: Dict[DeweyCode, float] = (
            caches.path_probs if caches.enabled else {})
        self.stats = {
            "algorithm": "eager_topk",
            "seeds": 0,
            "candidates_processed": 0,
            "candidates_suspended": 0,
            "candidates_pruned": 0,
            "entries_consumed": 0,
            "results_emitted": 0,
            # Pruning decisions attributed to the sound forms of the
            # paper's properties (repro.core.bounds): the path bound is
            # Properties 1-3, the node bound Properties 4-5.
            "pruning": {
                "path_bound_properties_1_3": 0,
                "node_bound_properties_4_5": 0,
                "dead_path_skips": 0,
                "bound_evaluations": 0,
            },
        }

    # -- top level ----------------------------------------------------------

    def run(self) -> SearchOutcome:
        """Execute the search: seeds, climb, pruned evaluation."""
        collector = self.collector
        terms, entries = build_match_entries(self.index, self.keywords,
                                             collector=collector,
                                             caches=self.caches)
        self.stats["terms"] = len(terms)
        self.stats["match_entries"] = len(entries)
        if any(not self.index.postings(term) for term in terms):
            _log.debug("eager: a term has no postings; zero answers")
            return SearchOutcome(stats=self.stats)
        self.full_mask = (1 << len(terms)) - 1
        self.matches = MatchList(entries)

        with collector.time("eager.seed"):
            _, code_lists = keyword_code_lists(self.index, terms,
                                               caches=self.caches)
            seeds = indexed_lookup_eager(code_lists)
        self.stats["seeds"] = len(seeds)
        if collector.enabled:
            collector.count("eager.seeds", len(seeds))
            collector.mark("seeds", len(seeds))
            collector.mark("match_entries",
                           self.stats["match_entries"])
        # Most promising seeds first: their results fill the heap early,
        # so later seeds that cannot beat the k-th probability (a seed's
        # answer is capped by its path probability) are suspended
        # without ever sweeping their subtrees.
        seeds.sort(key=lambda code: (-self._path_prob(code),
                                     code.positions))
        deadline = self.deadline
        with collector.time("eager.climb"):
            for seed in seeds:
                if deadline.enabled and deadline.expired():
                    return self._partial_outcome()
                # A seed's own answer is capped by its path probability.
                seed_cap = self._path_prob(seed)
                if self.use_node_bounds and not self._worth_scoring(
                        seed, seed_cap):
                    self._record_suspension(seed, seed_cap)
                    self._add_parent_candidate(seed)
                    continue
                self._process(seed)

            while self.candidates:
                if deadline.enabled and deadline.expired():
                    return self._partial_outcome()
                code = self._pop_most_promising()
                if self._is_dead(code):
                    self.stats["pruning"]["dead_path_skips"] += 1
                    if collector.enabled:
                        collector.count("eager.dead_path_skips")
                    continue
                path_bound, node_bound = self._bounds(code)
                if self.use_path_bounds and self._path_prunable(path_bound):
                    self.delete_list.append(code)
                    self.stats["candidates_pruned"] += 1
                    self.stats["pruning"]["path_bound_properties_1_3"] += 1
                    if collector.enabled:
                        collector.count("eager.pruned_path_bound")
                        if collector.trace is not None:
                            collector.event(
                                "eager.prune_path", code=str(code),
                                bound=round(path_bound, 9),
                                threshold=round(self.heap.threshold, 9))
                    continue
                if (self.use_node_bounds
                        and not self._worth_scoring(code, node_bound)):
                    # The candidate itself cannot score (in exact-ties
                    # mode: even a boundary tie loses the document-order
                    # tiebreak): defer its subtree and keep climbing.
                    self._record_suspension(code, node_bound)
                    self._add_parent_candidate(code)
                    continue
                self._process(code)

        self._summarise_termination()
        return SearchOutcome(results=self.heap.results(), stats=self.stats)

    def _partial_outcome(self) -> SearchOutcome:
        """The anytime answer after a deadline cut mid-climb.

        The heap already holds exact probabilities for every node
        harvested so far (regions are only ever added *fully*
        evaluated), so the result set is returned as-is and marked
        partial; unvisited candidates and unswept match entries are
        simply abandoned.
        """
        self._summarise_termination()
        self.stats["deadline"] = self.deadline.summary()
        reason = self.deadline.reason
        if self.collector.enabled:
            self.collector.count("resilience.deadline_expired")
            if self.collector.trace is not None:
                self.collector.event("eager.deadline", reason=reason,
                                     open_candidates=len(self.candidates))
        _log.debug("eager: %s expired with %d candidates open; "
                   "returning partial heap", reason,
                   len(self.candidates))
        return SearchOutcome(results=self.heap.results(),
                             stats=self.stats, partial=True,
                             termination_reason=reason)

    def _summarise_termination(self) -> None:
        """Counters of how much work the search did (or skipped) —
        shared by converged and deadline-cut exits."""
        collector = self.collector
        self.stats["entries_unconsumed"] = self.matches.remaining
        self.stats["regions_final"] = len(self.regions)
        self.stats["heap_threshold_final"] = self.heap.threshold
        if collector.enabled:
            collector.count("eager.entries_unconsumed",
                            self.matches.remaining)
        if _log.isEnabledFor(10):  # logging.DEBUG
            _log.debug(
                "eager: %d seeds, %d processed, %d suspended, %d path-"
                "pruned, %d/%d entries swept", self.stats["seeds"],
                self.stats["candidates_processed"],
                self.stats["candidates_suspended"],
                self.stats["candidates_pruned"],
                self.stats["entries_consumed"],
                self.stats["match_entries"])

    def _record_suspension(self, code: DeweyCode, bound: float) -> None:
        """Book-keep one node-bound suspension (sound Properties 4-5)."""
        self.stats["candidates_suspended"] += 1
        self.stats["pruning"]["node_bound_properties_4_5"] += 1
        collector = self.collector
        if collector.enabled:
            collector.count("eager.suspended_node_bound")
            if collector.trace is not None:
                collector.event("eager.suspend", code=str(code),
                                bound=round(bound, 9),
                                threshold=round(self.heap.threshold, 9))

    # -- candidate selection ---------------------------------------------------

    def _pop_most_promising(self) -> DeweyCode:
        """Highest node potential first, deeper on ties: deep candidates
        are cheap to evaluate and raise the pruning threshold early."""
        while self._queue:
            _, _, _, code = heapq.heappop(self._queue)
            if code in self.candidates:
                del self.candidates[code]
                return code
        # The queue and the candidate dict are kept in sync; reaching
        # here would mean a candidate was inserted without queueing.
        raise ReproError("candidate queue out of sync with UBMap")

    def _bounds(self, code: DeweyCode) -> Tuple[float, float]:
        self.stats["pruning"]["bound_evaluations"] += 1
        collector = self.collector
        path_prob = self._path_prob(code)
        bounds = candidate_bounds(
            code.node_type, path_prob,
            (region.bound_for(code, path_prob)
             for region in self.regions.under(code)))
        if collector.enabled:
            collector.count("eager.bound_evaluations")
            collector.observe("eager.node_bound", bounds[1])
        if self.sanitizer.enabled:
            self.sanitizer.record_bound(code, bounds[0], bounds[1])
        return bounds

    def _worth_scoring(self, code: DeweyCode, bound: float) -> bool:
        """Could a result of up to ``bound`` at ``code`` enter the heap?

        Exact-ties mode delegates to the heap's tie-aware acceptance
        test; the paper-faithful mode prunes at equality (Algorithm 2's
        "equal to or less than the k-th largest value").
        """
        if self.exact_ties:
            return self.heap.would_accept(code, bound)
        if len(self.heap) < self.heap.k:
            return bound > 0.0
        return bound > self.heap.threshold

    def _path_prunable(self, path_bound: float) -> bool:
        """Whether the whole root path is provably out of the top-k."""
        threshold = self.heap.threshold
        if self.exact_ties:
            return path_bound < threshold
        return len(self.heap) >= self.heap.k and path_bound <= threshold

    def _is_dead(self, code: DeweyCode) -> bool:
        """Whether path pruning already killed this root path: a
        DeleteSet entry ``d`` rules out every node on the path
        root -> ``d``, so ``code`` is dead iff it is an
        ancestor-or-self of some deleted code."""
        return any(code.is_ancestor_or_self_of(dead)
                   for dead in self.delete_list)

    def _add_parent_candidate(self, code: DeweyCode) -> None:
        if len(code) == 1:
            return  # the root has no parent
        parent = code.parent()
        if parent not in self.candidates and not self._is_dead(parent):
            self.candidates[parent] = None
            _, node_bound = self._bounds(parent)
            # Min-heap: negate the potential; deeper first on ties, then
            # document order for full determinism.
            heapq.heappush(self._queue,
                           (-node_bound, -len(parent), parent.positions,
                            parent))

    # -- candidate evaluation -----------------------------------------------------

    def _process(self, code: DeweyCode) -> None:
        """ComputeSLCAProbability: sweep the candidate's subtree (left-over
        match entries plus finished regions inside it) through the stack
        engine, harvest answers, and continue the climb with the exact
        region that replaces everything swept."""
        collector = self.collector
        taken = self.matches.consume_subtree(code)
        self.stats["entries_consumed"] += len(taken)
        inner_regions = self.regions.under(code)
        items = [StackItem(entry.code, entry.link, entry.mask)
                 for entry in taken]
        items.extend(
            StackItem(region.code, region.link, table=region.table)
            for region in inner_regions)
        items.sort(key=lambda item: item.code.positions)

        engine = StackEngine(
            self.full_mask, self._sink, context_length=len(code) - 1,
            exp_resolver=self.index.encoded.exp_subsets_at,
            collector=collector, sanitizer=self.sanitizer)
        sanitized = self.sanitizer.enabled
        previous = None
        for item in items:
            if sanitized:
                self.sanitizer.check_order(previous, item.code)
                previous = item.code
            engine.feed(item)
        table = engine.finish_candidate()
        self.stats["candidates_processed"] += 1
        if collector.enabled:
            collector.count("eager.candidates_processed")
            collector.count("eager.entries_consumed", len(taken))
            collector.count("eager.regions_collapsed", len(inner_regions))
            collector.observe("eager.sweep_items", len(items))
            if collector.trace is not None:
                collector.event("eager.process", code=str(code),
                                entries=len(taken),
                                regions=len(inner_regions))

        # Candidates strictly inside the swept subtree are superseded:
        # their answers were just harvested and their regions collapsed.
        for stale in [cand for cand in self.candidates
                      if code.is_ancestor_of(cand)]:
            del self.candidates[stale]

        self.regions.add(_Region(code, self._link_of(code), table,
                                 self.full_mask))
        self._add_parent_candidate(code)

    def _sink(self, code: DeweyCode, probability: float) -> None:
        self.stats["results_emitted"] += 1
        self.heap.offer(code, probability)

    # -- encoding helpers -----------------------------------------------------------------

    def _link_of(self, code: DeweyCode) -> PrLink:
        node = self.index.encoded.node_at(code)
        return self.index.encoded.links[node.node_id]

    def _path_prob(self, code: DeweyCode) -> float:
        probability = self._path_prob_cache.get(code)
        if probability is None:
            probability = math.prod(self._link_of(code))
            self._path_prob_cache[code] = probability
        return probability
