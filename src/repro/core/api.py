"""Public entry point: :func:`topk_search`.

Accepts a raw :class:`~repro.prxml.model.PDocument`, a prepared
:class:`~repro.index.storage.Database`, or a bare
:class:`~repro.index.inverted.InvertedIndex`, and dispatches to the
requested algorithm.  Results come back hydrated with the actual
p-document nodes so callers can inspect labels and text directly.
"""

from __future__ import annotations

from dataclasses import replace
from enum import Enum
from typing import Iterable, Optional, Union

from repro.analysis.sanitizer import (EXACT_CHECK_MAX_ENTRIES,
                                      NULL_SANITIZER, Sanitizer,
                                      sanitize_from_env)
from repro.core.eager import eager_topk_search
from repro.core.possible_worlds_search import possible_worlds_search
from repro.core.prstack import prstack_search
from repro.core.result import SearchOutcome
from repro.exceptions import QueryError
from repro.index.cache import CachesLike, NULL_CACHES
from repro.index.inverted import InvertedIndex
from repro.index.storage import Database
from repro.index.tokenizer import tokenize
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsCollector, NULL_COLLECTOR
from repro.prxml.model import PDocument
from repro.resilience.deadline import (Deadline, DeadlineLike,
                                       as_deadline)

_log = get_logger("core.api")


class Algorithm(Enum):
    """Selectable search strategies."""

    PRSTACK = "prstack"
    EAGER = "eager"
    POSSIBLE_WORLDS = "possible_worlds"


Source = Union[PDocument, Database, InvertedIndex]


def validate_query(keywords: Iterable[str], k: int) -> list:
    """Boundary validation shared by :func:`topk_search` and the
    service layer: materialise the keywords, reject non-positive ``k``
    and duplicate keywords with a :class:`QueryError` naming the
    offence (instead of whatever a deeper layer — the heap, the
    tokenizer — would eventually do with them).

    Two keywords are duplicates when they tokenise identically
    (``"K1"`` duplicates ``"k1"``): the duplicate would silently
    collapse into one required term and turn a 3-keyword query into a
    different — still answerable — 2-term query.  Keywords that
    tokenise to nothing are left for :func:`normalize_query` to reject
    with its own message.  Returns the keywords as a list.
    """
    keywords = list(keywords)
    if k <= 0:
        raise QueryError(f"k must be positive, got {k}")
    seen: dict = {}
    for keyword in keywords:
        key = tuple(tokenize(keyword))
        if key and key in seen:
            raise QueryError(
                f"duplicate query keyword {keyword!r} (normalises the "
                f"same as {seen[key]!r})")
        seen.setdefault(key, keyword)
    return keywords


def topk_search(source: Source, keywords: Iterable[str], k: int = 10,
                algorithm: Union[Algorithm, str] = Algorithm.EAGER,
                semantics: str = "slca",
                collector: Optional[MetricsCollector] = None,
                trace: bool = False,
                sanitize: Optional[bool] = None,
                caches: CachesLike = NULL_CACHES,
                deadline: "Optional[Union[Deadline, DeadlineLike, float, int]]" = None
                ) -> SearchOutcome:
    """Find the ``k`` ordinary nodes most likely to be SLCAs.

    Args:
        source: a p-document (indexed on the fly), a loaded
            :class:`Database`, or an :class:`InvertedIndex`.
        keywords: query keywords; multi-word strings contribute all
            their words, and every word is required (AND semantics).
        k: how many answers to return (fewer come back when fewer nodes
            have non-zero probability).
        algorithm: an :class:`Algorithm` or its string value
            (case-insensitive).  The default, EagerTopK, is the paper's
            fastest; PrStack gives the same answers with a simpler
            single-scan strategy; ``possible_worlds`` is the
            exponential oracle for tiny documents.
        semantics: ``"slca"`` (the paper) or ``"elca"`` (an extension
            after reference [23]).  EagerTopK's pruning properties are
            SLCA-specific — coverage below a node excludes its
            ancestors, which is false under ELCA — so ``"elca"`` is
            served by PrStack or the oracle only.
        collector: a :class:`repro.obs.MetricsCollector` to fill with
            operation counts, timings and histograms; its snapshot is
            attached to ``outcome.stats["metrics"]``.  With the default
            ``None`` the no-op collector runs and nothing is recorded
            (results are byte-identical either way).
        trace: record a per-query event trace; implies a collector (one
            is created when ``collector`` is None) and attaches the
            :class:`repro.obs.TraceRecorder` to
            ``outcome.stats["trace"]``.
        sanitize: run the query under the runtime invariant sanitizer
            (docs/ANALYSIS.md): every probability, distribution table,
            MUX mass, scan order, heap state and EagerTopK bound is
            checked live, and a violated paper invariant raises
            :class:`repro.analysis.SanitizerError`.  On small inputs
            (at most ``EXACT_CHECK_MAX_ENTRIES`` match entries) an
            EagerTopK run is additionally cross-checked against an
            exhaustive PrStack pass to prove every Property 1-5 bound
            dominates the exact probability.  The default ``None``
            defers to the ``REPRO_SANITIZE`` environment variable;
            the sanitize summary lands in
            ``outcome.stats["sanitizer"]``.
        caches: shared :class:`repro.index.cache.QueryCaches` bound to
            the same prepared index, reusing match lists, per-keyword
            Dewey lists and path probabilities across queries
            (docs/SERVICE.md).  The default reuses nothing; a
            :class:`repro.service.QueryService` passes its own.
        deadline: per-query execution budget (docs/RESILIENCE.md): a
            :class:`repro.resilience.Deadline` or a plain number of
            wall-clock milliseconds.  PrStack polls it per match entry
            and EagerTopK per candidate; on expiry the current k-heap
            comes back as an *anytime* answer with
            ``outcome.partial == True`` and
            ``outcome.termination_reason`` naming the exhausted budget
            — never an exception.  Every returned probability is exact
            for its node; the set is a rank-wise lower bound of the
            converged answer.  The exhaustive ``possible_worlds``
            oracle ignores deadlines (it exists to be exact).  The
            default ``None`` never expires and returns byte-identical
            results with ``partial == False``.

    Returns:
        A :class:`SearchOutcome`; ``outcome.results`` are sorted by
        descending probability with document order breaking ties, and
        each result carries its p-document ``node``.  See
        docs/OBSERVABILITY.md for the instrumented ``stats`` layout.
    """
    keywords = validate_query(keywords, k)
    if _is_query_service(source):
        # A prepared service carries its own caches and collector
        # defaults; delegate so callers can hold one handle for both
        # ad-hoc and batched traffic.
        return source.search(keywords, k, algorithm=algorithm,
                             semantics=semantics, collector=collector,
                             trace=trace, sanitize=sanitize,
                             deadline=deadline)
    deadline = as_deadline(deadline)
    if collector is None:
        collector = MetricsCollector(trace=True) if trace \
            else NULL_COLLECTOR
    elif trace and collector.enabled and collector.trace is None:
        from repro.obs.trace import TraceRecorder
        collector.trace = TraceRecorder()
    if sanitize is None:
        sanitize = sanitize_from_env()
    sanitizer = Sanitizer(collector=collector) if sanitize \
        else NULL_SANITIZER
    index = _as_index(source)
    algorithm = _coerce_algorithm(algorithm)
    if semantics not in ("slca", "elca"):
        raise QueryError(
            f"unknown semantics {semantics!r}; choose 'slca' or 'elca'")
    elca = semantics == "elca"
    if elca and algorithm is Algorithm.EAGER:
        raise QueryError(
            "EagerTopK's pruning bounds are SLCA-specific; use "
            "algorithm='prstack' (or 'possible_worlds') for ELCA")

    _log.debug("topk_search: %s k=%d semantics=%s", algorithm.value, k,
               semantics)
    with collector.time("search.total"):
        if algorithm is Algorithm.PRSTACK:
            outcome = prstack_search(index, keywords, k, elca=elca,
                                     collector=collector,
                                     sanitizer=sanitizer,
                                     caches=caches, deadline=deadline)
        elif algorithm is Algorithm.EAGER:
            outcome = eager_topk_search(index, keywords, k,
                                        collector=collector,
                                        sanitizer=sanitizer,
                                        caches=caches,
                                        deadline=deadline)
        else:
            outcome = possible_worlds_search(index, keywords, k,
                                             elca=elca,
                                             collector=collector)
    if sanitizer.enabled:
        _crosscheck_bounds(sanitizer, index, keywords, outcome)
        outcome.stats["sanitizer"] = sanitizer.summary()
    if collector.enabled:
        outcome.stats["metrics"] = collector.snapshot()
        if collector.trace is not None:
            outcome.stats["trace"] = collector.trace
    return _hydrate(outcome, index)


def _crosscheck_bounds(sanitizer: Sanitizer, index: InvertedIndex,
                       keywords: Iterable[str],
                       outcome: SearchOutcome) -> None:
    """Post-run soundness proof for EagerTopK's pruning (sanitize mode).

    Whenever the sanitized query recorded Property 1-5 bound
    evaluations and the input is small enough, re-run the query through
    PrStack with an unbounded k and assert every recorded bound
    dominates the corresponding exact SLCA probability
    (:meth:`repro.analysis.Sanitizer.verify_bounds`).  Skipped — with a
    stats note — on large inputs, where the exhaustive pass would
    dwarf the search itself.
    """
    if not sanitizer.bounds_recorded:
        return
    entries = outcome.stats.get("match_entries", 0)
    if entries > EXACT_CHECK_MAX_ENTRIES:
        outcome.stats["sanitizer_bound_check"] = "skipped_large_input"
        _log.debug("sanitize: bound cross-check skipped (%d match "
                   "entries > %d)", entries, EXACT_CHECK_MAX_ENTRIES)
        return
    exhaustive = prstack_search(index, keywords, k=1 << 30)
    exact = {result.code: result.probability
             for result in exhaustive.results}
    sanitizer.verify_bounds(exact)
    outcome.stats["sanitizer_bound_check"] = "verified"


def _coerce_algorithm(algorithm: Union[Algorithm, str]) -> Algorithm:
    """Accept an :class:`Algorithm` or its (case-insensitive) string
    value; reject anything else with a :class:`QueryError` naming the
    valid choices."""
    try:
        return Algorithm(algorithm)
    except ValueError:
        if isinstance(algorithm, str):
            try:
                return Algorithm(algorithm.lower())
            # Deliberately swallowed: the shared QueryError below names
            # every valid choice for both failure paths.
            except ValueError:  # repro: ignore[R006] handled below
                pass
        names = ", ".join(choice.value for choice in Algorithm)
        raise QueryError(
            f"unknown algorithm {algorithm!r}; choose one of: {names}"
        ) from None


def _is_query_service(source: object) -> bool:
    """Whether ``source`` is a :class:`repro.service.QueryService`.

    Imported lazily: the service layer sits *above* this module (it
    calls back into the algorithm dispatch), so a top-level import
    would be circular.
    """
    from repro.service.service import QueryService
    return isinstance(source, QueryService)


def _as_index(source: Source) -> InvertedIndex:
    if isinstance(source, InvertedIndex):
        return source
    if isinstance(source, Database):
        return source.index
    if isinstance(source, PDocument):
        return Database.from_document(source).index
    raise QueryError(
        f"unsupported search source type: {type(source).__name__}")


def _hydrate(outcome: SearchOutcome, index: InvertedIndex) -> SearchOutcome:
    """Attach p-document nodes to results that lack them."""
    encoded = index.encoded
    outcome.results = [
        result if result.node is not None
        else replace(result, node=encoded.node_at(result.code))
        for result in outcome.results
    ]
    return outcome
