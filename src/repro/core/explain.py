"""Explaining one node's SLCA probability — and one query's execution.

``explain_result`` recomputes a single node's keyword distribution
table (Section III-B) and decomposes its global probability into the
two factors of Equation 2 — ``Pr(path_root->v)`` and the local
``Pr^L_slca`` — with the per-mask distribution spelled out against the
query terms.  This is the library's answer to "why is this node ranked
here?", and doubles as a worked-example generator for the paper's
Examples 3-6.

``profile_lines`` is the companion answer to "why was this query fast
(or slow)?": it renders an instrumented :class:`SearchOutcome`'s
counters, timers, histograms and recorded trace — the CLI's
``--profile`` output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.core.engine import StackEngine, StackItem
from repro.core.result import SearchOutcome
from repro.encoding.dewey import DeweyCode
from repro.exceptions import QueryError
from repro.index.inverted import InvertedIndex
from repro.index.matchlist import MatchList, build_match_entries
from repro.obs.trace import render_trace
from repro.prxml.model import PNode


@dataclass
class Explanation:
    """Why a node has its SLCA probability."""

    code: DeweyCode
    node: PNode
    terms: List[str]
    path_probability: float
    local_slca_probability: float
    global_slca_probability: float
    #: Post-harvest keyword distribution: term subset -> probability.
    distribution: Dict[Tuple[str, ...], float] = field(
        default_factory=dict)
    #: Probability that an ordinary descendant already covers all terms
    #: (mass excluded from this node and all of its ancestors).
    excluded_below: float = 0.0

    def lines(self) -> List[str]:
        """Human-readable rendering (used by the CLI and examples)."""
        out = [
            f"node <{self.node.label}> at {self.code}",
            f"  Pr(path root->v)   = {self.path_probability:.6g}",
            f"  Pr_local(SLCA)     = {self.local_slca_probability:.6g}",
            f"  Pr_global(SLCA)    = {self.global_slca_probability:.6g}"
            "   (= path x local, Equation 2)",
            "  keyword distribution of the subtree (given v exists):",
        ]
        for subset, probability in sorted(self.distribution.items(),
                                          key=lambda kv: -kv[1]):
            label = "{" + ", ".join(subset) + "}" if subset else "{}"
            out.append(f"    contains exactly {label:<30} "
                       f"p = {probability:.6g}")
        if self.excluded_below:
            out.append(f"    SLCA already below{'':<21} "
                       f"p = {self.excluded_below:.6g}")
        return out


def explain_result(index: InvertedIndex, keywords: Iterable[str],
                   code: DeweyCode) -> Explanation:
    """Recompute and decompose one node's SLCA probability.

    Raises:
        QueryError: if ``code`` does not denote an ordinary node of the
            indexed document.
    """
    encoded = index.encoded
    if not encoded.has_code(code):
        raise QueryError(f"no node at {code} in this document")
    node = encoded.node_at(code)
    if not node.is_ordinary:
        raise QueryError(
            f"{code} is a {node.node_type.value} node; only ordinary "
            "nodes can be SLCA answers")

    terms, entries = build_match_entries(index, keywords)
    full_mask = (1 << len(terms)) - 1
    matches = MatchList(entries)

    harvested: Dict[DeweyCode, float] = {}
    engine = StackEngine(
        full_mask,
        lambda result_code, probability: harvested.__setitem__(
            result_code, probability),
        context_length=len(code) - 1,
        exp_resolver=encoded.exp_subsets_at)
    for entry in matches.iter_subtree(code):
        engine.feed(StackItem(entry.code, entry.link, entry.mask))
    table = engine.finish_candidate()

    link = encoded.link_of(node)
    path_probability = math.prod(link)
    global_probability = harvested.get(code, 0.0)
    local_probability = (global_probability / path_probability
                         if path_probability else 0.0)

    def subset(mask: int) -> Tuple[str, ...]:
        return tuple(term for bit, term in enumerate(terms)
                     if mask & (1 << bit))

    excluded_below = table.lost - local_probability
    return Explanation(
        code=code,
        node=node,
        terms=terms,
        path_probability=path_probability,
        local_slca_probability=local_probability,
        global_slca_probability=global_probability,
        distribution={subset(mask): probability
                      for mask, probability in table.items()},
        excluded_below=max(0.0, excluded_below),
    )


def profile_lines(outcome: SearchOutcome, trace_limit: int = 40
                  ) -> List[str]:
    """Render an instrumented outcome's metrics and trace.

    Consumes the ``stats["metrics"]`` snapshot and the live
    ``stats["trace"]`` recorder that :func:`repro.core.api.topk_search`
    attaches when given a collector; degrades gracefully (one
    explanatory line) on an uninstrumented outcome.
    """
    metrics = outcome.metrics
    if not metrics:
        return ["profile: no metrics were collected "
                "(run with a MetricsCollector / --profile)"]
    lines = ["profile"]
    counters = metrics.get("counters", {})
    if counters:
        lines.append("  counters")
        width = max(len(name) for name in counters)
        lines.extend(f"    {name:<{width}}  {value:,}"
                     for name, value in counters.items())
    timers = metrics.get("timers", {})
    if timers:
        lines.append("  timers (ms)")
        width = max(len(name) for name in timers)
        lines.extend(
            f"    {name:<{width}}  n={summary['count']:<6} "
            f"sum={summary['sum']:.3f} mean={summary['mean']:.3f}"
            for name, summary in timers.items())
    histograms = metrics.get("histograms", {})
    if histograms:
        lines.append("  histograms")
        width = max(len(name) for name in histograms)
        lines.extend(
            f"    {name:<{width}}  n={summary['count']:<6} "
            f"min={summary['min']:g} mean={summary['mean']:g} "
            f"max={summary['max']:g}"
            for name, summary in histograms.items())
    trace = outcome.trace
    if trace is not None:
        lines.append(f"  trace ({len(trace)} event(s))")
        lines.extend(render_trace(trace, limit=trace_limit))
    return lines
