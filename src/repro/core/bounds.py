"""Pruning bounds (the sound form of Section IV-B's Properties 1-5).

EagerTopK prunes with upper bounds derived from already-evaluated
*regions*: pairwise-incomparable descendants ``d`` of a candidate ``v``
whose keyword distributions are known, giving each region's *local*
all-probability ``a_d = P(T_sub(d) contains every keyword | d exists)``.

**A soundness correction to the paper.**  Properties 1-3 as printed
multiply global factors ``(1 - Pr_all(d_i))``.  That product is only
valid when the events "``d_i``'s subtree covers all keywords" are
independent or negatively correlated — but regions *sharing path edges*
are positively correlated.  Counterexample: two sibling regions that
each cover all keywords exactly when their common ancestor edge (of
probability 0.42) is realised have ``Pr_all = 0.42`` each; the paper's
bound gives ``0.58^2 = 0.3364``, yet the document root is an SLCA with
probability ``0.58 > 0.3364``, so pruning with the printed bound loses
answers.  (This is observable in practice; the library's randomised
oracle tests caught it.)

The sound replacement used here conditions on the candidate and groups
regions by the child subtree of ``v`` they lie in:

* ``r_d = a_d * P(path v -> d)`` — probability ``d``'s subtree covers
  everything *given v exists*;
* regions in different child subtrees of ``v`` are independent given
  ``v`` (IND/ordinary) or mutually exclusive (MUX), so combining one
  representative per group is safe; within a group (shared edges below
  ``v``, correlation sign unknown) only the strongest region is used:
  ``P(no region covers | v) <= 1 - max r`` always holds.

With ``B(v) = prod over groups (1 - max r)`` (IND/ordinary) or
``B(v) = 1 - sum over groups (max r)`` (MUX):

* **node bound** (sound Properties 4/5):
  ``Pr_slca(v) <= Pr(path root->v) * B(v)``;
* **path bound** (sound Properties 1-3): SLCA events of distinct nodes
  on one root path are disjoint, and any of them excludes every region
  covering all keywords, so::

      sum over path root->v of Pr_slca
          <= (1 - Pr(path root->v)) + Pr(path root->v) * B(v)

  (the first term covers worlds where ``v`` itself is absent — exactly
  the mass the paper's formula mis-multiplies away).

When each group holds a single region — the common case once the climb
has collapsed siblings into their parent (the paper's Property 3
"tricky step") — the product form coincides with the paper's intent.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.prxml.model import NodeType


class RegionBound:
    """What a candidate needs to know about one evaluated region.

    Attributes:
        group: which child subtree of the candidate the region lies in
            (the Dewey position right below the candidate).
        cover_given_candidate: ``r_d`` — probability the region's subtree
            contains every keyword, conditioned on the candidate existing.
    """

    __slots__ = ("group", "cover_given_candidate")

    def __init__(self, group: int, cover_given_candidate: float):
        self.group = group
        self.cover_given_candidate = cover_given_candidate


def coverage_complement(node_type: NodeType,
                        regions: Iterable[RegionBound]) -> float:
    """``B(v)``: upper bound on ``P(no known region covers all | v exists)``.

    Takes the strongest region per group, then combines groups with the
    product (IND/ordinary: independent given ``v``) or complement-sum
    (MUX: mutually exclusive given ``v``) rule.
    """
    group_best: Dict[int, float] = {}
    for region in regions:
        cover = region.cover_given_candidate
        if cover > group_best.get(region.group, 0.0):
            group_best[region.group] = cover
    if node_type is NodeType.MUX:
        return max(0.0, 1.0 - sum(group_best.values()))
    if node_type is NodeType.EXP:
        # Explicit subsets correlate children arbitrarily, so even
        # cross-group products are unsafe: use the single strongest
        # region (always sound).
        best = max(group_best.values(), default=0.0)
        return max(0.0, 1.0 - best)
    complement = 1.0
    for cover in group_best.values():
        complement *= 1.0 - cover
    return max(0.0, complement)


def candidate_bounds(node_type: NodeType, path_probability: float,
                     regions: Iterable[RegionBound]) -> Tuple[float, float]:
    """Return ``(path_bound, node_bound)`` for one candidate.

    ``path_bound`` caps the summed SLCA probability of every node on the
    candidate's root path (prune the whole path below the k-th result);
    ``node_bound`` caps the candidate's own SLCA probability (suspend
    the candidate without sweeping its subtree).
    """
    complement = coverage_complement(node_type, regions)
    node_bound = path_probability * complement
    path_bound = (1.0 - path_probability) + node_bound
    return path_bound, node_bound
