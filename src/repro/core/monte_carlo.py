"""Monte-Carlo estimation of SLCA probabilities.

An extension beyond the paper's exact algorithms: sample possible
worlds, run the deterministic SLCA search in each (Equation 1 as a
sample mean), and return estimated top-k answers with standard errors.
Useful as an independent statistical check of the exact algorithms on
documents far too large for exact enumeration, and as a baseline for
the accuracy/cost trade-off.

Each node's estimator is a binomial proportion: with ``n`` sampled
worlds and ``h`` hits, ``p_hat = h / n`` and
``stderr = sqrt(p_hat (1 - p_hat) / n)``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.core import order
from repro.core.result import SearchOutcome, SLCAResult
from repro.exceptions import QueryError
from repro.index.inverted import InvertedIndex
from repro.obs.metrics import Collector, NULL_COLLECTOR
from repro.prxml.possible_worlds import sample_possible_world
from repro.slca.deterministic import slca_of_world


@dataclass(frozen=True)
class EstimatedResult:
    """One Monte-Carlo answer: estimate plus its standard error."""

    result: SLCAResult
    standard_error: float
    hits: int
    samples: int


def monte_carlo_search(index: InvertedIndex, keywords: Iterable[str],
                       k: int = 10, samples: int = 1000,
                       rng: Optional[random.Random] = None,
                       collector: Collector = NULL_COLLECTOR
                       ) -> SearchOutcome:
    """Approximate top-k SLCA answers from sampled possible worlds.

    Same contract as the exact algorithms; ``outcome.stats`` carries
    per-answer standard errors under ``"estimates"``.  Estimates
    converge to the exact probabilities at the usual ``1/sqrt(n)``
    rate; ranks of well-separated answers stabilise much earlier.

    Args:
        samples: number of worlds to draw.
        rng: source of randomness (seed it for reproducibility).
        collector: metrics collector; records the sampling timer plus
            worlds-sampled / SLCA-hit counters and the per-world
            answer-count histogram (docs/OBSERVABILITY.md).
    """
    if k <= 0:
        raise QueryError(f"k must be positive, got {k}")
    if samples <= 0:
        raise QueryError(f"samples must be positive, got {samples}")
    terms = index.query_terms(keywords)
    rng = rng or random.Random()
    encoded = index.encoded
    document = encoded.document
    observed = collector.enabled

    hit_counts: Dict[int, int] = {}
    with collector.time("monte_carlo.sampling"):
        for _ in range(samples):
            world = sample_possible_world(document, rng)
            answers = 0
            for det_node in slca_of_world(world.root, terms):
                node_id = det_node.source_id
                hit_counts[node_id] = hit_counts.get(node_id, 0) + 1
                answers += 1
            if observed:
                collector.observe("monte_carlo.world_answers", answers)
    if observed:
        collector.count("monte_carlo.worlds_sampled", samples)
        collector.count("monte_carlo.slca_hits",
                        sum(hit_counts.values()))

    estimates: List[EstimatedResult] = []
    for node_id, hits in hit_counts.items():
        p_hat = hits / samples
        stderr = math.sqrt(p_hat * (1.0 - p_hat) / samples)
        result = SLCAResult(code=encoded.codes[node_id],
                            probability=p_hat,
                            node=document.node_by_id(node_id))
        estimates.append(EstimatedResult(result, stderr, hits, samples))

    estimates.sort(key=lambda e: order.sort_key(e.result))
    top = estimates[:k]
    stats = {
        "algorithm": "monte_carlo",
        "samples": samples,
        "distinct_answers": len(estimates),
        "estimates": top,
    }
    if observed:
        stats["metrics"] = collector.snapshot()
    return SearchOutcome(results=[e.result for e in top], stats=stats)
