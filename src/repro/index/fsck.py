"""fsck for database directories: classify, quarantine, salvage.

:func:`fsck_database` walks a database directory written by
:func:`repro.index.storage.save_database` (or a legacy flat directory)
and triages every corruption it finds into a typed
:class:`FsckFinding` — a missing file, a checksum mismatch, a
truncated or malformed postings line, a posting id outside the
document, a malformed p-document element — each carrying a
``path[:line]`` diagnostic.

With ``repair=True`` it acts on the triage, always through the same
crash-safe primitives the writer uses (a repair interrupted halfway is
just another crash the *next* fsck recovers from):

* bad postings lines and malformed document subtrees are copied into
  ``quarantine/<generation>/`` next to a ``REPORT.txt`` of
  ``path:line`` diagnostics;
* when the snapshot's *document* is bit-for-bit intact (its manifest
  checksum matches), the postings and metadata are rebuilt from it
  into a **new** generation — by construction the rebuilt index
  answers every query exactly like the pristine database;
* when the document itself is damaged, ``CURRENT`` is rolled back to
  the newest older generation that verifies end-to-end;
* a damaged document is **never** silently patched into a loadable
  database: if no generation survives, the report says unrecoverable
  (``document_ok`` false, nonzero exit) rather than serving wrong
  answers.

Legacy flat directories carry no manifest, so exactness cannot be
proven; there fsck falls back to lenient salvage
(:func:`repro.prxml.parser.parse_pxml_salvage`), quarantines malformed
subtrees, rebuilds the postings from the surviving document, and
migrates the result into the snapshot layout — loudly marked as
``document_degraded`` when anything was dropped.

See docs/STORAGE.md for the corruption taxonomy and recovery matrix.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ParseError, StorageError
from repro.index.storage import (CURRENT_FILE, DATA_FILES, MANIFEST_FILE,
                                 SNAPSHOTS_DIR, STAGING_PREFIX, Database,
                                 _atomic_write, _fsync_dir,
                                 current_generation, is_legacy_layout,
                                 list_generations, parse_posting_line,
                                 read_manifest, save_database,
                                 snapshot_path, verify_snapshot)
from repro.obs.logging import get_logger
from repro.obs.metrics import Collector, NULL_COLLECTOR
from repro.prxml.parser import (SalvageDrop, parse_pxml_file,
                                parse_pxml_salvage)

_log = get_logger("fsck")

#: Quarantine directory name inside a database directory.
QUARANTINE_DIR = "quarantine"

# -- corruption taxonomy (docs/STORAGE.md) ------------------------------------

KIND_BAD_CURRENT = "bad_current"
KIND_STALE_STAGING = "stale_staging"
KIND_BAD_MANIFEST = "bad_manifest"
KIND_MISSING_FILE = "missing_file"
KIND_SIZE_MISMATCH = "size_mismatch"
KIND_CHECKSUM_MISMATCH = "checksum_mismatch"
KIND_MALFORMED_DOCUMENT = "malformed_document"
KIND_MALFORMED_ELEMENT = "malformed_element"
KIND_TRUNCATED_LINE = "truncated_line"
KIND_BAD_RECORD = "bad_record"
KIND_POSTING_OUT_OF_RANGE = "posting_out_of_range"
KIND_BAD_META = "bad_meta"
KIND_COUNT_MISMATCH = "count_mismatch"
KIND_FALLBACK = "generation_fallback"
KIND_DOCUMENT_DEGRADED = "document_degraded"

#: Internal triage verdicts for one generation.
_INTACT, _REPAIRABLE, _UNUSABLE = "intact", "repairable", "unusable"


@dataclass(frozen=True)
class FsckFinding:
    """One classified corruption (or recovery action)."""

    kind: str
    path: str
    detail: str
    line: Optional[int] = None

    def describe(self) -> str:
        """Conventional ``path[:line]: [kind] detail`` diagnostic."""
        where = f"{self.path}:{self.line}" if self.line else self.path
        return f"{where}: [{self.kind}] {self.detail}"


@dataclass
class FsckReport:
    """Everything one fsck run found and did.

    ``document_ok`` is the load-bearing verdict: True means a
    trustworthy document survives (possibly after repair/rollback) and
    the database answers queries exactly; False means the document is
    unrecoverable and the CLI exits nonzero.
    """

    directory: str
    generation: Optional[str] = None
    findings: List[FsckFinding] = field(default_factory=list)
    document_ok: bool = False
    repaired: bool = False
    recovered_generation: Optional[str] = None
    quarantine_dir: Optional[str] = None
    quarantined: List[str] = field(default_factory=list)
    scanned_generations: List[str] = field(default_factory=list)
    legacy: bool = False

    @property
    def clean(self) -> bool:
        """No corruption at all (recovery-action findings excluded)."""
        actions = (KIND_FALLBACK,)
        return not any(finding.kind not in actions
                       for finding in self.findings)

    def exit_code(self) -> int:
        """0 while a trustworthy document survives, 1 otherwise."""
        return 0 if self.document_ok else 1

    def add(self, kind: str, path: str, detail: str,
            line: Optional[int] = None) -> None:
        self.findings.append(FsckFinding(kind=kind, path=path,
                                         detail=detail, line=line))

    def lines(self) -> List[str]:
        """Human-readable report (the ``repro fsck`` output)."""
        out = [finding.describe() for finding in self.findings]
        if self.clean:
            out.append(f"{self.directory}: clean "
                       f"(generation {self.generation or 'legacy'})")
        if self.quarantined:
            out.append(f"quarantined {len(self.quarantined)} item(s) "
                       f"under {self.quarantine_dir}")
        if self.repaired:
            out.append(f"repaired: generation "
                       f"{self.recovered_generation} is now current")
        if not self.document_ok:
            out.append("UNRECOVERABLE: no generation holds a "
                       "trustworthy document (restore from a backup "
                       "or re-index the source document)")
        elif not self.clean and not self.repaired:
            out.append("run 'repro fsck --repair' to quarantine and "
                       "rebuild")
        return out


# -- scanning -----------------------------------------------------------------


@dataclass
class _PostingsScan:
    """Line-level triage of one postings.jsonl file."""

    findings: List[FsckFinding] = field(default_factory=list)
    bad_lines: List[Tuple[int, str]] = field(default_factory=list)
    terms: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def _scan_postings(postings_path: str, node_count: int) -> _PostingsScan:
    """Classify every line of a postings file without giving up early."""
    scan = _PostingsScan()
    try:
        with open(postings_path, encoding="utf-8", errors="replace") \
                as handle:
            body = handle.read()
    except OSError as exc:
        scan.findings.append(FsckFinding(
            kind=KIND_MISSING_FILE, path=postings_path,
            detail=f"cannot read: {exc}"))
        return scan
    seen: Dict[str, int] = {}
    lines = body.split("\n")
    truncated_tail = bool(body) and not body.endswith("\n")
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            term, ids = parse_posting_line(postings_path, number,
                                           line)
        except StorageError as exc:
            kind = (KIND_TRUNCATED_LINE
                    if truncated_tail and number == len(lines)
                    else KIND_BAD_RECORD)
            scan.findings.append(FsckFinding(
                kind=kind, path=postings_path, line=number,
                detail=_bare_detail(str(exc))))
            scan.bad_lines.append((number, line))
            continue
        if term in seen:
            scan.findings.append(FsckFinding(
                kind=KIND_BAD_RECORD, path=postings_path, line=number,
                detail=f"term {term!r} already appeared on line "
                       f"{seen[term]}"))
            scan.bad_lines.append((number, line))
            continue
        seen[term] = number
        scan.terms += 1
        out_of_range = [i for i in ids if i < 0 or i >= node_count]
        if out_of_range:
            scan.findings.append(FsckFinding(
                kind=KIND_POSTING_OUT_OF_RANGE, path=postings_path,
                line=number,
                detail=f"term {term!r}: posting id"
                       f"{'s' if len(out_of_range) > 1 else ''} "
                       f"{out_of_range[:5]} outside the document's "
                       f"{node_count} nodes"))
            scan.bad_lines.append((number, line))
        elif list(ids) != sorted(set(ids)):
            scan.findings.append(FsckFinding(
                kind=KIND_BAD_RECORD, path=postings_path, line=number,
                detail=f"term {term!r}: ids are not strictly "
                       f"increasing"))
            scan.bad_lines.append((number, line))
    return scan


def _bare_detail(message: str) -> str:
    """Strip the ``path:line:`` prefix a StorageError already carries."""
    marker = ": "
    head, sep, tail = message.partition(marker)
    if sep and (head.endswith(".jsonl") or head.rsplit(":", 1)[-1].isdigit()):
        # message looked like "<path>:<line>: detail"
        return tail
    return message


def _scan_meta(meta_path: str, nodes: int,
               terms: int) -> List[FsckFinding]:
    """Classify a meta.json against the actual document and postings."""
    findings: List[FsckFinding] = []
    try:
        with open(meta_path, encoding="utf-8") as handle:
            meta = json.load(handle)
    except FileNotFoundError:
        findings.append(FsckFinding(KIND_MISSING_FILE, meta_path,
                                    "missing"))
        return findings
    except (OSError, ValueError) as exc:
        # ValueError covers JSONDecodeError and the UnicodeDecodeError
        # binary garbage produces.
        findings.append(FsckFinding(KIND_BAD_META, meta_path,
                                    f"unreadable: {exc}"))
        return findings
    if not isinstance(meta, dict):
        findings.append(FsckFinding(KIND_BAD_META, meta_path,
                                    "not a JSON object"))
        return findings
    from repro.index.storage import FORMAT_VERSION
    if meta.get("version") != FORMAT_VERSION:
        findings.append(FsckFinding(
            KIND_BAD_META, meta_path,
            f"format version {meta.get('version')!r} (this library "
            f"writes {FORMAT_VERSION})"))
    if meta.get("nodes") != nodes:
        findings.append(FsckFinding(
            KIND_COUNT_MISMATCH, meta_path,
            f"records {meta.get('nodes')!r} nodes but the document "
            f"has {nodes}"))
    if meta.get("terms") != terms:
        findings.append(FsckFinding(
            KIND_COUNT_MISMATCH, meta_path,
            f"records {meta.get('terms')!r} terms but the postings "
            f"hold {terms}"))
    return findings


def _triage_snapshot(snapshot_dir: str, report: FsckReport
                     ) -> Tuple[str, Optional[object], _PostingsScan]:
    """Classify one snapshot generation.

    Returns ``(verdict, document, postings_scan)`` where verdict is
    ``_INTACT`` / ``_REPAIRABLE`` / ``_UNUSABLE`` and ``document`` is
    the parsed p-document whenever it can be trusted (its manifest
    checksum matched and it parsed).
    """
    doc_path = os.path.join(snapshot_dir, DATA_FILES[0])
    postings_path = os.path.join(snapshot_dir, DATA_FILES[1])
    meta_path = os.path.join(snapshot_dir, DATA_FILES[2])
    try:
        manifest = read_manifest(snapshot_dir)
    except StorageError as exc:
        report.add(KIND_BAD_MANIFEST,
                   os.path.join(snapshot_dir, MANIFEST_FILE), str(exc))
        return _UNUSABLE, None, _PostingsScan()
    problems = verify_snapshot(snapshot_dir, manifest)
    document_trusted = True
    damaged = set()
    for name, kind, detail in problems:
        report.add(kind, os.path.join(snapshot_dir, name), detail)
        damaged.add(name)
    if DATA_FILES[0] in damaged:
        document_trusted = False

    document = None
    if document_trusted:
        try:
            document = parse_pxml_file(doc_path)
        except ParseError as exc:
            # A checksum-clean file that fails to parse was saved
            # corrupt (or the library regressed) — either way the
            # document cannot be trusted.
            report.add(KIND_MALFORMED_DOCUMENT, doc_path, str(exc))
            document_trusted = False
    if not document_trusted:
        return _UNUSABLE, None, _PostingsScan()

    scan = _PostingsScan()
    if os.path.exists(postings_path):
        scan = _scan_postings(postings_path, len(document))
        report.findings.extend(scan.findings)
    meta_findings = _scan_meta(meta_path, len(document), scan.terms)
    # A postings file already known damaged makes the term-count
    # mismatch in meta.json derivative noise, but the findings stay —
    # each names exactly what will be rebuilt.
    report.findings.extend(meta_findings)

    if not damaged and scan.clean and not meta_findings:
        return _INTACT, document, scan
    return _REPAIRABLE, document, scan


# -- quarantine ---------------------------------------------------------------


def _quarantine(directory: str, generation: str, report: FsckReport,
                scan: _PostingsScan,
                drops: Optional[List[SalvageDrop]] = None) -> None:
    """Preserve the bad bytes and their diagnostics before rebuilding."""
    if not scan.bad_lines and not drops:
        return
    base = os.path.join(directory, QUARANTINE_DIR, generation)
    suffix = 1
    target = base
    while os.path.exists(target):
        suffix += 1
        target = f"{base}-{suffix}"
    os.makedirs(target)
    diagnostics: List[str] = []
    if scan.bad_lines:
        body = "".join(line + "\n" for _num, line in scan.bad_lines)
        path = os.path.join(target, "postings.bad.jsonl")
        _atomic_write(path, body)
        report.quarantined.append(path)
        diagnostics.extend(
            finding.describe() for finding in scan.findings)
    for number, drop in enumerate(drops or (), start=1):
        path = os.path.join(target, f"subtree-{number:03d}.xml")
        _atomic_write(path, drop.xml_text + "\n")
        report.quarantined.append(path)
        diagnostics.append(drop.describe())
    _atomic_write(os.path.join(target, "REPORT.txt"),
                  "".join(line + "\n" for line in diagnostics))
    report.quarantine_dir = os.path.join(directory, QUARANTINE_DIR)


# -- the fsck entry point -----------------------------------------------------


def fsck_database(directory, repair: bool = False,
                  collector: Collector = NULL_COLLECTOR) -> FsckReport:
    """Triage (and with ``repair=True``, recover) a database directory.

    Raises:
        StorageError: only when ``directory`` is not a database
            directory at all; every corruption inside one is reported,
            not raised.
    """
    directory = os.fspath(directory)
    report = FsckReport(directory=directory)
    if collector.enabled:
        collector.count("storage.fsck.runs")

    with collector.time("storage.fsck"):
        _sweep_staging(directory, report, repair)

        generation = _resolve_current(directory, report)
        if generation is None and is_legacy_layout(directory):
            _fsck_legacy(directory, report, repair)
        elif generation is None and not list_generations(directory):
            raise StorageError(
                f"{directory} is not a database directory: no "
                f"{CURRENT_FILE} pointer, no snapshots and no legacy "
                f"{DATA_FILES[2]}")
        else:
            _fsck_snapshots(directory, generation, report, repair)

    if collector.enabled:
        collector.count("storage.fsck.findings", len(report.findings))
        if report.repaired:
            collector.count("storage.fsck.repairs")
    return report


def _sweep_staging(directory: str, report: FsckReport,
                   repair: bool) -> None:
    snapshots = os.path.join(directory, SNAPSHOTS_DIR)
    try:
        names = sorted(os.listdir(snapshots))
    except OSError:
        return
    for name in names:
        if not name.startswith(STAGING_PREFIX):
            continue
        path = os.path.join(snapshots, name)
        report.add(KIND_STALE_STAGING, path,
                   "interrupted save left a staging directory"
                   + ("; removed" if repair else ""))
        if repair:
            shutil.rmtree(path, ignore_errors=True)


def _resolve_current(directory: str,
                     report: FsckReport) -> Optional[str]:
    try:
        return current_generation(directory)
    except StorageError as exc:
        report.add(KIND_BAD_CURRENT,
                   os.path.join(directory, CURRENT_FILE), str(exc))
        return None


def _fsck_snapshots(directory: str, generation: Optional[str],
                    report: FsckReport, repair: bool) -> None:
    """The snapshot-layout path: triage current, else fall back."""
    candidates: List[str] = []
    if generation is not None:
        snapshot = snapshot_path(directory, generation)
        if os.path.isdir(snapshot):
            candidates.append(generation)
        else:
            report.add(KIND_MISSING_FILE, snapshot,
                       f"{CURRENT_FILE} points at generation "
                       f"{generation!r} but it does not exist")
    for name in reversed(list_generations(directory)):
        if name not in candidates:
            candidates.append(name)

    report.generation = generation
    for position, name in enumerate(candidates):
        snapshot = snapshot_path(directory, name)
        report.scanned_generations.append(name)
        verdict, document, scan = _triage_snapshot(snapshot, report)
        if verdict == _UNUSABLE:
            continue
        if position > 0:
            report.add(KIND_FALLBACK, snapshot,
                       f"generation {name} is the newest usable one; "
                       f"{'rolling' if repair else 'run --repair to roll'}"
                       f" CURRENT back to it")
        if verdict == _INTACT:
            report.document_ok = True
            if name != generation and repair:
                _flip_current(directory, name)
                report.repaired = True
                report.recovered_generation = name
            return
        # _REPAIRABLE: the document is trustworthy, rebuild around it.
        report.document_ok = True
        if repair:
            _quarantine(directory, name, report, scan)
            rebuilt = Database.from_document(document)
            new_generation = save_database(rebuilt, directory)
            report.repaired = True
            report.recovered_generation = new_generation
            _log.info("rebuilt generation %s from %s's document",
                      new_generation, name)
        return
    # No candidate had a trustworthy document.
    report.document_ok = False


def _fsck_legacy(directory: str, report: FsckReport,
                 repair: bool) -> None:
    """The pre-snapshot flat layout: no manifest, so salvage leniently."""
    report.legacy = True
    doc_path = os.path.join(directory, DATA_FILES[0])
    drops: List[SalvageDrop] = []
    try:
        document = parse_pxml_file(doc_path)
    except ParseError as strict_error:
        try:
            with open(doc_path, "rb") as handle:
                text = handle.read()
            document, drops = parse_pxml_salvage(text, path=doc_path)
        except (OSError, ParseError):
            report.add(KIND_MALFORMED_DOCUMENT, doc_path,
                       str(strict_error))
            report.document_ok = False
            return
        for drop in drops:
            report.add(KIND_MALFORMED_ELEMENT, drop.position.path,
                       drop.reason, line=drop.position.line)
        report.add(KIND_DOCUMENT_DEGRADED, doc_path,
                   f"salvaged by dropping {len(drops)} malformed "
                   f"subtree(s); answers may differ from the original "
                   f"document")
    scan = _scan_postings(os.path.join(directory, DATA_FILES[1]),
                          len(document))
    report.findings.extend(scan.findings)
    report.findings.extend(
        _scan_meta(os.path.join(directory, DATA_FILES[2]),
                   len(document), scan.terms))
    report.document_ok = True
    if repair and (not report.clean or drops):
        _quarantine(directory, "legacy", report, scan, drops)
        rebuilt = Database.from_document(document)
        new_generation = save_database(rebuilt, directory)
        report.repaired = True
        report.recovered_generation = new_generation
        _log.info("migrated legacy directory %s into snapshot "
                  "generation %s", directory, new_generation)


def _flip_current(directory: str, generation: str) -> None:
    """Atomically point ``CURRENT`` at an existing generation."""
    _atomic_write(os.path.join(directory, CURRENT_FILE),
                  generation + "\n")
    _fsync_dir(directory)
