"""Keyword indexing over encoded p-documents.

Builds the inverted keyword lists both algorithms scan: for every term
occurring in an ordinary node's tag or text, a document-ordered list of
matching nodes.  :mod:`repro.index.matchlist` merges per-keyword lists
into per-node keyword bitmasks (the unit of work of the algorithms), and
:mod:`repro.index.storage` persists an index next to its document.
"""

from repro.index.tokenizer import tokenize, node_terms
from repro.index.inverted import InvertedIndex, build_index
from repro.index.matchlist import (
    MatchEntry,
    MatchList,
    build_match_entries,
    keyword_code_lists,
)
from repro.index.storage import save_database, load_database, Database

__all__ = [
    "tokenize",
    "node_terms",
    "InvertedIndex",
    "build_index",
    "MatchEntry",
    "MatchList",
    "build_match_entries",
    "keyword_code_lists",
    "save_database",
    "load_database",
    "Database",
]
