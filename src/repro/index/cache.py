"""Reusable per-document query caches.

Every ``topk_search`` against the same prepared index repeats the same
front-of-query work: normalising terms, merging per-term postings into
masked match entries, materialising per-keyword Dewey lists for the
seed computation, and re-deriving per-node path probabilities (the
product of the node's PrLink — the per-node fragment every
distribution table starts from).  All of it depends only on the
document and the normalised term set, never on ``k``, the algorithm or
the collector — so a service holding one index can reuse it across
queries.

This module provides the cache plumbing the search stack threads
through (mirroring the ``NULL_COLLECTOR`` / ``NULL_SANITIZER``
null-object idiom):

* :class:`LRUCache` — a thread-safe bounded map with hit / miss /
  eviction counters, reported both locally (:meth:`LRUCache.stats`)
  and through a :class:`repro.obs.MetricsCollector` under
  ``service.cache.<name>.*``;
* :class:`QueryCaches` — the bundle the algorithms consume: a match
  -entry cache keyed by the normalised term tuple, a per-keyword
  Dewey-list cache, and the shared path-probability memo;
* :data:`NULL_CACHES` — the do-nothing default; an uncached query pays
  one attribute load per hook point, exactly like the null collector.

Cached values are shared between queries and must be treated as
immutable by consumers; the scan machinery already does (a
:class:`repro.index.matchlist.MatchList` keeps its consumption flags
in a private bytearray, never in the shared entries).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional, Union

from repro.analysis.concurrency.witness import (InstrumentedLock,
                                                NULL_WITNESS, WitnessLike)
from repro.encoding.dewey import DeweyCode
from repro.obs.metrics import Collector, NULL_COLLECTOR

#: Default number of distinct term sets a cache retains.
DEFAULT_CACHE_SIZE = 256


class LRUCache:
    """Bounded least-recently-used map with observable counters.

    ``get``/``put`` are guarded by a lock so a service can share one
    cache across a thread pool.  Counters accumulate locally and, when
    ``collector.enabled``, as ``service.cache.<name>.hits`` /
    ``.misses`` / ``.evictions``.
    """

    __slots__ = ("name", "capacity", "collector", "hits", "misses",
                 "evictions", "_data", "_lock", "_witness", "_lock_name")

    def __init__(self, name: str, capacity: int = DEFAULT_CACHE_SIZE,
                 collector: Collector = NULL_COLLECTOR,
                 witness: WitnessLike = NULL_WITNESS):
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive, "
                             f"got {capacity}")
        self.name = name
        self.capacity = capacity
        self.collector = collector
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._witness = witness
        self._lock_name = f"LRUCache._lock:{name}"
        # With a witness attached the lock is the instrumented wrapper
        # and every _data touch asserts the lock is held; the default
        # is a plain lock and one enabled-attribute load per method.
        if witness.enabled:
            self._lock: Any = InstrumentedLock(self._lock_name, witness)
        else:
            self._lock = threading.Lock()

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value (refreshed as most recent), or ``None``."""
        with self._lock:
            if self._witness.enabled:
                self._witness.assert_holding(
                    self._lock_name, f"LRUCache[{self.name}]._data")
            value = self._data.get(key)
            if value is None:
                self.misses += 1
                if self.collector.enabled:
                    self.collector.count(
                        f"service.cache.{self.name}.misses")
                    self.collector.mark(
                        f"cache.{self.name}.misses")
                return None
            self._data.move_to_end(key)
            self.hits += 1
            if self.collector.enabled:
                self.collector.count(f"service.cache.{self.name}.hits")
                self.collector.mark(f"cache.{self.name}.hits")
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) ``key``, evicting the LRU entry on
        overflow.  ``None`` values are not cacheable — ``get`` uses
        ``None`` as its miss sentinel."""
        if value is None:
            raise ValueError("cannot cache None")
        with self._lock:
            if self._witness.enabled:
                self._witness.assert_holding(
                    self._lock_name, f"LRUCache[{self.name}]._data")
            if key in self._data:
                self._data.move_to_end(key)
                self._data[key] = value
                return
            self._data[key] = value
            if len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1
                if self.collector.enabled:
                    self.collector.count(
                        f"service.cache.{self.name}.evictions")

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def clear(self) -> None:
        """Drop every entry (counters are kept — they are cumulative)."""
        with self._lock:
            if self._witness.enabled:
                self._witness.assert_holding(
                    self._lock_name, f"LRUCache[{self.name}]._data")
            self._data.clear()

    def stats(self) -> Dict[str, int]:
        """Cumulative counters plus the current occupancy.

        Reads under the lock: the hot path mutates the counters and
        the map together, and a stats row must not pair a pre-eviction
        size with a post-eviction counter (R008).
        """
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions,
                    "size": len(self._data),
                    "capacity": self.capacity}


class QueryCaches:
    """The prepared-input caches one service shares across queries.

    Attributes:
        match_entries: normalised term tuple -> the merged, document-
            ordered :class:`~repro.index.matchlist.MatchEntry` list
            (the input both PrStack and EagerTopK scan).
        code_lists: single term -> its Dewey code list (the per-keyword
            seed input of EagerTopK); sized ``per_term_factor`` times
            larger than ``match_entries`` because queries share terms
            far more often than whole term sets.
        path_probs: node code -> product of its PrLink — the per-node
            distribution fragment reused by EagerTopK's bound
            computation.  A plain dict (one float per distinct node
            ever touched, bounded by the document size), shared across
            queries because path probabilities are query-independent.
    """

    enabled = True

    #: ``code_lists`` holds this many entries per ``match_entries`` slot.
    PER_TERM_FACTOR = 4

    __slots__ = ("match_entries", "code_lists", "path_probs")

    def __init__(self, capacity: int = DEFAULT_CACHE_SIZE,
                 collector: Collector = NULL_COLLECTOR,
                 witness: WitnessLike = NULL_WITNESS):
        self.match_entries = LRUCache("match_entries", capacity,
                                      collector, witness)
        self.code_lists = LRUCache("code_lists",
                                   capacity * self.PER_TERM_FACTOR,
                                   collector, witness)
        # Deliberately lock-free: a GIL-atomic idempotent memo — every
        # writer stores the same value for a key, so a lost update
        # costs one recomputation, never a wrong answer.
        self.path_probs: Dict[DeweyCode, float] = {}

    def clear(self) -> None:
        """Drop all cached values (e.g. after swapping the index)."""
        self.match_entries.clear()
        self.code_lists.clear()
        self.path_probs.clear()

    def stats(self) -> Dict[str, object]:
        """Per-cache counters, the ``cache`` block of service reports."""
        return {
            "match_entries": self.match_entries.stats(),
            "code_lists": self.code_lists.stats(),
            "path_probs": {"size": len(self.path_probs)},
        }


class NullQueryCaches:
    """The do-nothing cache bundle: the default on every query path.

    Consumers guard on ``caches.enabled`` (a class attribute, like the
    null collector's) before touching any cache, so this object needs
    no methods at all.
    """

    enabled = False

    __slots__ = ()


#: Shared no-op instance; search signatures default their ``caches``
#: parameter to this.
NULL_CACHES = NullQueryCaches()

#: What search signatures accept: live caches or the no-op.
CachesLike = Union[QueryCaches, NullQueryCaches]
