"""The inverted keyword index.

Maps every term to the document-ordered list of ordinary nodes whose tag
or text contains it.  Node ids are preorder positions, so ascending id
order *is* document (Dewey) order — the scan order PrStack relies on.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List, Optional, Tuple

from repro.encoding.encoder import EncodedDocument
from repro.exceptions import IndexError_, QueryError
from repro.index.tokenizer import node_terms, normalize_query
from repro.obs.metrics import NULL_COLLECTOR


class InvertedIndex:
    """Term -> sorted node-id postings over one encoded document.

    Besides the tokenised term postings the index keeps *exact-label*
    postings (tag name -> ordinary node ids), which the twig engine
    uses to find its candidate nodes.
    """

    def __init__(self, encoded: EncodedDocument,
                 postings: Dict[str, array],
                 label_postings: Optional[Dict[str, array]] = None):
        self.encoded = encoded
        self._postings = postings
        # Normalisation happens here and nowhere else: a missing map is
        # derived from the document, and label keys are casefolded so
        # label lookups match the case-insensitive term postings.
        if label_postings is None:
            self._labels = _label_postings_of(encoded)
        else:
            self._labels = {label.lower(): ids
                            for label, ids in label_postings.items()}

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_document(cls, encoded: EncodedDocument) -> "InvertedIndex":
        """Build postings over every ordinary node's tag and text."""
        postings: Dict[str, List[int]] = {}
        for node in encoded.document.iter_preorder():
            for term in set(node_terms(node)):
                postings.setdefault(term, []).append(node.node_id)
        packed = {term: array("q", ids) for term, ids in postings.items()}
        return cls(encoded, packed)

    # -- queries ----------------------------------------------------------------

    def postings(self, term: str) -> array:
        """Document-ordered node ids matching ``term`` (empty if absent)."""
        return self._postings.get(term.lower(), array("q"))

    def label_postings(self, label: str) -> array:
        """Document-ordered ids of ordinary nodes with exactly this tag.

        The whole tag must match (tokenised sub-terms do not count) but,
        like term postings, the comparison is case-insensitive — the
        index boundary applies one normalisation everywhere."""
        return self._labels.get(label.lower(), array("q"))

    def ordinary_ids(self) -> array:
        """All ordinary node ids in document order (twig wildcard
        steps fall back to this)."""
        return array("q", (node.node_id
                           for node in self.encoded.document.iter_ordinary()))

    def document_frequency(self, term: str) -> int:
        """How many nodes match ``term``."""
        return len(self.postings(term))

    def vocabulary(self) -> List[str]:
        """All indexed terms, sorted."""
        return sorted(self._postings)

    def __contains__(self, term: str) -> bool:
        return term.lower() in self._postings

    def __len__(self) -> int:
        return len(self._postings)

    def query_terms(self, keywords: Iterable[str]) -> List[str]:
        """Normalise a keyword query against this index.

        Raises:
            QueryError: if the query has no terms at all.
        """
        terms = normalize_query(keywords)
        if not terms:
            raise QueryError("keyword query contains no terms")
        return terms

    def keyword_lists(self, keywords: Iterable[str],
                      collector=NULL_COLLECTOR
                      ) -> Tuple[List[str], List[array]]:
        """The per-term posting lists for a query, shortest-first metadata
        left to callers.  Terms missing from the index yield empty lists
        (the query then has zero answers everywhere).

        ``collector`` records per-query lookup timings
        (``index.lookup``) and the posting-list length distribution
        (``index.postings_length``)."""
        terms = self.query_terms(keywords)
        with collector.time("index.lookup"):
            lists = [self.postings(term) for term in terms]
        if collector.enabled:
            collector.count("index.lookups", len(terms))
            for postings in lists:
                collector.observe("index.postings_length", len(postings))
        return terms, lists

    # -- integrity ---------------------------------------------------------------

    def check_integrity(self) -> None:
        """Verify postings are strictly increasing and ids are in range.

        Raises:
            IndexError_: on any inconsistency (e.g. a stale index loaded
                against a different document).
        """
        size = len(self.encoded.document)
        for term, ids in self._postings.items():
            previous = -1
            for node_id in ids:
                if not 0 <= node_id < size:
                    raise IndexError_(
                        f"term {term!r}: node id {node_id} out of range")
                if node_id <= previous:
                    raise IndexError_(
                        f"term {term!r}: postings not strictly increasing")
                previous = node_id

    def raw_postings(self) -> Dict[str, array]:
        """Internal postings map (used by storage)."""
        return self._postings


def _label_postings_of(encoded: EncodedDocument) -> Dict[str, array]:
    labels: Dict[str, List[int]] = {}
    for node in encoded.document.iter_ordinary():
        labels.setdefault(node.label.lower(), []).append(node.node_id)
    return {label: array("q", ids) for label, ids in labels.items()}


def build_index(encoded: EncodedDocument) -> InvertedIndex:
    """Convenience wrapper over :meth:`InvertedIndex.from_document`."""
    return InvertedIndex.from_document(encoded)
