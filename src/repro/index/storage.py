"""Persistence: save and load a document + its inverted index.

A *database directory* contains:

* ``document.pxml`` — the p-document in the XML text format;
* ``postings.jsonl`` — one JSON object per line: ``{"t": term, "ids": [...]}``;
* ``meta.json`` — format version and integrity counters.

Loading re-encodes the document (Dewey codes are deterministic, so they
never need to be stored) and verifies the posting lists against it.
"""

from __future__ import annotations

import json
import os
from array import array
from typing import Dict

from repro.encoding.encoder import EncodedDocument, encode_document
from repro.exceptions import StorageError
from repro.index.inverted import InvertedIndex
from repro.prxml.parser import parse_pxml_file
from repro.prxml.serializer import write_pxml_file

FORMAT_VERSION = 1

_DOCUMENT_FILE = "document.pxml"
_POSTINGS_FILE = "postings.jsonl"
_META_FILE = "meta.json"


class Database:
    """A loaded document + encoding + inverted index bundle."""

    def __init__(self, encoded: EncodedDocument, index: InvertedIndex):
        self.encoded = encoded
        self.index = index

    @property
    def document(self):
        """The underlying :class:`PDocument`."""
        return self.encoded.document

    @classmethod
    def from_document(cls, document) -> "Database":
        """Encode and index an in-memory document."""
        encoded = encode_document(document)
        return cls(encoded, InvertedIndex.from_document(encoded))


def save_database(database: Database, directory) -> None:
    """Write a database directory (created if missing)."""
    try:
        os.makedirs(directory, exist_ok=True)
        write_pxml_file(database.document,
                        os.path.join(directory, _DOCUMENT_FILE))
        with open(os.path.join(directory, _POSTINGS_FILE), "w",
                  encoding="utf-8") as handle:
            for term, ids in sorted(database.index.raw_postings().items()):
                if not len(ids):
                    # A term with no matching node cannot come from
                    # indexing a document; writing it would only defer
                    # the failure to load time.  Reject symmetrically
                    # with the loader.
                    raise StorageError(
                        f"term {term!r} has an empty posting list; "
                        f"refusing to persist a corrupt index")
                # ensure_ascii=False keeps non-ASCII terms (e.g. 'café')
                # as readable UTF-8 in the JSONL, matching the file's
                # declared encoding instead of double-escaping.
                json.dump({"t": term, "ids": list(ids)}, handle,
                          ensure_ascii=False)
                handle.write("\n")
        meta = {
            "version": FORMAT_VERSION,
            "nodes": len(database.document),
            "terms": len(database.index),
        }
        with open(os.path.join(directory, _META_FILE), "w",
                  encoding="utf-8") as handle:
            json.dump(meta, handle, indent=2)
    except OSError as exc:
        raise StorageError(f"cannot write database to {directory}: {exc}"
                           ) from exc


def load_database(directory) -> Database:
    """Load a database directory written by :func:`save_database`."""
    meta_path = os.path.join(directory, _META_FILE)
    try:
        with open(meta_path, encoding="utf-8") as handle:
            meta = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise StorageError(f"cannot read {meta_path}: {exc}") from exc
    if meta.get("version") != FORMAT_VERSION:
        raise StorageError(
            f"unsupported database version {meta.get('version')!r} "
            f"(expected {FORMAT_VERSION})")

    document = parse_pxml_file(os.path.join(directory, _DOCUMENT_FILE))
    if len(document) != meta.get("nodes"):
        raise StorageError(
            f"document has {len(document)} nodes but metadata recorded "
            f"{meta.get('nodes')}")
    encoded = encode_document(document)

    postings: Dict[str, array] = {}
    postings_path = os.path.join(directory, _POSTINGS_FILE)
    try:
        with open(postings_path, encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                    term = record["t"]
                    ids = array("q", record["ids"])
                except (json.JSONDecodeError, KeyError, TypeError) as exc:
                    raise StorageError(
                        f"{postings_path}:{line_number}: bad record: {exc}"
                    ) from exc
                if not isinstance(term, str):
                    raise StorageError(
                        f"{postings_path}:{line_number}: term "
                        f"{term!r} is not a string")
                if not len(ids):
                    raise StorageError(
                        f"{postings_path}:{line_number}: term "
                        f"{term!r} has an empty posting list")
                if term in postings:
                    raise StorageError(
                        f"{postings_path}:{line_number}: term "
                        f"{term!r} appears twice")
                postings[term] = ids
    except OSError as exc:
        raise StorageError(f"cannot read {postings_path}: {exc}") from exc

    if len(postings) != meta.get("terms"):
        raise StorageError(
            f"index has {len(postings)} terms but metadata recorded "
            f"{meta.get('terms')}")
    index = InvertedIndex(encoded, postings)
    index.check_integrity()
    return Database(encoded, index)
