"""Persistence: crash-safe, checksummed snapshots of a database.

A *database directory* holds versioned, immutable snapshots plus one
atomic pointer to the active generation::

    dbdir/
      CURRENT                    # the active generation name, e.g. g00000002
      snapshots/
        g00000001/
          document.pxml          # the p-document in the XML text format
          postings.jsonl         # one JSON object per line: {"t": term, "ids": [...]}
          meta.json              # format version and integrity counters
          MANIFEST.json          # repro.manifest/v1: per-file size + SHA-256
        g00000002/
          ...

:func:`save_database` writes every file of a new generation to a
staging directory (each file through :func:`_atomic_write`: temp name,
flush, fsync, rename), fsyncs, atomically renames the staging directory
into ``snapshots/<generation>/`` and only then flips ``CURRENT`` with
one more atomic rename.  A crash at *any* byte therefore leaves the
previous generation fully intact and loadable — at worst a stale
staging directory remains, which the next save (or ``repro fsck``)
sweeps away.

:func:`load_database` resolves ``CURRENT``, verifies every file's size
and SHA-256 against the manifest (skippable with ``verify=False`` for
speed), re-encodes the document (Dewey codes are deterministic, so they
never need to be stored) and cross-checks the posting lists against it.
Pre-snapshot *legacy* directories — the three data files sitting flat
in ``dbdir`` with no ``CURRENT`` — keep loading read-only for backward
compatibility; ``repro snapshot`` migrates them.

Corruption recovery lives in :mod:`repro.index.fsck`; the full layout
and manifest schema are documented in docs/STORAGE.md.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from array import array
from typing import Dict, List, Optional, Tuple

from repro.encoding.encoder import EncodedDocument, encode_document
from repro.exceptions import StorageError
from repro.index.inverted import InvertedIndex
from repro.obs.metrics import Collector, NULL_COLLECTOR
from repro.prxml.parser import parse_pxml_file
from repro.prxml.serializer import serialize_pxml

FORMAT_VERSION = 1

#: Manifest schema identifier (``repro.manifest/v<n>``).
MANIFEST_FORMAT = "repro.manifest/v1"

CURRENT_FILE = "CURRENT"
SNAPSHOTS_DIR = "snapshots"
MANIFEST_FILE = "MANIFEST.json"

_DOCUMENT_FILE = "document.pxml"
_POSTINGS_FILE = "postings.jsonl"
_META_FILE = "meta.json"

#: The checksummed data files of one snapshot, in write order.
DATA_FILES = (_DOCUMENT_FILE, _POSTINGS_FILE, _META_FILE)

#: Prefix of staging directories (an interrupted save leaves one behind).
STAGING_PREFIX = ".staging-"


class Database:
    """A loaded document + encoding + inverted index bundle.

    Attributes:
        generation: the snapshot generation this database was loaded
            from (``None`` for in-memory builds and legacy flat
            directories).
        directory: the database directory it came from, if any.
    """

    def __init__(self, encoded: EncodedDocument, index: InvertedIndex,
                 generation: Optional[str] = None,
                 directory: Optional[str] = None):
        self.encoded = encoded
        self.index = index
        self.generation = generation
        self.directory = directory

    @property
    def document(self):
        """The underlying :class:`PDocument`."""
        return self.encoded.document

    @classmethod
    def from_document(cls, document) -> "Database":
        """Encode and index an in-memory document."""
        encoded = encode_document(document)
        return cls(encoded, InvertedIndex.from_document(encoded))


# -- the blessed atomic writer ------------------------------------------------


def _atomic_write(path: str, text: str) -> None:
    """Write ``text`` to ``path`` so a crash never leaves a torn file.

    The bytes land in ``path + ".tmp"`` first, are flushed and fsynced,
    and only then renamed over ``path`` — readers see either the old
    complete file or the new complete file, never a prefix.  This is
    the *only* sanctioned way to write inside ``repro/index/`` and
    ``repro/service/`` (linter rule R007, docs/ANALYSIS.md).
    """
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _fsync_dir(path: str) -> None:
    """Persist a directory's entry table (new/renamed children)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir open
        return
    try:
        os.fsync(fd)
    except OSError:  # repro: ignore[R006] dir fsync is best-effort
        pass  # pragma: no cover - platform without directory fsync
    finally:
        os.close(fd)


def _sha256_text(text: str) -> Tuple[str, int]:
    """Checksum and byte size of a file body (UTF-8)."""
    data = text.encode("utf-8")
    return hashlib.sha256(data).hexdigest(), len(data)


def sha256_file(path: str) -> Tuple[str, int]:
    """Streaming checksum and size of an existing file."""
    digest = hashlib.sha256()
    size = 0
    with open(path, "rb") as handle:
        while True:
            block = handle.read(1 << 20)
            if not block:
                break
            digest.update(block)
            size += len(block)
    return digest.hexdigest(), size


# -- directory layout ---------------------------------------------------------


def generation_name(number: int) -> str:
    """The canonical zero-padded generation directory name."""
    return f"g{number:08d}"


def list_generations(directory) -> List[str]:
    """All snapshot generation names in ``directory``, oldest first."""
    snapshots = os.path.join(os.fspath(directory), SNAPSHOTS_DIR)
    try:
        names = os.listdir(snapshots)
    except OSError:
        return []
    return sorted(name for name in names
                  if name.startswith("g") and name[1:].isdigit()
                  and os.path.isdir(os.path.join(snapshots, name)))


def current_generation(directory) -> Optional[str]:
    """The generation named by ``CURRENT`` (``None`` when absent)."""
    pointer = os.path.join(os.fspath(directory), CURRENT_FILE)
    try:
        with open(pointer, encoding="utf-8") as handle:
            name = handle.read().strip()
    except FileNotFoundError:
        return None
    except (OSError, UnicodeDecodeError) as exc:
        raise StorageError(f"cannot read {pointer}: {exc}") from exc
    if not name:
        raise StorageError(f"{pointer} is empty; run 'repro fsck' to "
                           f"recover the newest intact generation")
    return name


def snapshot_path(directory, generation: str) -> str:
    """The directory of one snapshot generation."""
    return os.path.join(os.fspath(directory), SNAPSHOTS_DIR, generation)


def is_legacy_layout(directory) -> bool:
    """Whether ``directory`` is a pre-snapshot flat database dir."""
    directory = os.fspath(directory)
    return (not os.path.exists(os.path.join(directory, CURRENT_FILE))
            and os.path.exists(os.path.join(directory, _META_FILE)))


def _next_generation(directory: str) -> str:
    highest = 0
    for name in list_generations(directory):
        highest = max(highest, int(name[1:]))
    return generation_name(highest + 1)


# -- saving -------------------------------------------------------------------


def _postings_text(index: InvertedIndex) -> str:
    """Render the postings JSONL body, rejecting corrupt inputs."""
    lines: List[str] = []
    for term, ids in sorted(index.raw_postings().items()):
        if not len(ids):
            # A term with no matching node cannot come from indexing a
            # document; writing it would only defer the failure to load
            # time.  Reject symmetrically with the loader.
            raise StorageError(
                f"term {term!r} has an empty posting list; "
                f"refusing to persist a corrupt index")
        # ensure_ascii=False keeps non-ASCII terms (e.g. 'café') as
        # readable UTF-8 in the JSONL, matching the file's declared
        # encoding instead of double-escaping.
        lines.append(json.dumps({"t": term, "ids": list(ids)},
                                ensure_ascii=False))
    return "\n".join(lines) + "\n" if lines else ""


def build_manifest(generation: str, nodes: int, terms: int,
                   files: Dict[str, Dict[str, object]]
                   ) -> Dict[str, object]:
    """The ``repro.manifest/v1`` record for one snapshot."""
    return {
        "format": MANIFEST_FORMAT,
        "generation": generation,
        "version": FORMAT_VERSION,
        "nodes": nodes,
        "terms": terms,
        "files": files,
    }


def save_database(database: Database, directory,
                  collector: Collector = NULL_COLLECTOR) -> str:
    """Write a new snapshot generation and flip ``CURRENT`` to it.

    The directory is created if missing.  Returns the new generation
    name; the database's ``generation``/``directory`` attributes are
    updated to match.  A failure (or crash) at any point leaves the
    previously-current generation untouched and loadable.
    """
    directory = os.fspath(directory)
    snapshots = os.path.join(directory, SNAPSHOTS_DIR)
    staging: Optional[str] = None
    try:
        with collector.time("storage.save"):
            os.makedirs(snapshots, exist_ok=True)
            generation = _next_generation(directory)
            staging = os.path.join(snapshots, STAGING_PREFIX + generation)
            shutil.rmtree(staging, ignore_errors=True)
            os.makedirs(staging)

            bodies = {
                _DOCUMENT_FILE: serialize_pxml(database.document),
                _POSTINGS_FILE: _postings_text(database.index),
                _META_FILE: json.dumps({
                    "version": FORMAT_VERSION,
                    "nodes": len(database.document),
                    "terms": len(database.index),
                }, indent=2) + "\n",
            }
            files: Dict[str, Dict[str, object]] = {}
            for name in DATA_FILES:
                _atomic_write(os.path.join(staging, name), bodies[name])
                digest, size = _sha256_text(bodies[name])
                files[name] = {"bytes": size, "sha256": digest}
            manifest = build_manifest(generation,
                                      len(database.document),
                                      len(database.index), files)
            _atomic_write(os.path.join(staging, MANIFEST_FILE),
                          json.dumps(manifest, indent=2) + "\n")
            _fsync_dir(staging)

            final = os.path.join(snapshots, generation)
            os.replace(staging, final)
            staging = None
            _fsync_dir(snapshots)

            # The commit point: one atomic rename flips the active
            # generation.  Everything before this line is invisible to
            # readers; everything after it is durable.
            _atomic_write(os.path.join(directory, CURRENT_FILE),
                          generation + "\n")
            _fsync_dir(directory)
        if collector.enabled:
            collector.count("storage.save.generations")
        database.generation = generation
        database.directory = directory
        return generation
    except OSError as exc:
        raise StorageError(f"cannot write database to {directory}: {exc}"
                           ) from exc
    finally:
        if staging is not None:
            shutil.rmtree(staging, ignore_errors=True)


# -- manifest reading and verification ----------------------------------------


def read_manifest(snapshot_dir) -> Dict[str, object]:
    """Read and structurally validate one snapshot's manifest.

    Raises:
        StorageError: when the manifest is missing, malformed, or a
            newer schema than this library understands (named in the
            message, with the upgrade path).
    """
    path = os.path.join(os.fspath(snapshot_dir), MANIFEST_FILE)
    try:
        with open(path, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except FileNotFoundError as exc:
        raise StorageError(
            f"{path} is missing; this snapshot cannot be verified "
            f"(run 'repro fsck --repair' to rebuild it)") from exc
    except (OSError, ValueError) as exc:
        # ValueError covers both JSONDecodeError and the
        # UnicodeDecodeError binary garbage produces.
        raise StorageError(f"cannot read {path}: {exc}") from exc
    if not isinstance(manifest, dict):
        raise StorageError(f"{path}: manifest is not a JSON object")
    fmt = manifest.get("format")
    if fmt != MANIFEST_FORMAT:
        if isinstance(fmt, str) and fmt.startswith("repro.manifest/"):
            raise StorageError(
                f"{path}: manifest format {fmt!r} is newer than this "
                f"library's {MANIFEST_FORMAT!r}; upgrade the repro "
                f"library to read this snapshot")
        raise StorageError(
            f"{path}: not a repro manifest (format={fmt!r}, expected "
            f"{MANIFEST_FORMAT!r})")
    if not isinstance(manifest.get("files"), dict):
        raise StorageError(f"{path}: manifest has no 'files' table")
    return manifest


def verify_snapshot(snapshot_dir,
                    manifest: Optional[Dict[str, object]] = None
                    ) -> List[Tuple[str, str, str]]:
    """Compare a snapshot's files against its manifest.

    Returns a list of ``(file, kind, detail)`` problems, where kind is
    ``missing_file``, ``size_mismatch`` or ``checksum_mismatch`` — an
    empty list means every recorded file is bit-for-bit intact.
    """
    snapshot_dir = os.fspath(snapshot_dir)
    if manifest is None:
        manifest = read_manifest(snapshot_dir)
    problems: List[Tuple[str, str, str]] = []
    files = manifest.get("files", {})
    for name in DATA_FILES:
        record = files.get(name)
        path = os.path.join(snapshot_dir, name)
        if record is None:
            problems.append((name, "missing_file",
                             f"{path}: not recorded in the manifest"))
            continue
        if not os.path.exists(path):
            problems.append((name, "missing_file", f"{path}: missing"))
            continue
        digest, size = sha256_file(path)
        if size != record.get("bytes"):
            problems.append((
                name, "size_mismatch",
                f"{path}: {size} bytes on disk but the manifest "
                f"recorded {record.get('bytes')}"))
        elif digest != record.get("sha256"):
            problems.append((
                name, "checksum_mismatch",
                f"{path}: SHA-256 {digest[:12]}... does not match the "
                f"manifest's {str(record.get('sha256'))[:12]}..."))
    return problems


# -- loading ------------------------------------------------------------------


def resolve_snapshot(directory) -> Tuple[str, Optional[str]]:
    """Locate the active data files of a database directory.

    Returns ``(data_dir, generation)``; ``generation`` is ``None`` for
    a legacy flat-layout directory (which stays read-only).

    Raises:
        StorageError: when the directory is no database at all, or
            ``CURRENT`` points at a missing generation.
    """
    directory = os.fspath(directory)
    generation = current_generation(directory)
    if generation is not None:
        snapshot = snapshot_path(directory, generation)
        if not os.path.isdir(snapshot):
            known = ", ".join(list_generations(directory)) or "none"
            raise StorageError(
                f"{os.path.join(directory, CURRENT_FILE)} points at "
                f"generation {generation!r} but {snapshot} does not "
                f"exist (present: {known}); run 'repro fsck --repair' "
                f"to fall back to the newest intact generation")
        return snapshot, generation
    if os.path.exists(os.path.join(directory, _META_FILE)):
        return directory, None
    raise StorageError(
        f"{directory} is not a database directory: no {CURRENT_FILE} "
        f"pointer and no legacy {_META_FILE}")


def load_database(directory, verify: bool = True,
                  collector: Collector = NULL_COLLECTOR) -> Database:
    """Load the active generation written by :func:`save_database`.

    Args:
        directory: the database directory (snapshot layout, or a
            legacy flat directory — loaded read-only).
        verify: check every data file's size and SHA-256 against the
            snapshot manifest before parsing (legacy directories have
            no manifest and skip this).  Passing ``False`` trades the
            integrity check for load speed.
        collector: receives ``storage.load`` timing and
            ``storage.verify.*`` counters.
    """
    directory = os.fspath(directory)
    with collector.time("storage.load"):
        data_dir, generation = resolve_snapshot(directory)
        if generation is not None:
            manifest = read_manifest(data_dir)
            if verify:
                with collector.time("storage.verify"):
                    problems = verify_snapshot(data_dir, manifest)
                if collector.enabled:
                    collector.count("storage.verify.files",
                                    len(DATA_FILES))
                    collector.count("storage.verify.failures",
                                    len(problems))
                if problems:
                    _file, kind, detail = problems[0]
                    more = (f" (and {len(problems) - 1} more problem(s))"
                            if len(problems) > 1 else "")
                    raise StorageError(
                        f"snapshot {generation} failed verification: "
                        f"{kind}: {detail}{more}; run 'repro fsck "
                        f"--repair' to quarantine and rebuild")
        database = _load_data_files(data_dir)
        database.generation = generation
        database.directory = directory
    if collector.enabled:
        collector.count("storage.load.databases")
        if generation is None:
            collector.count("storage.load.legacy")
    return database


def _load_data_files(data_dir: str) -> Database:
    """Parse and cross-check the three data files of one location."""
    meta_path = os.path.join(data_dir, _META_FILE)
    try:
        with open(meta_path, encoding="utf-8") as handle:
            meta = json.load(handle)
    except (OSError, ValueError) as exc:
        raise StorageError(f"cannot read {meta_path}: {exc}") from exc
    if not isinstance(meta, dict):
        raise StorageError(f"{meta_path}: not a JSON object")
    version = meta.get("version")
    if version != FORMAT_VERSION:
        if isinstance(version, int) and version > FORMAT_VERSION:
            raise StorageError(
                f"{meta_path}: database format version {version} is "
                f"newer than this library's supported version "
                f"{FORMAT_VERSION}; upgrade the repro library (or "
                f"re-run 'repro index' with this version to rewrite "
                f"the database)")
        raise StorageError(
            f"{meta_path}: unsupported database format version "
            f"{version!r} (this library reads version {FORMAT_VERSION}); "
            f"re-index the source document with 'repro index'")

    document = parse_pxml_file(os.path.join(data_dir, _DOCUMENT_FILE))
    if len(document) != meta.get("nodes"):
        raise StorageError(
            f"document has {len(document)} nodes but metadata recorded "
            f"{meta.get('nodes')}")
    encoded = encode_document(document)

    postings = read_postings(os.path.join(data_dir, _POSTINGS_FILE))
    if len(postings) != meta.get("terms"):
        raise StorageError(
            f"index has {len(postings)} terms but metadata recorded "
            f"{meta.get('terms')}")
    index = InvertedIndex(encoded, postings)
    index.check_integrity()
    return Database(encoded, index)


def read_postings(postings_path: str) -> Dict[str, array]:
    """Strictly parse a postings JSONL file (shared with fsck)."""
    postings: Dict[str, array] = {}
    try:
        with open(postings_path, encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                if not line.strip():
                    continue
                term, ids = parse_posting_line(postings_path,
                                               line_number, line)
                if term in postings:
                    raise StorageError(
                        f"{postings_path}:{line_number}: term "
                        f"{term!r} appears twice")
                postings[term] = ids
    except (OSError, UnicodeDecodeError) as exc:
        raise StorageError(f"cannot read {postings_path}: {exc}") from exc
    return postings


def parse_posting_line(postings_path: str, line_number: int,
                       line: str) -> Tuple[str, array]:
    """Parse one postings JSONL line, or raise a located StorageError."""
    try:
        record = json.loads(line)
        term = record["t"]
        ids = array("q", record["ids"])
    except (json.JSONDecodeError, KeyError, TypeError,
            OverflowError) as exc:
        raise StorageError(
            f"{postings_path}:{line_number}: bad record: {exc}"
        ) from exc
    if not isinstance(term, str):
        raise StorageError(
            f"{postings_path}:{line_number}: term "
            f"{term!r} is not a string")
    if not len(ids):
        raise StorageError(
            f"{postings_path}:{line_number}: term "
            f"{term!r} has an empty posting list")
    return term, ids
