"""Match-list machinery shared by the search algorithms.

Both algorithms consume *match entries*: one entry per distinct node
that matches at least one query term, carrying the node's Dewey code,
its PrLink, and a bitmask of which query keywords it matches (bit ``i``
set means keyword ``i`` present — the binary representation of
Section III-B).  Entries are kept in document order.

:class:`MatchList` adds the bookkeeping EagerTopK needs: binary-searched
subtree ranges and consumption flags, so a candidate can "access and
remove the relevant keyword nodes" (Section IV-B) in logarithmic +
output time.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.encoding.dewey import DeweyCode
from repro.encoding.prlink import PrLink
from repro.index.cache import NULL_CACHES
from repro.index.inverted import InvertedIndex
from repro.obs.metrics import NULL_COLLECTOR


class MatchEntry:
    """One keyword-matching node: code, probability link, keyword mask."""

    __slots__ = ("node_id", "code", "link", "mask")

    def __init__(self, node_id: int, code: DeweyCode, link: PrLink,
                 mask: int):
        self.node_id = node_id
        self.code = code
        self.link = link
        self.mask = mask

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MatchEntry({self.code}, mask={self.mask:b})"


def build_match_entries(index: InvertedIndex, keywords: Sequence[str],
                        collector=NULL_COLLECTOR, caches=NULL_CACHES
                        ) -> Tuple[List[str], List[MatchEntry]]:
    """Merge per-term postings into per-node masked entries.

    Returns the normalised term list (defining bit positions) and the
    document-ordered entries.  A node matched by several terms appears
    once with the OR of its bits — this implements the "if v' is not
    promoted ... " duplicate handling of Algorithm 1 up front.

    ``collector`` times the merge and counts the produced entries on
    top of the ``index.*`` lookup metrics.

    ``caches`` (a :class:`repro.index.cache.QueryCaches`) memoises the
    merged entry list per normalised term tuple: two queries over the
    same term set share one physical list, which callers must treat as
    immutable.  Entry masks depend on term *order*, so the cache key is
    the ordered tuple — canonicalise keyword order upstream (as
    :class:`repro.service.QueryService` does) to maximise reuse.
    """
    if not caches.enabled:
        return _merge_match_entries(index, keywords, collector)
    terms = index.query_terms(keywords)
    cached = caches.match_entries.get(tuple(terms))
    if cached is not None:
        if collector.enabled:
            collector.count("index.match_entries", len(cached))
            collector.mark("cache.match_entries.hits")
        return terms, cached
    terms, entries = _merge_match_entries(index, terms, collector)
    caches.match_entries.put(tuple(terms), entries)
    if collector.enabled:
        collector.mark("cache.match_entries.misses")
    return terms, entries


def _merge_match_entries(index: InvertedIndex, keywords: Sequence[str],
                         collector=NULL_COLLECTOR
                         ) -> Tuple[List[str], List[MatchEntry]]:
    terms, postings = index.keyword_lists(keywords, collector=collector)
    with collector.time("index.merge_entries"):
        masks: Dict[int, int] = {}
        for bit, ids in enumerate(postings):
            flag = 1 << bit
            for node_id in ids:
                masks[node_id] = masks.get(node_id, 0) | flag
        encoded = index.encoded
        entries = [
            MatchEntry(node_id, encoded.codes[node_id],
                       encoded.links[node_id], masks[node_id])
            for node_id in sorted(masks)
        ]
    if collector.enabled:
        collector.count("index.match_entries", len(entries))
    return terms, entries


def keyword_code_lists(index: InvertedIndex, keywords: Sequence[str],
                       caches=NULL_CACHES
                       ) -> Tuple[List[str], List[List[DeweyCode]]]:
    """Per-keyword Dewey lists (the input shape of the deterministic
    SLCA algorithms of [12] that EagerTopK seeds from).

    With live ``caches`` each term's code list is memoised
    individually, so queries that merely *share* keywords — not whole
    term sets — still skip the rebuild.  Cached lists are shared;
    treat them as immutable.
    """
    terms = index.query_terms(keywords)
    codes = index.encoded.codes
    if not caches.enabled:
        return terms, [[codes[node_id] for node_id in index.postings(term)]
                       for term in terms]
    lists: List[List[DeweyCode]] = []
    for term in terms:
        code_list = caches.code_lists.get(term)
        if code_list is None:
            code_list = [codes[node_id] for node_id in index.postings(term)]
            caches.code_lists.put(term, code_list)
        lists.append(code_list)
    return terms, lists


class MatchList:
    """Document-ordered match entries with consumption tracking.

    EagerTopK processes candidates out of document order; every time a
    candidate's subtree is evaluated, the entries inside it are consumed
    so an ancestor evaluated later only sweeps what is left.
    """

    def __init__(self, entries: List[MatchEntry]):
        self.entries = entries
        self._positions = [entry.code.positions for entry in entries]
        self._consumed = bytearray(len(entries))
        self._remaining = len(entries)

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def remaining(self) -> int:
        """How many entries are still unconsumed."""
        return self._remaining

    def subtree_slice(self, code: DeweyCode) -> Tuple[int, int]:
        """Index range ``[lo, hi)`` of entries inside ``code``'s subtree."""
        lo = bisect_left(self._positions, code.positions)
        hi = bisect_left(self._positions, code.subtree_upper_bound())
        return lo, hi

    def iter_subtree(self, code: DeweyCode,
                     unconsumed_only: bool = True) -> Iterator[MatchEntry]:
        """Entries within ``code``'s subtree, in document order."""
        lo, hi = self.subtree_slice(code)
        for position in range(lo, hi):
            if unconsumed_only and self._consumed[position]:
                continue
            yield self.entries[position]

    def consume_subtree(self, code: DeweyCode) -> List[MatchEntry]:
        """Return and mark consumed all unconsumed entries under ``code``."""
        lo, hi = self.subtree_slice(code)
        taken: List[MatchEntry] = []
        for position in range(lo, hi):
            if not self._consumed[position]:
                self._consumed[position] = 1
                self._remaining -= 1
                taken.append(self.entries[position])
        return taken

    def unconsumed_mask_union(self, code: DeweyCode) -> int:
        """OR of the masks of unconsumed entries under ``code``."""
        union = 0
        for entry in self.iter_subtree(code):
            union |= entry.mask
        return union
