"""Tokenisation of node labels and text into indexable terms.

Keyword matching in the paper is case-insensitive word matching over tag
names and text values (queries such as ``{United States, Graduate}``
match element content).  We tokenise on runs of letters and digits and
lowercase everything; multi-word query strings like ``"united states"``
simply become several required terms.

Tokens are Unicode word runs (underscore excluded, so ``open_auction``
still splits into two terms): accented or non-Latin content such as
``café`` or ``北京`` indexes as whole terms instead of being silently
truncated at the first non-ASCII byte, and the persisted posting format
round-trips them verbatim (see :mod:`repro.index.storage`).
"""

from __future__ import annotations

import re
from typing import Iterable, List

from repro.exceptions import QueryError
from repro.prxml.model import PNode

_TOKEN_PATTERN = re.compile(r"[^\W_]+", re.UNICODE)


def tokenize(text: str) -> List[str]:
    """Lowercased alphanumeric tokens of ``text`` (order preserved)."""
    return [match.group(0).lower() for match in _TOKEN_PATTERN.finditer(text)]


def node_terms(node: PNode) -> List[str]:
    """Terms a node matches: its tag tokens plus its text tokens.

    Distributional nodes never match keywords — they do not exist in
    possible worlds — so they yield no terms.
    """
    if node.is_distributional:
        return []
    terms = tokenize(node.label)
    if node.text:
        terms.extend(tokenize(node.text))
    return terms


def normalize_query(keywords: Iterable[str]) -> List[str]:
    """Flatten query strings into unique lowercase terms, order-preserving.

    ``["United States", "ship"]`` becomes ``["united", "states", "ship"]``.

    Raises:
        QueryError: if any keyword normalises to nothing (punctuation-only
            strings like ``"..."`` would otherwise be dropped silently and
            turn a typo into a different — still answerable — query).
    """
    seen = {}
    for keyword in keywords:
        terms = tokenize(keyword)
        if not terms:
            raise QueryError(
                f"query keyword {keyword!r} contains no indexable terms")
        for term in terms:
            seen.setdefault(term, None)
    return list(seen)
