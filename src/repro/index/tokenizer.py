"""Tokenisation of node labels and text into indexable terms.

Keyword matching in the paper is case-insensitive word matching over tag
names and text values (queries such as ``{United States, Graduate}``
match element content).  We tokenise on runs of letters and digits and
lowercase everything; multi-word query strings like ``"united states"``
simply become several required terms.
"""

from __future__ import annotations

import re
from typing import Iterable, List

from repro.prxml.model import PNode

_TOKEN_PATTERN = re.compile(r"[A-Za-z0-9]+")


def tokenize(text: str) -> List[str]:
    """Lowercased alphanumeric tokens of ``text`` (order preserved)."""
    return [match.group(0).lower() for match in _TOKEN_PATTERN.finditer(text)]


def node_terms(node: PNode) -> List[str]:
    """Terms a node matches: its tag tokens plus its text tokens.

    Distributional nodes never match keywords — they do not exist in
    possible worlds — so they yield no terms.
    """
    if node.is_distributional:
        return []
    terms = tokenize(node.label)
    if node.text:
        terms.extend(tokenize(node.text))
    return terms


def normalize_query(keywords: Iterable[str]) -> List[str]:
    """Flatten query strings into unique lowercase terms, order-preserving.

    ``["United States", "ship"]`` becomes ``["united", "states", "ship"]``.
    """
    seen = {}
    for keyword in keywords:
        for term in tokenize(keyword):
            seen.setdefault(term, None)
    return list(seen)
