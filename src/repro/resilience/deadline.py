"""Per-query deadlines: the budget object behind *anytime* answers.

Both top-k algorithms are naturally anytime — PrStack's heap holds the
exact probabilities of every node finalised so far, and EagerTopK's
k-heap is a valid lower-bound answer whenever Properties 1-5 have not
yet terminated the climb.  A :class:`Deadline` turns that property into
an API: the engines poll it at scan-step granularity (one PrStack match
entry, one EagerTopK candidate) and, on expiry, stop and return the
current heap as an explicitly-marked partial
:class:`~repro.core.result.SearchOutcome` (``outcome.partial`` is True
and ``outcome.termination_reason`` names the exhausted budget) instead
of raising.

Two budgets are supported, separately or together:

* ``budget_ms`` — wall-clock milliseconds, measured by the library's
  one clock primitive (:class:`repro.obs.Stopwatch`) from the moment
  the deadline is constructed;
* ``max_steps`` — a deterministic operation budget: the deadline
  expires on the ``max_steps + 1``-th poll.  Deterministic by
  construction, which is what the partial-result tests pin down.

:data:`NULL_DEADLINE` is the do-nothing default (the same null-object
idiom as ``NULL_COLLECTOR`` / ``NULL_CACHES``): engines guard every
poll on ``deadline.enabled``, so an un-deadlined query pays one class
-attribute load per step and returns byte-identical results.

See docs/RESILIENCE.md for the partial-result semantics and soundness
argument (returned probabilities are exact per node; the heap is a
rank-wise lower bound of the exact answer).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.exceptions import QueryError
from repro.obs.metrics import Stopwatch

#: ``termination_reason`` of an outcome cut short by ``budget_ms``.
REASON_DEADLINE = "deadline"

#: ``termination_reason`` of an outcome cut short by ``max_steps``.
REASON_STEP_BUDGET = "step_budget"

#: ``termination_reason`` of a complete (non-partial) outcome.
REASON_COMPLETE = "complete"


class Deadline:
    """One query's execution budget, polled by the engines per step.

    Args:
        budget_ms: wall-clock budget in milliseconds (the clock starts
            at construction, so build the deadline as close to the
            query as possible).
        max_steps: deterministic step budget; the deadline reports
            expiry once more than ``max_steps`` polls have happened.
            ``0`` expires on the very first poll (useful for forcing
            the empty partial answer).

    At least one budget is required; when both are given, whichever
    exhausts first wins and names :attr:`reason`.
    """

    enabled = True

    __slots__ = ("budget_ms", "max_steps", "_watch", "_steps", "_reason")

    def __init__(self, budget_ms: Optional[float] = None,
                 max_steps: Optional[int] = None):
        if budget_ms is None and max_steps is None:
            raise QueryError(
                "a Deadline needs a budget: pass budget_ms, max_steps "
                "or both")
        if budget_ms is not None and budget_ms <= 0:
            raise QueryError(
                f"deadline budget_ms must be positive, got {budget_ms}")
        if max_steps is not None and max_steps < 0:
            raise QueryError(
                f"deadline max_steps must be non-negative, "
                f"got {max_steps}")
        self.budget_ms = None if budget_ms is None else float(budget_ms)
        self.max_steps = max_steps
        self._watch = Stopwatch().start()
        self._steps = 0
        self._reason: Optional[str] = None

    @classmethod
    def after_ms(cls, budget_ms: float) -> "Deadline":
        """A pure wall-clock deadline, ``budget_ms`` from now."""
        return cls(budget_ms=budget_ms)

    def expired(self) -> bool:
        """Poll the budget (counts as one step); sticky once True."""
        if self._reason is not None:
            return True
        self._steps += 1
        if self.max_steps is not None and self._steps > self.max_steps:
            self._reason = REASON_STEP_BUDGET
            return True
        if self.budget_ms is not None \
                and self._watch.elapsed_ms >= self.budget_ms:
            self._reason = REASON_DEADLINE
            return True
        return False

    @property
    def reason(self) -> str:
        """Which budget expired (:data:`REASON_COMPLETE` while alive)."""
        return self._reason if self._reason is not None \
            else REASON_COMPLETE

    @property
    def steps(self) -> int:
        """How many times the deadline has been polled."""
        return self._steps

    @property
    def elapsed_ms(self) -> float:
        """Wall-clock milliseconds since construction (live)."""
        return self._watch.elapsed_ms

    @property
    def remaining_ms(self) -> float:
        """Milliseconds left on the wall-clock budget (0 when spent,
        ``inf`` for a pure step budget)."""
        if self.budget_ms is None:
            return float("inf")
        return max(0.0, self.budget_ms - self._watch.elapsed_ms)

    def out_of_time(self) -> bool:
        """Whether the wall-clock budget is spent, *without* consuming
        a step.  Scatter coordinators use this between shard visits:
        unlike :meth:`expired`, it never advances the deterministic
        step budget, so polling it cannot change a ``max_steps``
        outcome."""
        if self._reason is not None:
            return True
        return self.budget_ms is not None \
            and self._watch.elapsed_ms >= self.budget_ms

    def child(self, max_ms: Optional[float] = None,
              skew_ms: float = 0.0) -> "Deadline":
        """A new budget drawing from this one's *remaining* wall clock.

        The end-to-end budget rule (docs/RESILIENCE.md): every layer —
        admission queue wait, corpus scatter, a per-shard search, a
        retry, a hedge — runs on a child of the caller's deadline, so
        the sum of the children can never overshoot the parent.  The
        child's budget is ``remaining_ms`` at the moment of the call,
        optionally capped at ``max_ms`` and shrunk by ``skew_ms`` (a
        worker whose clock runs ``skew_ms`` ahead of the coordinator's
        must budget as if that time were already spent — the
        ``clock_skew_ms`` chaos fault drives this path).  An exhausted
        parent yields a child that expires on its first poll; skew
        only ever *shrinks* a budget, so a skewed child still cannot
        overshoot.  A pure step-budget parent (no wall clock) has
        nothing to subdivide and is returned as-is — steps are polled
        on the shared object.
        """
        if self.budget_ms is None:
            return self
        remaining = self.remaining_ms - max(0.0, skew_ms)
        if max_ms is not None:
            remaining = min(remaining, max_ms)
        # The constructor requires a positive budget; an exhausted
        # parent becomes a child whose first poll reports expiry.
        return Deadline(budget_ms=max(0.001, remaining))

    def summary(self) -> dict:
        """JSON-safe description for ``outcome.stats`` blocks."""
        return {"budget_ms": self.budget_ms,
                "max_steps": self.max_steps,
                "steps": self._steps,
                "elapsed_ms": round(self._watch.elapsed_ms, 3),
                "reason": self.reason}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Deadline(budget_ms={self.budget_ms}, "
                f"max_steps={self.max_steps}, reason={self.reason!r})")


class NullDeadline:
    """The do-nothing deadline: the default on every query path.

    ``enabled`` is False so hot loops skip the poll entirely;
    ``expired()`` stays False forever for any caller that polls anyway.
    """

    enabled = False

    __slots__ = ()

    def expired(self) -> bool:
        return False

    def out_of_time(self) -> bool:
        return False

    def child(self, max_ms: Optional[float] = None,
              skew_ms: float = 0.0) -> "NullDeadline":
        return self

    @property
    def reason(self) -> str:
        return REASON_COMPLETE

    @property
    def remaining_ms(self) -> float:
        return float("inf")


#: Shared no-op instance; engine signatures default ``deadline`` to this.
NULL_DEADLINE = NullDeadline()

#: What engine signatures accept: a live deadline or the no-op.
DeadlineLike = Union[Deadline, NullDeadline]


def as_deadline(value: "Union[Deadline, NullDeadline, float, int, None]"
                ) -> DeadlineLike:
    """Coerce the public API's ``deadline=`` argument.

    ``None`` means no deadline; a number is a wall-clock budget in
    milliseconds; a :class:`Deadline` (already ticking) passes through.
    Anything else is a caller error, reported as a
    :class:`~repro.exceptions.QueryError` at the API boundary.
    """
    if value is None:
        return NULL_DEADLINE
    if isinstance(value, (Deadline, NullDeadline)):
        return value
    if isinstance(value, bool):
        raise QueryError(
            f"deadline must be a Deadline or a millisecond budget, "
            f"got {value!r}")
    if isinstance(value, (int, float)):
        return Deadline(budget_ms=float(value))
    raise QueryError(
        f"deadline must be a Deadline or a millisecond budget, "
        f"got {type(value).__name__}")
