"""Retry pacing and the process-pool circuit breaker.

Two small policies keep the service's degradation chain
(docs/RESILIENCE.md) from making a bad situation worse:

* :class:`RetryPolicy` bounds how many recovery tiers a failed query
  may consume and paces them with capped exponential backoff, so a
  struggling backend is not immediately hammered with the exact
  workload that just failed;
* :class:`CircuitBreaker` stops the service from re-spawning a process
  pool that keeps dying: after ``threshold`` consecutive pool
  breakages it *opens* and the process tier is skipped outright
  (queries degrade immediately), until a ``cooldown_s`` quiet period
  lets one half-open trial through.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from repro.exceptions import QueryError
from repro.obs.metrics import Stopwatch

#: Default number of recovery tiers a failed query may consume.
DEFAULT_MAX_RETRIES = 2

#: Default first-retry backoff in milliseconds.
DEFAULT_BACKOFF_MS = 25.0

#: Default consecutive pool breakages before the breaker opens.
DEFAULT_BREAKER_THRESHOLD = 2

#: Default open-state cooldown before a half-open trial, in seconds.
DEFAULT_BREAKER_COOLDOWN_S = 30.0


class RetryPolicy:
    """How often and how fast failed work is retried.

    Args:
        max_retries: recovery attempts per failed query (0 = fail
            straight to an error outcome).
        backoff_ms: first-attempt backoff; attempt ``n`` sleeps
            ``backoff_ms * multiplier**(n-1)``, capped at
            ``max_backoff_ms``.  0 disables sleeping (tests).
        multiplier: exponential growth factor between attempts.
        max_backoff_ms: upper bound on any one sleep.
    """

    __slots__ = ("max_retries", "backoff_ms", "multiplier",
                 "max_backoff_ms")

    def __init__(self, max_retries: int = DEFAULT_MAX_RETRIES,
                 backoff_ms: float = DEFAULT_BACKOFF_MS,
                 multiplier: float = 2.0,
                 max_backoff_ms: float = 1000.0):
        if max_retries < 0:
            raise QueryError(
                f"max_retries must be non-negative, got {max_retries}")
        if backoff_ms < 0:
            raise QueryError(
                f"backoff_ms must be non-negative, got {backoff_ms}")
        if multiplier < 1.0:
            raise QueryError(
                f"backoff multiplier must be >= 1, got {multiplier}")
        self.max_retries = max_retries
        self.backoff_ms = backoff_ms
        self.multiplier = multiplier
        self.max_backoff_ms = max_backoff_ms

    def delay_ms(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based), capped."""
        if attempt <= 0 or self.backoff_ms == 0:
            return 0.0
        delay = self.backoff_ms * self.multiplier ** (attempt - 1)
        return min(delay, self.max_backoff_ms)

    def sleep(self, attempt: int) -> None:
        """Apply the backoff for retry ``attempt`` (no-op at 0 ms)."""
        delay = self.delay_ms(attempt)
        if delay > 0:
            time.sleep(delay / 1000.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RetryPolicy(max_retries={self.max_retries}, "
                f"backoff_ms={self.backoff_ms})")


class CircuitBreaker:
    """Consecutive-failure breaker guarding process-pool respawns.

    States follow the classic pattern:

    * **closed** — failures below ``threshold``; work flows normally.
    * **open** — ``threshold`` consecutive failures seen; ``allow()``
      is False until ``cooldown_s`` has passed since opening.
    * **half-open** — cooldown elapsed; ``allow()`` lets exactly the
      next attempt through, whose outcome closes or re-opens the
      breaker.

    The breaker never raises — the service consults ``allow()`` and
    routes around an open circuit (degrading to the thread tier), which
    is the graceful-degradation behaviour the north-star demands.
    """

    __slots__ = ("threshold", "cooldown_s", "failures", "opens",
                 "_open_watch", "_lock")

    def __init__(self, threshold: int = DEFAULT_BREAKER_THRESHOLD,
                 cooldown_s: float = DEFAULT_BREAKER_COOLDOWN_S):
        if threshold <= 0:
            raise QueryError(
                f"breaker threshold must be positive, got {threshold}")
        if cooldown_s < 0:
            raise QueryError(
                f"breaker cooldown_s must be non-negative, "
                f"got {cooldown_s}")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        # One breaker is shared by every batch the service runs, and
        # batches may run on different threads: all state transitions
        # happen under the lock (R008 — failures += 1 and the
        # open-at-threshold check are a classic lost-update /
        # check-then-act pair).
        self.failures = 0
        self.opens = 0
        self._open_watch: Optional[Stopwatch] = None
        self._lock = threading.Lock()

    def _state_locked(self) -> str:  # repro: holds[_lock]
        if self._open_watch is None:
            return "closed"
        if self._open_watch.elapsed >= self.cooldown_s:
            return "half-open"
        return "open"

    @property
    def state(self) -> str:
        """``closed``, ``open`` or ``half-open``."""
        with self._lock:
            return self._state_locked()

    def allow(self) -> bool:
        """Whether the guarded operation may be attempted now."""
        return self.state != "open"

    def record_failure(self) -> None:
        """Count one pool breakage; open at ``threshold`` and restart
        the cooldown on every failure while open/half-open."""
        with self._lock:
            self.failures += 1
            if self.failures >= self.threshold:
                if self._open_watch is None:
                    self.opens += 1
                self._open_watch = Stopwatch().start()

    def record_success(self) -> None:
        """A healthy attempt closes the breaker and clears the count."""
        with self._lock:
            self.failures = 0
            self._open_watch = None

    def summary(self) -> Dict[str, object]:
        """JSON-safe state for ``resilience`` stats blocks."""
        with self._lock:
            return {"state": self._state_locked(),
                    "failures": self.failures,
                    "opens": self.opens, "threshold": self.threshold}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        block = self.summary()
        return (f"CircuitBreaker(state={block['state']!r}, "
                f"failures={block['failures']}/{self.threshold})")
