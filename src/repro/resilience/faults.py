"""Deterministic fault injection for the resilient execution paths.

Production failure modes — a process worker segfaulting, one query
stalling, a corrupted index payload — are rare, non-deterministic and
impossible to unit-test directly.  This module makes them *orderable*:
a :class:`FaultInjector` carries a list of :class:`Fault` specs, each
naming a failure kind, an optional query-term match, a firing limit and
a seeded firing rate, and the service layer calls its hooks at exactly
the points the real failures would strike:

===============  ============================================  =======================
kind             where it strikes                              observable effect
===============  ============================================  =======================
worker_crash     process-pool worker, start of its chunk       ``os._exit(3)`` — the
                                                               pool breaks with
                                                               ``BrokenProcessPool``
slow_query       before a query runs (any executor)            ``time.sleep`` of
                                                               ``delay_ms``
query_error      before a query runs (any executor)            raises
                                                               :class:`InjectedFaultError`
corrupt_payload  the serialised document shipped to workers    payload garbled — worker
                                                               initialisation fails
reload_corrupt   ``QueryService.reload``, before the new       raises
                 generation is verified and swapped in         :class:`InjectedFaultError`
                                                               — the reload is rejected,
                                                               the old generation keeps
                                                               serving (docs/STORAGE.md)
replica_down     a corpus replica visit                        raises
                 (:meth:`CorpusService` scatter)               :class:`InjectedFaultError`
                                                               — the visit fails over to
                                                               another replica
slow_replica     a corpus replica visit                        sleeps ``delay_ms``,
                                                               capped at the visit's
                                                               remaining deadline budget
                                                               (a real straggler is
                                                               abandoned at the
                                                               deadline) — hedging's
                                                               trigger
torn_replica     a corpus replica visit                        raises
                                                               :class:`StorageError`,
                                                               playing a replica whose
                                                               snapshot tore mid-read
clock_skew_ms    child-budget derivation for a replica visit   the visit budgets as if
                                                               ``delay_ms`` were already
                                                               spent (a worker clock
                                                               running ahead); budgets
                                                               only ever shrink
===============  ============================================  =======================

The replica kinds accept a ``target=`` option naming the shard
(``s0000``), the replica (``r1``) or both (``s0000/r1``); no target
matches every replica visit.

Injectors serialise to a compact spec string (:meth:`FaultInjector.spec`
/ :func:`parse_faults`) so process-pool workers can rebuild their own
copy; firing counts (``times=``) are therefore **per process** — a
``worker_crash:times=1`` crashes each worker's first matching chunk,
not one chunk globally.  The ``REPRO_FAULTS`` environment variable
(same grammar; ``REPRO_FAULTS_SEED`` seeds the rate RNG) activates
injection without code changes, which is how the CI fault smoke drives
the CLI.  :data:`NULL_FAULTS` is the do-nothing default.

Spec grammar (semicolon-separated clauses)::

    kind[:opt=value[,opt=value...]][;kind...]

    worker_crash:times=1
    slow_query:terms=xml+keyword,delay_ms=250
    query_error:terms=k9,times=2,message=index shard offline
    corrupt_payload;worker_crash:rate=0.5

See docs/RESILIENCE.md for the full fault matrix and how each kind is
expected to degrade.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.exceptions import QueryError, StorageError

#: The recognised fault kinds, in documentation order.
FAULT_KINDS = ("worker_crash", "slow_query", "query_error",
               "corrupt_payload", "reload_corrupt", "replica_down",
               "slow_replica", "torn_replica", "clock_skew_ms")

#: The kinds struck at a corpus replica visit (honour ``target=``).
REPLICA_KINDS = ("replica_down", "slow_replica", "torn_replica",
                 "clock_skew_ms")

#: Environment variable holding a fault spec string (empty = no faults).
FAULTS_ENV = "REPRO_FAULTS"

#: Environment variable seeding the injector's rate RNG.
FAULTS_SEED_ENV = "REPRO_FAULTS_SEED"

#: Exit status a crashed worker dies with (visible in pool diagnostics).
WORKER_CRASH_EXIT = 3


class InjectedFaultError(RuntimeError):
    """The error a ``query_error`` fault raises.

    Deliberately *not* a :class:`~repro.exceptions.ReproError`: an
    injected fault plays the role of an unexpected runtime failure, and
    the resilience machinery must treat it exactly like one.
    """


@dataclass(frozen=True)
class Fault:
    """One injectable failure.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        terms: fire only for queries (or, for ``worker_crash``, chunks)
            containing at least one of these normalised terms; ``None``
            matches everything.
        times: stop firing after this many strikes (``None`` =
            unlimited).  Counted per injector instance, i.e. per
            process on the worker side.
        rate: firing probability in ``[0, 1]``; draws come from the
            injector's seeded RNG, so a given seed yields one
            deterministic firing sequence.
        delay_ms: how long a ``slow_query`` / ``slow_replica`` (or a
            ``worker_crash``, before dying) sleeps; for
            ``clock_skew_ms``, the skew magnitude.
        message: the :class:`InjectedFaultError` text of a
            ``query_error`` / ``replica_down``.
        target: replica-kind scoping — the shard name, the replica
            name, or ``shard/replica``; ``None`` matches every visit.
    """

    kind: str
    terms: Optional[Tuple[str, ...]] = None
    times: Optional[int] = None
    rate: float = 1.0
    delay_ms: float = 0.0
    message: str = "injected fault"
    target: Optional[str] = None

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            choices = ", ".join(FAULT_KINDS)
            raise QueryError(f"unknown fault kind {self.kind!r}; "
                             f"choose one of: {choices}")
        if not 0.0 <= self.rate <= 1.0:
            raise QueryError(
                f"fault rate must be within [0, 1], got {self.rate}")
        if self.delay_ms < 0:
            raise QueryError(
                f"fault delay_ms must be non-negative, "
                f"got {self.delay_ms}")
        if self.times is not None and self.times < 0:
            raise QueryError(
                f"fault times must be non-negative, got {self.times}")

    def matches_target(self, shard: str, replica: str) -> bool:
        """Whether this fault's ``target`` covers one replica visit."""
        if self.target is None:
            return True
        return self.target in (shard, replica, f"{shard}/{replica}")

    def clause(self) -> str:
        """This fault as one spec-grammar clause."""
        options: List[str] = []
        if self.terms is not None:
            options.append("terms=" + "+".join(self.terms))
        if self.times is not None:
            options.append(f"times={self.times}")
        if self.rate != 1.0:
            options.append(f"rate={self.rate!r}")
        if self.delay_ms:
            options.append(f"delay_ms={self.delay_ms!r}")
        if self.message != "injected fault":
            options.append(f"message={self.message}")
        if self.target is not None:
            options.append(f"target={self.target}")
        return self.kind + (":" + ",".join(options) if options else "")


@dataclass
class _Armed:
    """One fault plus its mutable firing count."""

    fault: Fault
    fired: int = 0

    def exhausted(self) -> bool:
        return self.fault.times is not None \
            and self.fired >= self.fault.times


class FaultInjector:
    """A seeded, deterministic source of injected failures.

    The service layer calls the hooks below; each consults the armed
    fault list, honours term matches / ``times`` limits / the seeded
    ``rate`` draw, and strikes.  All state is local, so a test can
    assert exact firing counts via :meth:`summary`.
    """

    enabled = True

    __slots__ = ("seed", "_armed", "_rng")

    def __init__(self, faults: Iterable[Fault], seed: int = 0):
        self.seed = seed
        self._armed = [_Armed(fault) for fault in faults]
        self._rng = random.Random(seed)

    # -- hooks ----------------------------------------------------------------

    def before_query(self, terms: Sequence[str]) -> None:
        """Per-query hook (every executor): sleep and/or raise."""
        for armed in self._select("slow_query", terms):
            time.sleep(armed.fault.delay_ms / 1000.0)
        for armed in self._select("query_error", terms):
            raise InjectedFaultError(armed.fault.message)

    def on_worker_chunk(self,
                        term_lists: Sequence[Sequence[str]]) -> None:
        """Process-worker hook, called once at the start of a chunk.

        A firing ``worker_crash`` hard-kills the worker process (after
        its optional ``delay_ms``), exactly like a segfault would: no
        exception propagates, the pool just breaks.
        """
        chunk_terms = [term for terms in term_lists for term in terms]
        for armed in self._select("worker_crash", chunk_terms):
            if armed.fault.delay_ms:
                time.sleep(armed.fault.delay_ms / 1000.0)
            os._exit(WORKER_CRASH_EXIT)

    def corrupt(self, payload: str) -> str:
        """Payload hook: garble the serialised document when armed."""
        for _ in self._select("corrupt_payload", ()):
            payload = payload[: len(payload) // 2] + "<corrupted/>"
        return payload

    def before_reload(self) -> None:
        """Reload hook: make the incoming generation look corrupt.

        Fires inside :meth:`repro.service.QueryService.reload` before
        the new generation is built, playing the role of a snapshot
        that fails verification — the service must reject the reload
        and keep serving the old generation (docs/STORAGE.md).
        """
        for armed in self._select("reload_corrupt", ()):
            raise InjectedFaultError(armed.fault.message)

    def on_replica_visit(self, shard: str, replica: str,
                         terms: Sequence[str] = (),
                         deadline: object = None) -> None:
        """Corpus replica-visit hook: strike the replica fault kinds.

        Called by :class:`~repro.corpus.CorpusService` just before a
        shard visit runs against a chosen replica.  A ``slow_replica``
        sleeps, capped at the visit's remaining deadline budget when
        one is given — a real straggler would be *abandoned* at the
        deadline, and since a sleeping thread cannot be abandoned, the
        cap models the caller's wall-clock view.  A ``replica_down``
        raises :class:`InjectedFaultError`; a ``torn_replica`` raises
        :class:`~repro.exceptions.StorageError` (the mid-read-tear
        failure class), so both failover paths are exercised.
        """
        for armed in self._select("slow_replica", terms,
                                  shard=shard, replica=replica):
            delay_ms = armed.fault.delay_ms
            remaining = getattr(deadline, "remaining_ms", None)
            if remaining is not None and remaining != float("inf"):
                delay_ms = min(delay_ms, max(0.0, remaining))
            if delay_ms > 0:
                time.sleep(delay_ms / 1000.0)
        for armed in self._select("replica_down", terms,
                                  shard=shard, replica=replica):
            raise InjectedFaultError(
                f"{armed.fault.message} (replica {shard}/{replica})")
        for armed in self._select("torn_replica", terms,
                                  shard=shard, replica=replica):
            raise StorageError(
                f"injected torn replica {shard}/{replica}: "
                f"{armed.fault.message}")

    def replica_skew_ms(self, shard: str, replica: str) -> float:
        """Total ``clock_skew_ms`` the visit must budget as already
        spent (0 when no skew fault strikes)."""
        skew = 0.0
        for armed in self._select("clock_skew_ms", (),
                                  shard=shard, replica=replica):
            skew += armed.fault.delay_ms
        return skew

    def inject(self, fault: Fault) -> None:
        """Arm one more fault on a *live* injector.

        The chaos harness uses this to strike mid-run — e.g. killing a
        replica after the workload is already flowing — without
        rebuilding the service under test.  Appending is atomic under
        CPython; firing counts for faults armed this way start at 0.
        """
        self._armed.append(_Armed(fault))

    # -- selection ------------------------------------------------------------

    def _select(self, kind: str, terms: Sequence[str],
                shard: Optional[str] = None,
                replica: Optional[str] = None) -> List[_Armed]:
        struck: List[_Armed] = []
        for armed in self._armed:
            fault = armed.fault
            if fault.kind != kind or armed.exhausted():
                continue
            if fault.terms is not None and not any(
                    term in terms for term in fault.terms):
                continue
            if fault.target is not None and not fault.matches_target(
                    shard or "", replica or ""):
                continue
            if fault.rate < 1.0 and self._rng.random() >= fault.rate:
                continue
            armed.fired += 1
            struck.append(armed)
        return struck

    # -- reporting / round-trip ----------------------------------------------

    def spec(self) -> str:
        """The spec string rebuilding this injector (fresh counters)."""
        return ";".join(armed.fault.clause() for armed in self._armed)

    def summary(self) -> Dict[str, object]:
        """JSON-safe firing report for ``resilience`` stats blocks."""
        fired: Dict[str, int] = {}
        for armed in self._armed:
            if armed.fired:
                fired[armed.fault.kind] = \
                    fired.get(armed.fault.kind, 0) + armed.fired
        return {"spec": self.spec(), "seed": self.seed, "fired": fired}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultInjector({self.spec()!r}, seed={self.seed})"


class NullFaultInjector:
    """The do-nothing injector: the default on every execution path."""

    enabled = False
    seed = 0

    __slots__ = ()

    def before_query(self, terms: Sequence[str]) -> None:
        pass

    def on_worker_chunk(self,
                        term_lists: Sequence[Sequence[str]]) -> None:
        pass

    def corrupt(self, payload: str) -> str:
        return payload

    def before_reload(self) -> None:
        pass

    def on_replica_visit(self, shard: str, replica: str,
                         terms: Sequence[str] = (),
                         deadline: object = None) -> None:
        pass

    def replica_skew_ms(self, shard: str, replica: str) -> float:
        return 0.0

    def spec(self) -> str:
        return ""

    def summary(self) -> Dict[str, object]:
        return {"spec": "", "seed": 0, "fired": {}}


#: Shared no-op instance; service signatures default ``faults`` to this.
NULL_FAULTS = NullFaultInjector()

#: What service signatures accept: a live injector or the no-op.
FaultsLike = Union[FaultInjector, NullFaultInjector]

#: Options parsed as numbers, with their converters.
_NUMERIC = {"times": int, "rate": float, "delay_ms": float}


def parse_faults(spec: Optional[str], seed: int = 0) -> FaultsLike:
    """Parse a spec string (module grammar) into an injector.

    Empty / ``None`` specs yield :data:`NULL_FAULTS`.  Malformed specs
    raise :class:`~repro.exceptions.QueryError` naming the offending
    clause — a wrong fault spec silently injecting nothing would make a
    resilience test vacuous.
    """
    if not spec or not spec.strip():
        return NULL_FAULTS
    faults: List[Fault] = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        kind, _, raw_options = clause.partition(":")
        fields: Dict[str, object] = {"kind": kind.strip()}
        if raw_options.strip():
            for option in raw_options.split(","):
                name, eq, value = option.partition("=")
                name, value = name.strip(), value.strip()
                if not eq or not name:
                    raise QueryError(
                        f"malformed fault option {option!r} in clause "
                        f"{clause!r} (expected name=value)")
                if name == "terms":
                    fields["terms"] = tuple(
                        term for term in value.split("+") if term)
                elif name in _NUMERIC:
                    try:
                        fields[name] = _NUMERIC[name](value)
                    except ValueError:
                        raise QueryError(
                            f"fault option {name}={value!r} in clause "
                            f"{clause!r} is not a number") from None
                elif name == "message":
                    fields["message"] = value
                elif name == "target":
                    fields["target"] = value
                else:
                    raise QueryError(
                        f"unknown fault option {name!r} in clause "
                        f"{clause!r}")
        faults.append(Fault(**fields))  # type: ignore[arg-type]
    if not faults:
        return NULL_FAULTS
    return FaultInjector(faults, seed=seed)


def faults_from_env() -> FaultsLike:
    """The injector described by ``REPRO_FAULTS`` (none by default)."""
    spec = os.environ.get(FAULTS_ENV)
    if not spec:
        return NULL_FAULTS
    raw_seed = os.environ.get(FAULTS_SEED_ENV, "0")
    try:
        seed = int(raw_seed)
    except ValueError:
        raise QueryError(
            f"{FAULTS_SEED_ENV} must be an integer, "
            f"got {raw_seed!r}") from None
    return parse_faults(spec, seed=seed)
