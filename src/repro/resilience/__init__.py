"""repro.resilience — deadlines, retries and fault injection.

The graceful-degradation layer of the library (docs/RESILIENCE.md):

* :class:`Deadline` / :data:`NULL_DEADLINE` — per-query budgets the
  engines poll at scan-step granularity, turning both algorithms into
  *anytime* searches that return explicitly-marked partial outcomes
  instead of raising;
* :class:`RetryPolicy` / :class:`CircuitBreaker` — pacing and pool
  protection for :meth:`repro.service.QueryService.batch_search`'s
  degradation chain (process -> thread -> serial -> error outcome);
* :class:`FaultInjector` / :func:`parse_faults` /
  :func:`faults_from_env` — deterministic, seeded injection of worker
  crashes, slow queries, query errors and corrupt index payloads, used
  by the tests and the CI fault smoke.

Everything defaults to inert null objects, so uninstrumented queries
are byte-identical to a build without this package.
"""

from repro.resilience.deadline import (Deadline, DeadlineLike,
                                       NULL_DEADLINE, NullDeadline,
                                       REASON_COMPLETE, REASON_DEADLINE,
                                       REASON_STEP_BUDGET, as_deadline)
from repro.resilience.faults import (FAULT_KINDS, Fault, FaultInjector,
                                     FaultsLike, InjectedFaultError,
                                     NULL_FAULTS, NullFaultInjector,
                                     REPLICA_KINDS, faults_from_env,
                                     parse_faults)
from repro.resilience.retry import (CircuitBreaker, DEFAULT_BACKOFF_MS,
                                    DEFAULT_MAX_RETRIES, RetryPolicy)

__all__ = [
    # deadlines
    "Deadline", "NullDeadline", "NULL_DEADLINE", "DeadlineLike",
    "as_deadline", "REASON_COMPLETE", "REASON_DEADLINE",
    "REASON_STEP_BUDGET",
    # retry / breaker
    "RetryPolicy", "CircuitBreaker", "DEFAULT_MAX_RETRIES",
    "DEFAULT_BACKOFF_MS",
    # fault injection
    "Fault", "FaultInjector", "NullFaultInjector", "NULL_FAULTS",
    "FaultsLike", "InjectedFaultError", "FAULT_KINDS",
    "REPLICA_KINDS", "parse_faults", "faults_from_env",
]
