"""Seeded chaos harness: faults against a *live served* corpus.

The resilience layers each carry their own tests, but the properties
that matter compose: replica failover under a breaker, hedging under a
deadline, torn reads under clock skew — all at once, through the real
HTTP front door.  :func:`run_chaos` drives exactly that composition
and asserts the system's end-to-end invariants, the ones every
resilience feature exists to protect:

1. **Every query is answered** — faults degrade, they never turn into
   a 5xx or an unanswered request.
2. **Non-partial answers are bit-identical** to a fault-free oracle
   computed over the same corpus before any fault is armed.  (A
   replica is a perfect substitute — docs/CORPUS.md — so no amount of
   failover or hedging may change a complete answer.)
3. **No deadline overshoot** beyond an epsilon: a request carrying
   ``deadline_ms`` returns within ``deadline_ms + epsilon_ms`` of
   wall clock, no matter which faults strike.
4. **Counters stay consistent** — a hedge that fired was either won
   or lost, never both; replica breaker state reflects the injected
   failures.

Each phase builds a fresh :class:`~repro.corpus.CorpusService` (thread
scatter, replica routing, optional hedging) behind
:func:`repro.serve.start_in_thread`, replays the same seeded workload
over HTTP, and records violations instead of raising — the report
(format ``repro.chaos/v1``) names every broken invariant, and the CLI
(``repro chaos``) exits non-zero iff any were found.

Phases, in order:

``baseline``
    No faults.  Establishes that the served corpus reproduces the
    oracle at all (a failing baseline voids the other phases).
``replica-down``
    Mid-run, the replica each shard is *currently being served by*
    (its router's preferred pick) is killed via an injected
    ``replica_down`` fault (:meth:`FaultInjector.inject` on the live
    injector) — targeting the routing favourite guarantees the kill
    lands on the very next visit.  Invariants: the kills strike, and
    zero PARTIAL answers — failover must absorb the loss completely.
``slow-replica-hedge``
    Primaries straggle (``slow_replica``); a fixed-trigger hedge
    policy re-issues the visit to the healthy replica.  Invariants:
    hedges fire, answers stay bit-identical, wall clock stays inside
    the deadline envelope.
``torn-skew``
    Seeded-rate ``torn_replica`` reads race ``clock_skew_ms`` budget
    shrinkage.  Invariants: everything answers; partial answers are
    honestly marked; complete answers match the oracle.

The workload derives from the corpus's own persisted per-term bounds
(``BOUNDS.json``), so every chaos run queries terms the corpus really
contains; ``seed`` fixes the workload, the fault RNG and therefore the
whole run.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.corpus.builder import load_corpus_manifest, read_bounds
from repro.corpus.replication import HedgePolicy
from repro.corpus.service import CorpusService
from repro.exceptions import QueryError
from repro.obs.metrics import MetricsCollector, Stopwatch
from repro.resilience.faults import (Fault, FaultInjector, FaultsLike,
                                     NULL_FAULTS)

#: Report format tag (versioned like every other JSON artifact).
CHAOS_FORMAT = "repro.chaos/v1"

#: Default whole-request deadline each chaos query carries.
DEFAULT_DEADLINE_MS = 1500.0

#: Default slack on invariant 3 — covers HTTP framing, executor queue
#: hand-off and scheduler jitter on a loaded CI box.
DEFAULT_EPSILON_MS = 750.0

#: Default ``slow_replica`` straggle, chosen to dwarf the hedge
#: trigger while staying far inside the deadline.
DEFAULT_SLOW_MS = 400.0

#: Default fixed hedge trigger for the ``slow-replica-hedge`` phase.
DEFAULT_HEDGE_MS = 60.0


def _workload(corpus_dir: str, seed: int,
              queries: int) -> List[Tuple[str, ...]]:
    """A seeded query list drawn from the corpus's own bounds terms,
    so every query names terms the corpus actually contains."""
    import random
    manifest = load_corpus_manifest(corpus_dir)
    terms: set = set()
    for position in range(manifest.shard_count):
        payload = read_bounds(manifest.shard_dir(position))
        if payload and isinstance(payload.get("terms"), dict):
            terms.update(str(term) for term in payload["terms"])
    pool = sorted(terms)
    if not pool:
        raise QueryError(f"corpus {corpus_dir} has no bounds terms to "
                         f"build a chaos workload from")
    rng = random.Random(seed)
    workload: List[Tuple[str, ...]] = []
    for _ in range(queries):
        count = min(len(pool), rng.choice((1, 1, 2)))
        workload.append(tuple(rng.sample(pool, count)))
    return workload


def _post_search(port: int, payload: Dict[str, Any],
                 timeout_s: float = 30.0
                 ) -> Tuple[int, Dict[str, Any]]:
    connection = http.client.HTTPConnection("127.0.0.1", port,
                                            timeout=timeout_s)
    try:
        connection.request("POST", "/search",
                           body=json.dumps(payload).encode("utf-8"))
        response = connection.getresponse()
        body = json.loads(response.read().decode("utf-8"))
        return response.status, body
    finally:
        connection.close()


def _rows(payload: Dict[str, Any]) -> List[Tuple[str, str]]:
    """Bit-exact comparison key for one answer list: Dewey code plus
    shortest-exact float repr (the serving layer's wire contract)."""
    return [(str(row["code"]), repr(float(row["probability"])))
            for row in payload.get("results", ())]


def _oracle(corpus_dir: str,
            workload: Sequence[Tuple[str, ...]],
            k: int) -> Dict[Tuple[str, ...], List[Tuple[str, str]]]:
    """Fault-free expected answers: a clean serial service, no
    deadline, computed before any fault is armed."""
    service = CorpusService(corpus_dir)
    oracle: Dict[Tuple[str, ...], List[Tuple[str, str]]] = {}
    for query in workload:
        if query in oracle:
            continue
        outcome = service.search(list(query), k=k)
        oracle[query] = [(str(result.code),
                          repr(float(result.probability)))
                         for result in outcome.results]
    return oracle


class _Phase:
    """One chaos phase: a served corpus, a workload replay, and the
    invariant ledger."""

    def __init__(self, name: str, corpus_dir: str,
                 oracle: Dict[Tuple[str, ...], List[Tuple[str, str]]],
                 k: int, deadline_ms: float, epsilon_ms: float,
                 faults: FaultsLike = NULL_FAULTS,
                 hedge: Optional[HedgePolicy] = None,
                 require_no_partial: bool = False,
                 require_hedges: bool = False,
                 arm_at: Optional[int] = None,
                 arm: Union[str, Sequence[Fault]] = ()) -> None:
        self.name = name
        self.corpus_dir = corpus_dir
        self.oracle = oracle
        self.k = k
        self.deadline_ms = deadline_ms
        self.epsilon_ms = epsilon_ms
        self.faults = faults
        self.hedge = hedge
        self.require_no_partial = require_no_partial
        self.require_hedges = require_hedges
        self.arm_at = arm_at
        self.arm = arm if isinstance(arm, str) else tuple(arm)

    def _arm_faults(self, service: CorpusService) -> List[Fault]:
        """The faults to inject at ``arm_at``.

        The ``"kill-serving-replica"`` sentinel targets, per shard,
        the replica its router currently prefers (mirroring the
        selector's own ranking: cold first, then lowest EWMA, then
        index) — so the kill is guaranteed to land on the very next
        visit.  Killing a replica the routing would never look at
        again proves nothing about failover.
        """
        if not isinstance(self.arm, str):
            return list(self.arm)
        faults: List[Fault] = []
        for shard, stats in sorted(service.replica_stats().items()):
            def rank(index: int) -> Tuple[int, float, int]:
                ewma = stats[index]["ewma_ms"]
                return (0 if ewma is None else 1,
                        float(ewma) if ewma is not None else 0.0,
                        index)

            favorite = stats[min(range(len(stats)), key=rank)]
            faults.append(Fault(
                kind="replica_down",
                target=f"{shard}/{favorite['name']}",
                message="chaos: serving replica killed"))
        return faults

    def run(self, workload: Sequence[Tuple[str, ...]]
            ) -> Dict[str, Any]:
        from repro.serve import ServeConfig, start_in_thread
        collector = MetricsCollector()
        service = CorpusService(self.corpus_dir, collector=collector,
                                faults=self.faults, hedge=self.hedge,
                                executor="thread")
        handle = start_in_thread(service, ServeConfig(
            max_inflight=8, drain_timeout_s=30.0))
        violations: List[str] = []
        answered = 0
        partial = 0
        mismatches = 0
        overshoots = 0
        max_wall_ms = 0.0
        post_arm_searched = 0
        try:
            for position, query in enumerate(workload):
                if self.arm_at is not None \
                        and position == self.arm_at \
                        and isinstance(self.faults, FaultInjector):
                    for fault in self._arm_faults(service):
                        self.faults.inject(fault)
                watch = Stopwatch().start()
                try:
                    status, payload = _post_search(
                        handle.port,
                        {"keywords": list(query), "k": self.k,
                         "deadline_ms": self.deadline_ms})
                except (OSError, ValueError) as error:
                    violations.append(
                        f"[{self.name}] query {position} "
                        f"{' '.join(query)!r} got no answer: "
                        f"{type(error).__name__}: {error}")
                    continue
                wall_ms = watch.elapsed_ms
                max_wall_ms = max(max_wall_ms, wall_ms)
                if status != 200:
                    violations.append(
                        f"[{self.name}] query {position} "
                        f"{' '.join(query)!r} answered HTTP {status}: "
                        f"{payload.get('error')}")
                    continue
                answered += 1
                if self.arm_at is not None \
                        and position >= self.arm_at:
                    post_arm_searched += int(
                        (payload.get("corpus") or {})
                        .get("searched", 0))
                if wall_ms > self.deadline_ms + self.epsilon_ms:
                    overshoots += 1
                    violations.append(
                        f"[{self.name}] query {position} overshot its "
                        f"deadline: {wall_ms:.0f}ms > "
                        f"{self.deadline_ms:.0f}ms + "
                        f"{self.epsilon_ms:.0f}ms")
                if payload.get("partial"):
                    partial += 1
                    if self.require_no_partial:
                        violations.append(
                            f"[{self.name}] query {position} "
                            f"{' '.join(query)!r} came back PARTIAL "
                            f"({payload.get('termination_reason')}) "
                            f"although failover should have absorbed "
                            f"the fault")
                    continue
                if _rows(payload) != self.oracle[query]:
                    mismatches += 1
                    violations.append(
                        f"[{self.name}] query {position} "
                        f"{' '.join(query)!r} diverged from the "
                        f"fault-free oracle")
        finally:
            handle.stop()
        hedges = {
            "fired": int(collector.counter("corpus.hedge.fired")),
            "won": int(collector.counter("corpus.hedge.won")),
            "lost": int(collector.counter("corpus.hedge.lost")),
        }
        if hedges["won"] + hedges["lost"] > hedges["fired"]:
            violations.append(
                f"[{self.name}] hedge counters inconsistent: "
                f"won {hedges['won']} + lost {hedges['lost']} > "
                f"fired {hedges['fired']}")
        if self.require_hedges and hedges["fired"] == 0:
            violations.append(
                f"[{self.name}] no hedge fired although every primary "
                f"visit straggled past the trigger")
        replicas = service.replica_stats()
        failures = sum(int(entry["failures"])
                       for stats in replicas.values()
                       for entry in stats)
        fired: Dict[str, int] = {}
        if isinstance(self.faults, FaultInjector):
            summary = self.faults.summary()["fired"]
            fired = dict(summary)  # type: ignore[arg-type]
            downs = int(fired.get("replica_down", 0)) \
                + int(fired.get("torn_replica", 0))
            if downs and failures == 0:
                violations.append(
                    f"[{self.name}] breaker counters inconsistent: "
                    f"{downs} replica faults fired but no replica "
                    f"recorded a failure")
            if self.arm and post_arm_searched > 0 \
                    and int(fired.get("replica_down", 0)) == 0:
                violations.append(
                    f"[{self.name}] armed replica kills never "
                    f"struck although {post_arm_searched} post-arm "
                    f"shard visits ran — the phase proved nothing "
                    f"about failover")
        return {"phase": self.name,
                "queries": len(workload),
                "answered": answered,
                "partial": partial,
                "mismatches": mismatches,
                "overshoots": overshoots,
                "max_wall_ms": round(max_wall_ms, 3),
                "hedges": hedges,
                "replica_failures": failures,
                "faults_fired": fired,
                "violations": list(violations)}


def run_chaos(corpus_dir: Union[str, "object"], seed: int = 7,
              queries: int = 12, k: int = 5,
              deadline_ms: float = DEFAULT_DEADLINE_MS,
              epsilon_ms: float = DEFAULT_EPSILON_MS,
              slow_ms: float = DEFAULT_SLOW_MS,
              hedge_ms: float = DEFAULT_HEDGE_MS) -> Dict[str, Any]:
    """Run the full chaos suite against ``corpus_dir``; returns the
    ``repro.chaos/v1`` report (``report["ok"]`` gates the CLI exit).

    Requires a corpus built with ``replicas >= 2`` — the whole point
    is proving that killing a replica of every shard changes nothing.
    """
    corpus_dir = str(corpus_dir)
    manifest = load_corpus_manifest(corpus_dir)
    if manifest.replicas < 2:
        raise QueryError(
            f"chaos needs a corpus built with --replicas 2 or more "
            f"(got {manifest.replicas}); replica failover is the "
            f"property under test")
    workload = _workload(corpus_dir, seed, queries)
    oracle = _oracle(corpus_dir, workload, k)

    phases = [
        _Phase("baseline", corpus_dir, oracle, k, deadline_ms,
               epsilon_ms),
        # Killing the serving replica of *every* shard mid-run must
        # be invisible: failover answers from the surviving replica
        # with zero PARTIAL outcomes.
        _Phase("replica-down", corpus_dir, oracle, k, deadline_ms,
               epsilon_ms,
               faults=FaultInjector([], seed=seed),
               require_no_partial=True,
               arm_at=max(1, queries // 3),
               arm="kill-serving-replica"),
        # Every primary visit straggles; the hedge races r1 and wins.
        _Phase("slow-replica-hedge", corpus_dir, oracle, k,
               deadline_ms, epsilon_ms,
               faults=FaultInjector(
                   [Fault(kind="slow_replica", target="r0",
                          delay_ms=slow_ms)], seed=seed),
               hedge=HedgePolicy(hedge_ms=hedge_ms),
               require_hedges=True),
        # Torn reads at a seeded rate, with the surviving replica's
        # clock running ahead (budgets shrink, never overshoot).
        _Phase("torn-skew", corpus_dir, oracle, k, deadline_ms,
               epsilon_ms,
               faults=FaultInjector(
                   [Fault(kind="torn_replica", target="r0", rate=0.5,
                          message="chaos: torn snapshot read"),
                    Fault(kind="clock_skew_ms", target="r1",
                          delay_ms=25.0)], seed=seed)),
    ]

    phase_reports = [phase.run(workload) for phase in phases]
    violations = [violation for report in phase_reports
                  for violation in report["violations"]]
    return {"format": CHAOS_FORMAT,
            "corpus": corpus_dir,
            "seed": seed,
            "k": k,
            "queries": queries,
            "replicas": manifest.replicas,
            "shards": manifest.shard_count,
            "deadline_ms": deadline_ms,
            "epsilon_ms": epsilon_ms,
            "phases": phase_reports,
            "violations": violations,
            "ok": not violations}
