"""Probability links (the gamma index of Section IV-A).

A *PrLink* is the tuple of conditional edge probabilities along a node's
root path, aligned component-by-component with its Dewey code: entry 0
is the root's probability (always 1), entry ``i`` is the probability of
the edge onto the node at code prefix length ``i + 1``.  The paper keeps
one such link per keyword node, e.g. ``1, 0.25, 0.6, 1, 0.5`` for D1.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.exceptions import EncodingError

#: Conditional probabilities root -> node, one entry per Dewey component.
PrLink = Tuple[float, ...]


def path_probability(link: PrLink, length: int = -1) -> float:
    """``Pr(path_root->v)`` for the node at component ``length``.

    With the default ``length=-1`` the full link is used (the node the
    link belongs to); shorter lengths give the path probability of the
    node's ancestors, which PrStack needs when it finalises stack frames.
    """
    if length == -1:
        length = len(link)
    if not 0 <= length <= len(link):
        raise EncodingError(
            f"path length {length} out of range for link of {len(link)}")
    return math.prod(link[:length])


def prefix_probabilities(link: PrLink) -> Tuple[float, ...]:
    """All cumulative path probabilities, index ``i`` covering ``i + 1``
    components (index 0 is the root's existence probability, 1)."""
    cumulative = []
    running = 1.0
    for probability in link:
        running *= probability
        cumulative.append(running)
    return tuple(cumulative)


def validate_link(link: PrLink) -> None:
    """Raise :class:`EncodingError` unless every entry lies in ``(0, 1]``
    and the root entry is 1."""
    if not link:
        raise EncodingError("a PrLink cannot be empty")
    if link[0] != 1.0:
        raise EncodingError(f"root probability must be 1, got {link[0]!r}")
    for position, probability in enumerate(link):
        if not 0.0 < probability <= 1.0:
            raise EncodingError(
                f"link[{position}] = {probability!r} outside (0, 1]")
