"""Extended Dewey codes.

A code is a sequence of components, one per node on the root path.  Each
component records the node's 1-based position among its siblings and the
node's kind: ordinary (plain number), MUX (``M`` prefix) or IND (``I``
prefix), exactly as in Figure 1(b) of the paper — ``1.M1.I2.1`` is the
node reached by taking the first child (a MUX), then its second child
(an IND), then that node's first child.

Document order compares the *positions* lexicographically; the kind
markers carry type information but never affect order (a parent has at
most one child per position regardless of kind).
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.exceptions import EncodingError
from repro.prxml.model import NodeType

_KIND_PREFIX = {NodeType.ORDINARY: "", NodeType.MUX: "M",
                NodeType.IND: "I", NodeType.EXP: "E"}
_PREFIX_KIND = {"M": NodeType.MUX, "I": NodeType.IND, "E": NodeType.EXP}


class DeweyCode:
    """Immutable extended Dewey code.

    Instances are hashable, totally ordered by document order, and cheap
    to extend (:meth:`child`) or truncate (:meth:`prefix`, :meth:`parent`).
    """

    __slots__ = ("positions", "kinds", "_hash")

    def __init__(self, positions: Tuple[int, ...],
                 kinds: Tuple[NodeType, ...]):
        if len(positions) != len(kinds):
            raise EncodingError(
                f"positions/kinds length mismatch: "
                f"{len(positions)} != {len(kinds)}")
        if not positions:
            raise EncodingError("a Dewey code cannot be empty")
        if any(position < 1 for position in positions):
            raise EncodingError(f"positions must be >= 1: {positions}")
        self.positions = positions
        self.kinds = kinds
        self._hash = hash(positions)

    # -- construction -------------------------------------------------------

    @classmethod
    def root(cls) -> "DeweyCode":
        """The code of a document root: ``1``, ordinary."""
        return cls((1,), (NodeType.ORDINARY,))

    @classmethod
    def parse(cls, text: str) -> "DeweyCode":
        """Parse ``"1.M1.I2.1"`` notation."""
        positions = []
        kinds = []
        for component in text.split("."):
            if not component:
                raise EncodingError(f"empty component in {text!r}")
            kind = _PREFIX_KIND.get(component[0], NodeType.ORDINARY)
            digits = component[1:] if kind is not NodeType.ORDINARY else component
            if not digits.isdigit():
                raise EncodingError(
                    f"bad component {component!r} in {text!r}")
            positions.append(int(digits))
            kinds.append(kind)
        return cls(tuple(positions), tuple(kinds))

    def child(self, position: int, kind: NodeType) -> "DeweyCode":
        """Extend by one component (a child at ``position`` of ``kind``)."""
        return DeweyCode(self.positions + (position,), self.kinds + (kind,))

    # -- structure ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.positions)

    @property
    def node_type(self) -> NodeType:
        """Kind of the node this code denotes (its last component)."""
        return self.kinds[-1]

    def prefix(self, length: int) -> "DeweyCode":
        """The ancestor-or-self code of the given component count."""
        if not 1 <= length <= len(self.positions):
            raise EncodingError(
                f"prefix length {length} out of range for {self}")
        return DeweyCode(self.positions[:length], self.kinds[:length])

    def parent(self) -> "DeweyCode":
        """Code of the parent node; raises for the root."""
        if len(self.positions) == 1:
            raise EncodingError("the root code has no parent")
        return self.prefix(len(self.positions) - 1)

    def iter_prefixes(self) -> Iterator["DeweyCode"]:
        """Yield every ancestor-or-self code, shortest (root) first."""
        for length in range(1, len(self.positions) + 1):
            yield self.prefix(length)

    # -- relations ------------------------------------------------------------

    def is_ancestor_of(self, other: "DeweyCode") -> bool:
        """Proper-ancestor test."""
        return (len(self.positions) < len(other.positions)
                and other.positions[:len(self.positions)] == self.positions)

    def is_ancestor_or_self_of(self, other: "DeweyCode") -> bool:
        """Ancestor-or-equal test."""
        return (len(self.positions) <= len(other.positions)
                and other.positions[:len(self.positions)] == self.positions)

    def subtree_upper_bound(self) -> Tuple[int, ...]:
        """A positions tuple strictly greater (in document order) than every
        descendant's positions, for binary-searching subtree ranges:
        all descendants ``d`` satisfy ``self.positions <= d.positions <
        self.subtree_upper_bound()``."""
        return self.positions[:-1] + (self.positions[-1] + 1,)

    # -- ordering / identity ------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, DeweyCode)
                and self.positions == other.positions)

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "DeweyCode") -> bool:
        return self.positions < other.positions

    def __le__(self, other: "DeweyCode") -> bool:
        return self.positions <= other.positions

    def __gt__(self, other: "DeweyCode") -> bool:
        return self.positions > other.positions

    def __ge__(self, other: "DeweyCode") -> bool:
        return self.positions >= other.positions

    def __str__(self) -> str:
        return ".".join(
            f"{_KIND_PREFIX[kind]}{position}"
            for position, kind in zip(self.positions, self.kinds))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeweyCode({self})"


def common_prefix_length(left: DeweyCode, right: DeweyCode) -> int:
    """Number of leading components the two codes share (their LCA depth)."""
    length = 0
    for left_pos, right_pos in zip(left.positions, right.positions):
        if left_pos != right_pos:
            break
        length += 1
    return length


def lowest_common_ancestor(left: DeweyCode, right: DeweyCode) -> DeweyCode:
    """Code of the LCA node of the two codes."""
    length = common_prefix_length(left, right)
    if length == 0:
        raise EncodingError(
            f"{left} and {right} share no prefix; codes must come from "
            "one document")
    return left.prefix(length)
