"""Extended Dewey encoding for p-documents (Section III-A of the paper).

Each node is labelled by the path of sibling positions from the root,
with distributional components marked ``M`` (MUX) or ``I`` (IND) —
e.g. ``1.M1.I2.1`` — so that ancestor/descendant tests, document order
and longest-common-prefix computations reduce to tuple operations, and
the node type of every path component is readable from the code itself.
"""

from repro.encoding.dewey import DeweyCode, common_prefix_length
from repro.encoding.prlink import PrLink, path_probability, prefix_probabilities
from repro.encoding.encoder import EncodedDocument, encode_document

__all__ = [
    "DeweyCode",
    "common_prefix_length",
    "PrLink",
    "path_probability",
    "prefix_probabilities",
    "EncodedDocument",
    "encode_document",
]
