"""Encoding a p-document: Dewey codes + probability links for every node.

:func:`encode_document` performs the single preorder pass the paper
sketches in Section III-A, producing an :class:`EncodedDocument` that
maps nodes to extended Dewey codes and PrLinks and back.  The encoded
document is the input to index construction and to both search
algorithms.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.exceptions import EncodingError
from repro.encoding.dewey import DeweyCode
from repro.encoding.prlink import PrLink
from repro.prxml.model import PDocument, PNode


class EncodedDocument:
    """A p-document together with its Dewey/PrLink encoding.

    Attributes:
        document: the underlying :class:`PDocument`.
        codes: Dewey code per ``node_id`` (list indexed by id).
        links: PrLink per ``node_id`` (aligned with ``codes``).
    """

    def __init__(self, document: PDocument, codes: List[DeweyCode],
                 links: List[PrLink]):
        if not len(document) == len(codes) == len(links):
            raise EncodingError(
                "encoding arrays do not cover the document: "
                f"{len(document)} nodes, {len(codes)} codes, "
                f"{len(links)} links")
        self.document = document
        self.codes = codes
        self.links = links
        self._node_by_positions: Dict[Tuple[int, ...], int] = {
            code.positions: node_id for node_id, code in enumerate(codes)}

    # -- lookups --------------------------------------------------------------

    def code_of(self, node: PNode) -> DeweyCode:
        """Dewey code of a node of this document."""
        return self.codes[node.node_id]

    def link_of(self, node: PNode) -> PrLink:
        """Probability link (root-path edge probabilities) of a node."""
        return self.links[node.node_id]

    def node_at(self, code: DeweyCode) -> PNode:
        """The p-node a code denotes; raises for foreign codes."""
        node_id = self._node_by_positions.get(code.positions)
        if node_id is None:
            raise EncodingError(f"no node with code {code}")
        return self.document.node_by_id(node_id)

    def has_code(self, code: DeweyCode) -> bool:
        """Whether a code denotes a node of this document."""
        return code.positions in self._node_by_positions

    def exp_subsets_at(self, code: DeweyCode):
        """Subset distribution of the EXP node at ``code`` (the
        ``exp_resolver`` the stack engine needs on EXP documents)."""
        return self.node_at(code).exp_subsets or []

    def path_probability(self, code: DeweyCode) -> float:
        """``Pr(path_root->v)`` for the node at ``code``."""
        node = self.node_at(code)
        link = self.links[node.node_id]
        probability = 1.0
        for edge_probability in link:
            probability *= edge_probability
        return probability

    def iter_codes(self) -> Iterator[DeweyCode]:
        """All codes in document (preorder) order."""
        return iter(self.codes)

    def __len__(self) -> int:
        return len(self.document)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EncodedDocument(nodes={len(self.document)})"


def encode_document(document: PDocument) -> EncodedDocument:
    """Assign extended Dewey codes and PrLinks in one preorder pass."""
    count = len(document)
    codes: List[Optional[DeweyCode]] = [None] * count
    links: List[Optional[PrLink]] = [None] * count

    root = document.root
    codes[root.node_id] = DeweyCode.root()
    links[root.node_id] = (1.0,)

    # Iterative preorder so deep documents cannot overflow the stack.
    stack: List[PNode] = [root]
    while stack:
        node = stack.pop()
        code = codes[node.node_id]
        link = links[node.node_id]
        for position, child in enumerate(node.children, start=1):
            if not 0 <= child.node_id < count \
                    or codes[child.node_id] is not None:
                raise EncodingError(
                    f"node {child.label!r} has stale id {child.node_id}; "
                    "call PDocument.refresh() after mutating the tree")
            codes[child.node_id] = code.child(position, child.node_type)
            links[child.node_id] = link + (child.edge_prob,)
            stack.append(child)

    missing = [node_id for node_id, code in enumerate(codes) if code is None]
    if missing:
        raise EncodingError(
            f"{len(missing)} nodes unreachable from the root; "
            "did you call PDocument.refresh() after mutating the tree?")
    return EncodedDocument(document, codes, links)  # type: ignore[arg-type]
