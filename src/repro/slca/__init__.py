"""Deterministic SLCA computation (substrate, after Xu & Papakonstantinou).

The paper's EagerTopK algorithm seeds from ``get_slca`` — a classical
keyword-search pass that treats every node (distributional included) as
ordinary and ignores probabilities.  This subpackage implements that
substrate three ways:

* :mod:`repro.slca.indexed_lookup` — Indexed Lookup Eager, binary
  searches over the longer lists (best when frequencies differ a lot);
* :mod:`repro.slca.scan_eager` — Scan Eager, cursor advancement over
  all lists (best when frequencies are similar);
* :mod:`repro.slca.stack_based` — XRANK-style stack scan over merged
  match entries (also the reference implementation the others are
  tested against).

:mod:`repro.slca.deterministic` computes SLCAs on materialised instance
trees, which the possible-world baseline evaluates per world.
"""

from repro.slca.deterministic import (elca_of_world,
                                      keyword_mask_of_det_node,
                                      slca_of_world)
from repro.slca.indexed_lookup import indexed_lookup_eager
from repro.slca.scan_eager import scan_eager
from repro.slca.stack_based import stack_based_slca
from repro.slca.base import remove_ancestors

__all__ = [
    "slca_of_world",
    "elca_of_world",
    "keyword_mask_of_det_node",
    "indexed_lookup_eager",
    "scan_eager",
    "stack_based_slca",
    "remove_ancestors",
]
