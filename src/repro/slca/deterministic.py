"""SLCA computation on deterministic instance trees.

Used by the possible-world baseline: for each world the paper's
Equation 1 needs the set of SLCA nodes of that world, which we compute
with one postorder pass propagating keyword bitmasks.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.index.tokenizer import tokenize
from repro.prxml.possible_worlds import DetNode


def keyword_mask_of_det_node(node: DetNode, terms: Sequence[str]) -> int:
    """Bitmask of the query terms the node itself matches (tag or text)."""
    own = set(tokenize(node.label))
    if node.text:
        own.update(tokenize(node.text))
    mask = 0
    for bit, term in enumerate(terms):
        if term in own:
            mask |= 1 << bit
    return mask


def elca_of_world(root: DetNode, terms: Sequence[str]) -> List[DetNode]:
    """ELCA nodes of one instance document for the given terms.

    Exclusive-LCA semantics (after Xu & Papakonstantinou, EDBT 2008,
    the paper's reference [23]) in its consume-recursion form: walk
    bottom-up accumulating *effective* keyword masks; a node whose
    effective mask covers every term is an answer, and its mask resets
    to zero so the consumed occurrences do not witness any ancestor.
    Unlike SLCA, an ancestor of an answer can still be an answer from
    its remaining occurrences.
    """
    full = (1 << len(terms)) - 1
    if full == 0:
        return []
    effective_mask: Dict[int, int] = {}
    answers: List[DetNode] = []

    stack = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if not expanded:
            stack.append((node, True))
            stack.extend((child, False) for child in reversed(node.children))
            continue
        mask = keyword_mask_of_det_node(node, terms)
        for child in node.children:
            mask |= effective_mask[id(child)]
        if mask == full:
            answers.append(node)
            mask = 0
        effective_mask[id(node)] = mask
    return answers


def slca_of_world(root: DetNode, terms: Sequence[str]) -> List[DetNode]:
    """SLCA nodes of one instance document for the given terms.

    A node is an SLCA iff its subtree mask covers every term and no
    child subtree does.  Runs in one iterative postorder pass.
    """
    full = (1 << len(terms)) - 1
    if full == 0:
        return []
    subtree_mask: Dict[int, int] = {}
    answers: List[DetNode] = []

    stack = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if not expanded:
            stack.append((node, True))
            stack.extend((child, False) for child in reversed(node.children))
            continue
        mask = keyword_mask_of_det_node(node, terms)
        child_has_all = False
        for child in node.children:
            child_mask = subtree_mask[id(child)]
            mask |= child_mask
            if child_mask == full:
                child_has_all = True
        subtree_mask[id(node)] = mask
        if mask == full and not child_has_all:
            answers.append(node)
    return answers
