"""Shared helpers for the deterministic SLCA algorithms."""

from __future__ import annotations

from typing import Iterable, List

from repro.encoding.dewey import DeweyCode


def remove_ancestors(candidates: Iterable[DeweyCode]) -> List[DeweyCode]:
    """Keep only candidates that have no candidate descendant.

    Every SLCA is among the candidates, and a candidate with a candidate
    descendant cannot be smallest, so filtering ancestors yields exactly
    the SLCA set.  Candidates are sorted into document order first, so a
    single last-kept comparison suffices (an ancestor precedes all of its
    descendants in document order).
    """
    kept: List[DeweyCode] = []
    for candidate in sorted(candidates):
        while kept and kept[-1].is_ancestor_or_self_of(candidate):
            if kept[-1] == candidate:
                break
            kept.pop()
        if not kept or kept[-1] != candidate:
            kept.append(candidate)
    return kept
