"""Indexed Lookup Eager SLCA over Dewey posting lists.

The classical algorithm of Xu & Papakonstantinou (SIGMOD 2005, paper
reference [12]) that EagerTopK uses as ``get_slca``: iterate the
shortest keyword list; for every node ``v`` in it, look up (by binary
search) the closest match in each other list and keep the deepest LCA;
the surviving candidates, minus ancestors, are the SLCAs.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional, Sequence

from repro.encoding.dewey import DeweyCode, common_prefix_length
from repro.slca.base import remove_ancestors


def indexed_lookup_eager(keyword_lists: Sequence[Sequence[DeweyCode]]
                         ) -> List[DeweyCode]:
    """SLCA codes for the query whose i-th list holds keyword i's matches.

    Lists must be in document order (inverted-index postings are).
    Returns the empty list when any keyword has no match.
    """
    if not keyword_lists or any(not lst for lst in keyword_lists):
        return []
    if len(keyword_lists) == 1:
        # Single-keyword query: every match is an LCA of itself; SLCAs
        # are the matches without matching descendants.
        return remove_ancestors(keyword_lists[0])

    ordered = sorted(keyword_lists, key=len)
    shortest, rest = ordered[0], ordered[1:]
    rest_positions = [[code.positions for code in lst] for lst in rest]

    candidates: List[DeweyCode] = []
    for anchor in shortest:
        candidate = anchor
        for lst, positions in zip(rest, rest_positions):
            closest = _closest_lca(candidate, lst, positions)
            if closest is None:
                candidate = None
                break
            candidate = closest
        if candidate is not None:
            candidates.append(candidate)
    return remove_ancestors(candidates)


def _closest_lca(anchor: DeweyCode, matches: Sequence[DeweyCode],
                 positions: Sequence[tuple]) -> Optional[DeweyCode]:
    """Deepest LCA of ``anchor`` with any node in ``matches``.

    The deepest LCA is always achieved by one of the two matches
    adjacent to ``anchor`` in document order, so two binary-searched
    probes suffice (the "lm" lookup of [12]).
    """
    index = bisect_left(positions, anchor.positions)
    best_length = 0
    for probe in (index - 1, index):
        if 0 <= probe < len(matches):
            length = common_prefix_length(anchor, matches[probe])
            best_length = max(best_length, length)
    if best_length == 0:
        return None
    return anchor.prefix(best_length)
