"""Scan Eager SLCA over Dewey posting lists.

The sibling of Indexed Lookup Eager in [12]: instead of binary searching
the longer lists per anchor, it advances one forward cursor per list in
lockstep with the (sorted) anchor list — the right choice when keyword
frequencies are similar, because every list is read once.

For an anchor ``v`` the candidate is ``v.prefix(min_i best_i)`` where
``best_i`` is the deepest common-prefix length of ``v`` with any node of
list ``i``; that equals the chained-LCA candidate of Indexed Lookup
Eager because ``cpl(v.prefix(L), m) = min(L, cpl(v, m))``.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.encoding.dewey import DeweyCode, common_prefix_length
from repro.slca.base import remove_ancestors


def scan_eager(keyword_lists: Sequence[Sequence[DeweyCode]]
               ) -> List[DeweyCode]:
    """SLCA codes; same contract as
    :func:`repro.slca.indexed_lookup.indexed_lookup_eager`."""
    if not keyword_lists or any(not lst for lst in keyword_lists):
        return []
    if len(keyword_lists) == 1:
        return remove_ancestors(keyword_lists[0])

    ordered = sorted(keyword_lists, key=len)
    shortest, rest = ordered[0], ordered[1:]
    cursors = [0] * len(rest)

    candidates: List[DeweyCode] = []
    for anchor in shortest:
        depth = len(anchor)
        for which, lst in enumerate(rest):
            cursor = cursors[which]
            # Advance to the first entry at or after the anchor; the
            # anchor stream ascends, so cursors never back up.
            while cursor < len(lst) and lst[cursor] < anchor:
                cursor += 1
            cursors[which] = cursor
            best = 0
            if cursor > 0:
                best = common_prefix_length(anchor, lst[cursor - 1])
            if cursor < len(lst):
                best = max(best, common_prefix_length(anchor, lst[cursor]))
            depth = min(depth, best)
            if depth == 0:
                break
        if depth > 0:
            candidates.append(anchor.prefix(depth))
    return remove_ancestors(candidates)
