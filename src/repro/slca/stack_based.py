"""Stack-based SLCA over merged match entries (XRANK-style).

One pass over all match entries in document order with a stack of path
components; each frame accumulates the keyword mask of its subtree.
When a frame pops with a full mask and no full-mask child, its node is
an SLCA.  This mirrors PrStack's control flow minus probabilities and is
the reference the other deterministic algorithms are cross-checked
against in tests.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.encoding.dewey import DeweyCode, common_prefix_length
from repro.index.matchlist import MatchEntry


def stack_based_slca(entries: Sequence[MatchEntry], keyword_count: int
                     ) -> List[DeweyCode]:
    """SLCA codes from document-ordered masked match entries.

    Args:
        entries: one entry per matching node, document order, masks OR'd.
        keyword_count: number of query keywords (defines the full mask).
    """
    full = (1 << keyword_count) - 1
    if full == 0 or not entries:
        return []

    answers: List[DeweyCode] = []
    # Each frame: [subtree mask, child-had-full flag]; frame i describes
    # the node at code prefix length i+1 of the current path.
    frames: List[List[object]] = []
    current: DeweyCode = entries[0].code

    def pop_to(keep: int) -> None:
        nonlocal current
        while len(frames) > keep:
            mask, child_full = frames.pop()
            node_code = current.prefix(len(frames) + 1)
            if mask == full and not child_full:
                answers.append(node_code)
            if frames:
                frames[-1][0] |= mask
                if mask == full:
                    frames[-1][1] = True
        if keep:
            current = current.prefix(keep)

    for entry in entries:
        shared = common_prefix_length(current, entry.code) if frames else 0
        pop_to(shared)
        current = entry.code
        while len(frames) < len(entry.code):
            frames.append([0, False])
        frames[-1][0] |= entry.mask
    pop_to(0)
    return sorted(answers)
