"""repro — Top-k keyword search over probabilistic XML data.

A complete, from-scratch reproduction of Li, Liu, Zhou & Wang,
"Top-k Keyword Search over Probabilistic XML Data" (ICDE 2011):
the PrXML{ind,mux} document model, extended Dewey encoding, inverted
keyword indexing, the PrStack and EagerTopK top-k SLCA algorithms with
their pruning properties, the possible-world oracle, and generators for
the XMark/Mondial/DBLP-style experimental workloads.

Quickstart::

    from repro import parse_pxml, topk_search

    doc = parse_pxml('''
        <library>
          <book><title>keyword search</title>
            <mux><year prob="0.7">2010</year>
                 <year prob="0.3">2011</year></mux>
          </book>
        </library>''')
    for result in topk_search(doc, ["keyword", "2010"], k=3):
        print(result)
"""

from repro.core import (Algorithm, Explanation, SearchOutcome, SLCAResult,
                        eager_topk_search, explain_result,
                        monte_carlo_search, possible_worlds_search,
                        profile_lines, prstack_search, threshold_search,
                        topk_search)
from repro.obs import (FlightRecorder, MetricsCollector, NULL_COLLECTOR,
                       NULL_RECORDER, NULL_TRACER, SpanTracer, Stopwatch,
                       TraceRecorder, build_report_v2, configure_logging,
                       derive_trace_id, get_logger, parse_prometheus,
                       render_prometheus, validate_spans)
from repro.encoding import DeweyCode, EncodedDocument, encode_document
from repro.exceptions import (EncodingError, IndexError_, ModelError,
                              ParseError, QueryError, ReproError,
                              StorageError)
from repro.index import (Database, InvertedIndex, build_index,
                         load_database, save_database)
from repro.prxml import (DocumentBuilder, NodeType, PDocument, PNode,
                         document_stats, enumerate_possible_worlds,
                         parse_pxml, parse_pxml_file, sample_possible_world,
                         serialize_pxml, validate_document, write_pxml_file)
from repro.resilience import (CircuitBreaker, Deadline, Fault,
                              FaultInjector, RetryPolicy, parse_faults)
from repro.service import BatchOutcome, QueryService, load_query_file
from repro.twig import (TwigPattern, parse_twig, topk_twig_search,
                        twig_match_probability)

__version__ = "1.0.0"

__all__ = [
    # search
    "Algorithm", "topk_search", "prstack_search", "eager_topk_search",
    "possible_worlds_search", "monte_carlo_search", "threshold_search",
    "explain_result", "profile_lines", "Explanation", "SearchOutcome",
    "SLCAResult",
    # observability
    "MetricsCollector", "NULL_COLLECTOR", "Stopwatch", "TraceRecorder",
    "SpanTracer", "NULL_TRACER", "FlightRecorder", "NULL_RECORDER",
    "derive_trace_id", "validate_spans", "build_report_v2",
    "render_prometheus", "parse_prometheus",
    "configure_logging", "get_logger",
    # model
    "PDocument", "PNode", "NodeType", "DocumentBuilder",
    "parse_pxml", "parse_pxml_file", "serialize_pxml", "write_pxml_file",
    "validate_document", "document_stats",
    "enumerate_possible_worlds", "sample_possible_world",
    # encoding / index
    "DeweyCode", "EncodedDocument", "encode_document",
    "InvertedIndex", "build_index", "Database",
    "save_database", "load_database",
    # serving (docs/SERVICE.md)
    "QueryService", "BatchOutcome", "load_query_file",
    # resilience (docs/RESILIENCE.md)
    "Deadline", "RetryPolicy", "CircuitBreaker", "Fault",
    "FaultInjector", "parse_faults",
    # twig queries
    "TwigPattern", "parse_twig", "topk_twig_search",
    "twig_match_probability",
    # errors
    "ReproError", "ModelError", "ParseError", "EncodingError",
    "IndexError_", "QueryError", "StorageError",
    "__version__",
]
