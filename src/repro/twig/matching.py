"""Deterministic twig evaluation on instance documents.

The possible-world oracle for twig probabilities: one postorder pass
computes, for every instance node, which pattern steps can embed *at*
it and which can embed at-or-below it — the boolean form of the
probability DP in :mod:`repro.twig.probability`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.prxml.possible_worlds import DetNode
from repro.twig.pattern import CHILD, TwigPattern


def match_twig_in_world(root: DetNode, pattern: TwigPattern
                        ) -> List[DetNode]:
    """Instance nodes at which the whole pattern embeds (pattern-root
    bindings), in document order."""
    bindings: List[DetNode] = []
    # For each node: (at_mask, exists_mask) over pattern indices.
    states: Dict[int, int] = {}

    stack = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if not expanded:
            stack.append((node, True))
            stack.extend((child, False) for child in reversed(node.children))
            continue
        child_at = 0
        child_exists = 0
        for child in node.children:
            at_mask, exists_mask = divmod(states[id(child)], 1 << 16)
            child_at |= at_mask
            child_exists |= exists_mask
        at_mask = _at_mask(node, pattern, child_at, child_exists)
        exists_mask = at_mask | child_exists
        states[id(node)] = (at_mask << 16) | exists_mask
        if at_mask & (1 << pattern.root.index):
            bindings.append(node)
    bindings.sort(key=lambda node: node.source_id)
    return bindings


def world_has_match(root: DetNode, pattern: TwigPattern) -> bool:
    """Whether the pattern embeds anywhere in the instance document."""
    return bool(match_twig_in_world(root, pattern))


def _at_mask(node: DetNode, pattern: TwigPattern, child_at: int,
             child_exists: int) -> int:
    """Pattern steps embeddable with their root mapped exactly here."""
    at_mask = 0
    # Steps are numbered in preorder, so iterating in reverse handles
    # pattern leaves before their parents; but _at_ bits only depend on
    # *document* children's bits, so order does not actually matter.
    for step in pattern.nodes:
        if not step.matches(node):
            continue
        satisfied = True
        for branch in step.children:
            required = child_at if branch.axis == CHILD else child_exists
            if not required & (1 << branch.index):
                satisfied = False
                break
        if satisfied:
            at_mask |= 1 << step.index
    return at_mask
