"""Probabilistic twig (tree-pattern) queries.

The structured-query counterpart the paper positions keyword search
against (references [8] and [10]: twig matching and answer ranking over
probabilistic XML).  A twig is a small tree of label/text tests joined
by child (``/``) and descendant (``//``) axes, e.g.::

    movie[title ~ "texas"][year ~ "1984"]//actor

This subpackage provides the pattern model and parser
(:mod:`repro.twig.pattern`), deterministic embedding evaluation on
instance documents — the possible-world oracle
(:mod:`repro.twig.matching`) — and the direct probability computation
(:mod:`repro.twig.probability`): one document-order scan that, without
enumerating worlds, ranks the nodes most likely to root an embedding
and computes the overall match probability, using the same
distribution-table algebra as the keyword algorithms with pattern-state
bitmasks instead of keyword bitmasks.
"""

from repro.twig.pattern import TwigNode, TwigPattern, parse_twig
from repro.twig.matching import match_twig_in_world, world_has_match
from repro.twig.probability import (TwigResult, topk_twig_search,
                                    twig_match_probability)

__all__ = [
    "TwigNode",
    "TwigPattern",
    "parse_twig",
    "match_twig_in_world",
    "world_has_match",
    "TwigResult",
    "topk_twig_search",
    "twig_match_probability",
]
