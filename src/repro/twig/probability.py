"""Direct twig probability computation (no possible worlds).

The same bottom-up machinery as the keyword algorithms, with a richer
state: instead of "which keywords does the subtree contain", each
document node's table tracks the distribution of a *pattern-state
vector* with two bits per pattern step ``q``:

* ``at(q)``  — the pattern subtree rooted at ``q`` embeds with ``q``
  mapped exactly at this node;
* ``ex(q)``  — it embeds with ``q`` mapped at-or-below this node.

Sibling subtrees combine exactly like keyword masks (OR-convolution
under IND/ordinary parents, addition under MUX, subset combination
under EXP) because both bits aggregate across siblings by OR.  At an
ordinary node the aggregate is then passed through a deterministic
transform: ``at`` bits are re-derived from the node's own tests and the
children's bits (child axis reads the children's ``at``, descendant
axis their ``ex``), and ``ex`` bits are carried upward.  Distributional
nodes apply no transform — their children splice up to the closest
ordinary ancestor, so their aggregates pass through untouched, which is
exactly what the possible-world semantics requires.

Ranked answers follow reference [10]'s semantics: each ordinary node is
scored with the probability that the whole pattern embeds *rooted at
it*, independently of other bindings.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.core.distribution import DistTable
from repro.core.engine import StackEngine, StackItem
from repro.core.heap import TopKHeap
from repro.core.result import SearchOutcome, SLCAResult
from repro.exceptions import QueryError
from repro.index.inverted import InvertedIndex
from repro.twig.pattern import CHILD, TwigPattern, parse_twig

#: Twig answers reuse the generic result record.
TwigResult = SLCAResult


class _TwigEngine(StackEngine):
    """Stack engine whose ordinary-node step is the pattern transform.

    ``self_mask`` holds the node's *test mask* (which steps' node-local
    tests it satisfies); the sink receives every node whose post-
    transform state gives the pattern root's ``at`` bit positive mass.
    """

    def __init__(self, pattern: TwigPattern, sink, exp_resolver=None):
        state_bits = (1 << (2 * len(pattern))) - 1
        super().__init__(state_bits, sink, exp_resolver=exp_resolver)
        self.pattern = pattern
        self._root_at_bit = 1 << (2 * pattern.root.index)
        self._transform_cache: Dict[Tuple[int, int], int] = {}

    def _finalize_ordinary(self, frame, table: DistTable,
                           depth: int) -> DistTable:
        test_mask = frame.self_mask
        cache = self._transform_cache

        def remap(aggregate: int) -> int:
            key = (aggregate, test_mask)
            value = cache.get(key)
            if value is None:
                value = cache[key] = self._transform(aggregate, test_mask)
            return value

        table.transform(remap)
        root_at = sum(probability for mask, probability in table.items()
                      if mask & self._root_at_bit)
        if root_at > 0.0:
            self.sink(self._current.prefix(depth),
                      frame.path_prob * root_at)
            self.results_emitted += 1
        return table

    def _transform(self, aggregate: int, test_mask: int) -> int:
        """One node's output state from its children's OR-aggregate."""
        out = 0
        for step in self.pattern.nodes:
            at_bit = 1 << (2 * step.index)
            ex_bit = at_bit << 1
            if test_mask & (1 << step.index):
                satisfied = True
                for branch in step.children:
                    branch_at = 1 << (2 * branch.index)
                    needed = branch_at if branch.axis == CHILD \
                        else branch_at << 1
                    if not aggregate & needed:
                        satisfied = False
                        break
                if satisfied:
                    out |= at_bit
            if out & at_bit or aggregate & ex_bit:
                out |= ex_bit
        return out

    def finish_root(self) -> DistTable:
        """Pop everything and return the document root's state table."""
        if self._current is None:
            return DistTable.unit()
        self._pop_to(self.context_length + 1)
        frame = self._frames.pop()
        return self._finalize(frame, self.context_length + 1)


def _candidate_entries(index: InvertedIndex, pattern: TwigPattern
                       ) -> List[Tuple[int, int]]:
    """(node_id, test mask) for every node matching some step test."""
    masks: Dict[int, int] = {}
    document = index.encoded.document
    for step in pattern.nodes:
        if step.is_wildcard:
            ids: Iterable[int] = index.ordinary_ids()
        elif step.label != "*":
            ids = index.label_postings(step.label)
        else:
            # '*' with a text test: term postings over-approximate.
            ids = index.postings(step.text_term or "")
        bit = 1 << step.index
        for node_id in ids:
            node = document.node_by_id(node_id)
            if node.is_ordinary and step.matches(node):
                masks[node_id] = masks.get(node_id, 0) | bit
    return sorted(masks.items())


def topk_twig_search(index: InvertedIndex, pattern, k: int = 10
                     ) -> SearchOutcome:
    """The ``k`` nodes most likely to root an embedding of ``pattern``.

    Args:
        index: inverted index over an encoded p-document.
        pattern: a :class:`TwigPattern` or its textual form.
        k: number of bindings wanted.

    Returns:
        A :class:`SearchOutcome` of binding nodes scored by
        ``P(pattern embeds rooted at the node)``, hydrated with the
        p-document nodes.
    """
    pattern = _as_pattern(pattern)
    heap = TopKHeap(k)
    outcome = SearchOutcome(stats={
        "algorithm": "twig",
        "pattern": str(pattern),
        "steps": len(pattern),
        "candidates": 0,
    })
    engine = _TwigEngine(pattern, heap.offer,
                         exp_resolver=index.encoded.exp_subsets_at)
    encoded = index.encoded
    for node_id, test_mask in _candidate_entries(index, pattern):
        engine.feed(StackItem(encoded.codes[node_id],
                              encoded.links[node_id], test_mask))
        outcome.stats["candidates"] += 1
    engine.finish()

    outcome.results = [
        TwigResult(code=result.code, probability=result.probability,
                   node=encoded.node_at(result.code))
        for result in heap.results()
    ]
    return outcome


def twig_match_probability(index: InvertedIndex, pattern) -> float:
    """Probability that the pattern embeds *anywhere* in a random
    possible world (the twig-matching probability of reference [8])."""
    pattern = _as_pattern(pattern)
    engine = _TwigEngine(pattern, lambda code, probability: None,
                         exp_resolver=index.encoded.exp_subsets_at)
    encoded = index.encoded
    for node_id, test_mask in _candidate_entries(index, pattern):
        engine.feed(StackItem(encoded.codes[node_id],
                              encoded.links[node_id], test_mask))
    table = engine.finish_root()
    root_ex_bit = 1 << (2 * pattern.root.index + 1)
    return sum(probability for mask, probability in table.items()
               if mask & root_ex_bit)


def _as_pattern(pattern) -> TwigPattern:
    if isinstance(pattern, TwigPattern):
        return pattern
    if isinstance(pattern, str):
        return parse_twig(pattern)
    raise QueryError(
        f"expected a TwigPattern or pattern string, got "
        f"{type(pattern).__name__}")
