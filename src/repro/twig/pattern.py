"""Twig pattern model and parser.

A pattern is a small rooted tree of *steps*.  Each step tests one
document node (tag label, ``*`` for any; optionally a text condition)
and is connected to its parent step by the child (``/``) or descendant
(``//``) axis.  The textual syntax is a compact XPath subset::

    pattern  := "//"? step
    step     := name predicate*
    name     := identifier | "*"
    predicate:= "[" relpath "]"            a required branch
              | "[~" string "]"            text contains the word
              | "[=" string "]"            text equals the string
    relpath  := ("/" | "//")? step ("/" | "//") step ...

Examples::

    movie[title ~ "texas"]//actor
    site//person[profile/education ~ "graduate"]
    country[//city ~ "pacific"][government ~ "multiparty"]

Pattern size is capped (default 8 steps) because the probability
computation tracks two state bits per step.
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.exceptions import QueryError
from repro.index.tokenizer import tokenize
from repro.prxml.model import PNode

#: Two bits per step in the probability DP, so keep patterns small.
MAX_PATTERN_NODES = 8

CHILD, DESCENDANT = "/", "//"


class TwigNode:
    """One pattern step: node tests plus axis-labelled children."""

    __slots__ = ("label", "label_folded", "text_term", "text_exact",
                 "axis", "children", "index")

    def __init__(self, label: str = "*", text_term: Optional[str] = None,
                 text_exact: Optional[str] = None, axis: str = DESCENDANT):
        if axis not in (CHILD, DESCENDANT):
            raise QueryError(f"bad axis {axis!r}")
        self.label = label
        self.label_folded = label.lower()
        self.text_term = text_term.lower() if text_term else None
        self.text_exact = text_exact
        self.axis = axis
        self.children: List[TwigNode] = []
        self.index = -1  # assigned by TwigPattern

    def add_child(self, child: "TwigNode") -> "TwigNode":
        """Attach a branch step and return it."""
        self.children.append(child)
        return child

    @property
    def is_wildcard(self) -> bool:
        """Whether the step has no selective test at all (matches every
        ordinary node) — forces a full-document scan."""
        return (self.label == "*" and self.text_term is None
                and self.text_exact is None)

    def matches(self, node: PNode) -> bool:
        """Node-local test against an ordinary document node (also used
        on instance nodes, which share .label/.text).

        Label comparison is case-insensitive, mirroring
        :meth:`repro.index.inverted.InvertedIndex.label_postings` — the
        candidate lookup and this re-check must agree, or candidates
        found by the index would be dropped here silently."""
        if self.label != "*" and node.label.lower() != self.label_folded:
            return False
        if self.text_exact is not None:
            return (node.text or "") == self.text_exact
        if self.text_term is not None:
            if not node.text:
                return False
            return self.text_term in tokenize(node.text)
        return True

    def __str__(self) -> str:
        out = self.label
        if self.text_term is not None:
            out += f'[~"{self.text_term}"]'
        if self.text_exact is not None:
            out += f'[="{self.text_exact}"]'
        for child in self.children:
            out += f"[{child.axis}{child}]"
        return out


class TwigPattern:
    """A parsed twig: the root step plus a stable step numbering."""

    def __init__(self, root: TwigNode):
        self.root = root
        self.nodes: List[TwigNode] = []
        stack = [root]
        while stack:
            node = stack.pop()
            node.index = len(self.nodes)
            self.nodes.append(node)
            stack.extend(reversed(node.children))
        if len(self.nodes) > MAX_PATTERN_NODES:
            raise QueryError(
                f"pattern has {len(self.nodes)} steps; at most "
                f"{MAX_PATTERN_NODES} are supported")

    def __len__(self) -> int:
        return len(self.nodes)

    def __str__(self) -> str:
        return str(self.root)

    def has_wildcard_step(self) -> bool:
        """Whether any step matches every node (forces a full scan)."""
        return any(node.is_wildcard for node in self.nodes)


_TOKEN = re.compile(r"""
    \s*(?:
        (?P<dslash>//)
      | (?P<slash>/)
      | (?P<lbracket>\[)
      | (?P<rbracket>\])
      | (?P<tilde>~)
      | (?P<equals>=)
      | (?P<string>"[^"]*")
      | (?P<name>[A-Za-z_][A-Za-z0-9_.-]*|\*)
    )""", re.VERBOSE)


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = []
        position = 0
        while position < len(text):
            match = _TOKEN.match(text, position)
            if match is None or match.end() == position:
                if text[position:].strip():
                    raise QueryError(
                        f"cannot tokenise twig at: {text[position:]!r}")
                break
            position = match.end()
            kind = match.lastgroup
            value = match.group(kind)
            self.tokens.append((kind, value))
        self.at = 0

    def peek(self) -> Optional[str]:
        return self.tokens[self.at][0] if self.at < len(self.tokens) \
            else None

    def take(self, kind: str) -> str:
        if self.peek() != kind:
            found = self.tokens[self.at] if self.at < len(self.tokens) \
                else ("end", "")
            raise QueryError(
                f"twig syntax error: expected {kind}, found {found[1]!r}")
        value = self.tokens[self.at][1]
        self.at += 1
        return value

    def parse(self) -> TwigNode:
        if self.peek() == "dslash":
            self.take("dslash")  # a leading // is implicit anyway
        root = self.parse_step(DESCENDANT)
        rest = self.parse_path_tail(root)
        if self.at != len(self.tokens):
            raise QueryError(
                f"trailing twig tokens: {self.tokens[self.at:]}")
        del rest
        return root

    def parse_step(self, axis: str) -> TwigNode:
        label = self.take("name")
        step = TwigNode(label=label, axis=axis)
        while self.peek() == "lbracket":
            self.take("lbracket")
            self.parse_predicate(step)
            self.take("rbracket")
        return step

    def parse_predicate(self, step: TwigNode) -> None:
        kind = self.peek()
        if kind == "tilde":
            self.take("tilde")
            term = self.take("string").strip('"')
            terms = tokenize(term)
            if len(terms) != 1:
                raise QueryError(
                    f'[~ "{term}"] must contain exactly one word; use '
                    "nested predicates for several")
            if step.text_term is not None:
                raise QueryError("a step can have only one ~ predicate")
            step.text_term = terms[0]
        elif kind == "equals":
            self.take("equals")
            if step.text_exact is not None:
                raise QueryError("a step can have only one = predicate")
            step.text_exact = self.take("string").strip('"')
        else:
            axis = DESCENDANT if self.peek() == "dslash" else CHILD
            if self.peek() in ("dslash", "slash"):
                self.take(self.peek())
            branch = self.parse_step(axis)
            deepest = self.parse_path_tail(branch)
            # Allow the XPath-flavoured "[title ~ "texas"]" inline form:
            # the text test applies to the branch's last step.
            if self.peek() == "tilde":
                self.take("tilde")
                term = self.take("string").strip('"')
                terms = tokenize(term)
                if len(terms) != 1:
                    raise QueryError(
                        f'~ "{term}" must contain exactly one word')
                deepest.text_term = terms[0]
            elif self.peek() == "equals":
                self.take("equals")
                deepest.text_exact = self.take("string").strip('"')
            step.add_child(branch)

    def parse_path_tail(self, step: TwigNode) -> TwigNode:
        """``/a//b`` continuations: each becomes the single child of the
        previous step."""
        current = step
        while self.peek() in ("slash", "dslash"):
            axis = DESCENDANT if self.peek() == "dslash" else CHILD
            self.take(self.peek())
            current = current.add_child(self.parse_step(axis))
        return current


def parse_twig(text: str) -> TwigPattern:
    """Parse the XPath-subset syntax into a :class:`TwigPattern`.

    Raises:
        QueryError: on syntax errors or oversized patterns.
    """
    if not text or not text.strip():
        raise QueryError("empty twig pattern")
    return TwigPattern(_Parser(text).parse())
