"""Mondial-like geography documents.

Mondial's signature — small overall size but deep, complex nesting
(country / province / city chains, organization memberships, seas,
islands) — is what stresses the stack depth and the distributional-node
interplay in the paper's M1-M5 queries.  The default build lands near
30k deterministic nodes with height around 10.
"""

from __future__ import annotations

import random

from repro.datagen import words
from repro.prxml.builder import DocumentBuilder
from repro.prxml.model import PDocument

_COUNTRY_COUNT = 110
_ORGANIZATION_COUNT = 70
_SEA_COUNT = 28
_DESERT_COUNT = 20


def generate_mondial(seed: int = 19980901) -> PDocument:
    """Build the deterministic Mondial-like document."""
    rng = random.Random(seed)
    builder = DocumentBuilder("mondial")

    country_names = [f"{name} land" for name in
                     words.unique_names(rng, _COUNTRY_COUNT,
                                        words.FILLER_WORDS)]
    country_names[0] = "united states"  # the marquee M2/M3 query term

    for number, name in enumerate(country_names):
        _country(builder, rng, name, number)

    for number in range(_ORGANIZATION_COUNT):
        _organization(builder, rng, number, country_names)

    for _ in range(_SEA_COUNT):
        with builder.element("sea"):
            builder.leaf("name", f"{words.pick(rng, words.FILLER_WORDS)} sea")
            builder.leaf("depth", str(rng.randint(100, 11000)))
            if rng.random() < 0.5:
                with builder.element("located"):
                    builder.leaf("country",
                                 rng.choice(country_names))

    for _ in range(_DESERT_COUNT):
        with builder.element("desert"):
            builder.leaf("name",
                         f"{words.pick(rng, words.FILLER_WORDS)} desert")
            builder.leaf("area", str(rng.randint(1000, 900000)))

    return builder.build()


def _country(builder: DocumentBuilder, rng: random.Random, name: str,
             number: int) -> None:
    with builder.element("country"):
        builder.leaf("name", name)
        builder.leaf("population", str(rng.randint(100000, 900000000)))
        builder.leaf("government",
                     words.skewed_pick(rng, words.GOVERNMENTS))
        builder.leaf("infant_mortality", f"{rng.uniform(2, 90):.1f}")
        for _ in range(rng.randint(1, 4)):
            with builder.element("ethnicgroup"):
                builder.leaf("name",
                             words.skewed_pick(rng, words.ETHNIC_GROUPS))
                builder.leaf("percentage", f"{rng.uniform(1, 80):.1f}")
        for _ in range(rng.randint(1, 3)):
            with builder.element("religion"):
                builder.leaf("name", words.skewed_pick(rng, words.RELIGIONS))
                builder.leaf("percentage", f"{rng.uniform(1, 90):.1f}")
        for province_number in range(rng.randint(2, 6)):
            _province(builder, rng, number, province_number)
        if rng.random() < 0.35:
            for _ in range(rng.randint(1, 3)):
                with builder.element("island"):
                    builder.leaf("name",
                                 f"{words.pick(rng, words.FILLER_WORDS)} "
                                 "islands")
                    builder.leaf("area", str(rng.randint(10, 200000)))
                    if rng.random() < 0.5:
                        builder.leaf("located",
                                     rng.choice(("pacific ocean",
                                                 "atlantic ocean",
                                                 "indian ocean")))


def _province(builder: DocumentBuilder, rng: random.Random,
              country_number: int, province_number: int) -> None:
    with builder.element("province"):
        builder.leaf("name",
                     f"{words.pick(rng, words.FILLER_WORDS)} province")
        builder.leaf("area", str(rng.randint(500, 300000)))
        for city_number in range(rng.randint(1, 5)):
            with builder.element("city"):
                builder.leaf("name", words.pick(rng, words.FILLER_WORDS))
                builder.leaf("population",
                             str(rng.randint(10000, 20000000)))
                if rng.random() < 0.4:
                    with builder.element("located_at"):
                        builder.leaf("watertype",
                                     rng.choice(("sea", "river", "lake")))
                        with builder.element("coordinates"):
                            builder.leaf("longitude",
                                         f"{rng.uniform(-180, 180):.2f}")
                            builder.leaf("latitude",
                                         f"{rng.uniform(-90, 90):.2f}")


def _organization(builder: DocumentBuilder, rng: random.Random,
                  number: int, country_names) -> None:
    with builder.element("organization"):
        builder.leaf("name", words.skewed_pick(rng, words.ORGANIZATIONS))
        builder.leaf("abbrev",
                     "".join(words.pick(rng, words.FILLER_WORDS)[0]
                             for _ in range(3)).upper())
        builder.leaf("established", str(rng.randint(1900, 2005)))
        for _ in range(rng.randint(2, 10)):
            with builder.element("members"):
                builder.leaf("type",
                             rng.choice(("member", "observer", "applicant")))
                builder.leaf("country", rng.choice(country_names))
