"""Random keyword-query workloads with controlled selectivity.

The paper evaluates 15 hand-picked queries (Table III).  For broader
studies this module samples reproducible workloads directly from an
index's term statistics: queries with a chosen number of terms whose
document frequencies fall in a chosen band, optionally required to
have at least one co-occurring answer so the workload is never vacuous.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.exceptions import QueryError
from repro.index.inverted import InvertedIndex
from repro.slca.indexed_lookup import indexed_lookup_eager


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of a sampled workload."""

    queries: int = 10
    terms_per_query: int = 2
    min_frequency: int = 2
    max_frequency: Optional[int] = None  # None = no upper bound
    require_answers: bool = True


def eligible_terms(index: InvertedIndex, spec: WorkloadSpec) -> List[str]:
    """Vocabulary terms whose document frequency fits the spec."""
    terms = []
    for term in index.vocabulary():
        frequency = index.document_frequency(term)
        if frequency < spec.min_frequency:
            continue
        if spec.max_frequency is not None \
                and frequency > spec.max_frequency:
            continue
        terms.append(term)
    return terms


def sample_workload(index: InvertedIndex,
                    spec: WorkloadSpec = WorkloadSpec(),
                    rng: Optional[random.Random] = None,
                    max_attempts: int = 1000) -> List[List[str]]:
    """Draw ``spec.queries`` distinct keyword queries from the index.

    With ``require_answers`` each query is checked to have at least one
    traditional SLCA on the match skeleton (a necessary condition for
    non-empty probabilistic answers, and sufficient on the skeleton).

    Raises:
        QueryError: if the vocabulary cannot satisfy the spec within
            ``max_attempts`` draws.
    """
    if spec.queries <= 0 or spec.terms_per_query <= 0:
        raise QueryError("workload spec must be positive")
    rng = rng or random.Random()
    pool = eligible_terms(index, spec)
    if len(pool) < spec.terms_per_query:
        raise QueryError(
            f"only {len(pool)} terms match the frequency band; "
            f"cannot build {spec.terms_per_query}-term queries")

    workload: List[List[str]] = []
    seen = set()
    for _ in range(max_attempts):
        if len(workload) >= spec.queries:
            break
        query = sorted(rng.sample(pool, spec.terms_per_query))
        key = tuple(query)
        if key in seen:
            continue
        seen.add(key)
        if spec.require_answers and not _has_skeleton_answer(index, query):
            continue
        workload.append(query)
    if len(workload) < spec.queries:
        raise QueryError(
            f"found only {len(workload)}/{spec.queries} satisfiable "
            f"queries in {max_attempts} attempts; relax the spec")
    return workload


def _has_skeleton_answer(index: InvertedIndex,
                         terms: Sequence[str]) -> bool:
    codes = index.encoded.codes
    lists = [[codes[node_id] for node_id in index.postings(term)]
             for term in terms]
    return bool(indexed_lookup_eager(lists))
