"""Vocabulary for the synthetic corpora.

A compact word pool for filler text, plus the query terms of Table III
planted with controlled frequencies so the paper's queries have
realistic selectivities (some terms frequent, some rare — the regime
that separates Indexed Lookup Eager from Scan Eager, and PrStack from
EagerTopK).
"""

from __future__ import annotations

import random
from typing import List, Sequence

#: General filler vocabulary (used for descriptions, names, titles).
FILLER_WORDS = (
    "amber ancient anchor autumn basket beacon bridge canvas cedar "
    "charter cobalt copper coral crescent crystal delta drift ember "
    "falcon fathom federal feather flint garnet glacier granite grove "
    "harbor hazel horizon indigo iron ivory jade juniper keel kernel "
    "lantern ledger linden lunar maple marble meadow mercury mirror "
    "molten mosaic north ocean olive onyx opal orchard oriole pearl "
    "pine plateau prairie prism quarry quartz raven ridge river russet "
    "saffron sage salt sand sapphire scarlet shadow silver slate "
    "solstice sparrow spruce steel stone summit thistle timber topaz "
    "tundra umber valley velvet vertex walnut willow winter zephyr"
).split()

#: Person given names (XMark-style); "alexas" is a Table III term.
PERSON_NAMES = (
    "alexas benedikt cecilia dominic eleanor farrell gudrun heinrich "
    "isolde jasper katrina leopold miriam norbert ottilie pavel quentin "
    "rosalind sigurd theresa ulrich viviane wilhelm xenia yolanda zacharias"
).split()

#: Countries; "united states" is the multi-word Table III term.
COUNTRIES = (
    "united states", "germany", "france", "japan", "brazil", "canada",
    "australia", "india", "china", "italy", "spain", "netherlands",
    "poland", "sweden", "norway", "mexico", "argentina", "egypt",
    "kenya", "vietnam",
)

#: Payment phrases ("credit", "personal", "check" are query terms).
PAYMENT_PHRASES = (
    "money order", "creditcard", "personal check", "cash",
    "credit transfer", "check on delivery",
)

#: Shipping phrases ("ship", "internationally" are query terms).
SHIPPING_PHRASES = (
    "will ship only within country",
    "will ship internationally",
    "buyer pays fixed shipping charges",
    "see description for charges",
    "will ship internationally, see description",
)

#: Education levels ("graduate" is a query term).
EDUCATION_LEVELS = (
    "high school", "college", "graduate school", "other",
    "graduate diploma",
)

#: Religions for Mondial ("muslim" is a query term).
RELIGIONS = (
    "muslim", "christian", "buddhist", "hindu", "jewish", "sikh",
    "shinto", "taoist",
)

#: Government forms ("multiparty" is a query term).
GOVERNMENTS = (
    "federal republic", "multiparty democracy", "constitutional monarchy",
    "multiparty republic", "parliamentary democracy", "federation",
)

#: Ethnic groups ("chinese" and "polish" are query terms).
ETHNIC_GROUPS = (
    "chinese", "polish", "arab", "malay", "german", "russian", "zulu",
    "quechua", "tatar", "berber",
)

#: Organization names ("organization", "united", "pacific" appear).
ORGANIZATIONS = (
    "united nations organization",
    "pacific islands forum",
    "world trade organization",
    "organization of american states",
    "african union",
    "asia pacific economic cooperation",
    "islands development organization",
)

#: Topical title vocabulary with per-title inclusion probabilities.
#: Terms appear in titles *independently*, mimicking real DBLP: each
#: query term is individually frequent but full co-occurrence (a
#: traditional SLCA seed) is rare — the regime where EagerTopK's
#: pruning wins (Figure 4(e)).
TITLE_TERMS = (
    ("query", 0.30), ("data", 0.25), ("database", 0.18),
    ("system", 0.15), ("search", 0.12), ("xml", 0.10),
    ("information", 0.09), ("processing", 0.08), ("keyword", 0.07),
    ("retrieval", 0.06), ("optimization", 0.06), ("web", 0.06),
    ("relational", 0.05), ("mining", 0.05), ("index", 0.05),
    ("distributed", 0.05), ("probabilistic", 0.04), ("stream", 0.04),
    ("graph", 0.04), ("semantic", 0.03),
)

VENUES = (
    "sigmod", "vldb", "icde", "edbt", "cikm", "www", "kdd", "pods",
)


def sentence(rng: random.Random, words: int,
             pool: Sequence[str] = FILLER_WORDS) -> str:
    """A space-joined random sentence of ``words`` pool words."""
    return " ".join(rng.choice(pool) for _ in range(words))


def pick(rng: random.Random, pool: Sequence[str]) -> str:
    """Uniform choice from a pool."""
    return rng.choice(pool)


def skewed_pick(rng: random.Random, pool: Sequence[str],
                skew: float = 1.6) -> str:
    """Pick with a Zipf-ish skew so early pool entries dominate —
    giving query terms realistic, unequal document frequencies."""
    index = min(int(rng.paretovariate(skew)) - 1, len(pool) - 1)
    return pool[index]


def title(rng: random.Random) -> str:
    """A publication title: independently included topical terms plus
    filler words, so term document-frequencies are controlled and
    co-occurrence factors multiply."""
    parts = [term for term, probability in TITLE_TERMS
             if rng.random() < probability]
    parts.extend(rng.choice(FILLER_WORDS)
                 for _ in range(rng.randint(1, 3)))
    rng.shuffle(parts)
    return " ".join(parts)


def unique_names(rng: random.Random, count: int,
                 pool: Sequence[str] = PERSON_NAMES) -> List[str]:
    """``count`` distinct-ish person names ("<given><number>")."""
    return [f"{rng.choice(pool)}{index}" for index in range(count)]
