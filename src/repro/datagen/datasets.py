"""The six experimental p-documents of Table II.

================  ==========================  ======================
paper dataset     paper source                this library
================  ==========================  ======================
Doc1              XMark 10 MB                 XMark-like, scale 1
Doc2              XMark 20 MB                 XMark-like, scale 2
Doc3              XMark 40 MB                 XMark-like, scale 4
Doc4              XMark 80 MB                 XMark-like, scale 8
Doc5              Mondial 1.2 MB              Mondial-like
Doc6              DBLP 156 MB                 DBLP-like
================  ==========================  ======================

Absolute sizes are scaled down for the pure-Python substrate (see
DESIGN.md, "Substitutions"); the 1:2:4:8 XMark progression, Mondial's
small-and-deep shape and DBLP's huge-and-shallow shape are preserved,
which is what the experiments measure.  All builds are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.datagen.dblp import generate_dblp
from repro.datagen.mondial import generate_mondial
from repro.datagen.probabilistic import make_probabilistic
from repro.datagen.xmark import generate_xmark
from repro.exceptions import QueryError
from repro.index.storage import Database
from repro.prxml.model import PDocument


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one experimental dataset."""

    name: str
    family: str  # which Table III query set applies
    build: Callable[[], PDocument]
    distributional_ratio: float = 0.15
    seed: int = 673  # first page number of the paper, for determinism


def _spec(name: str, family: str, build: Callable[[], PDocument]
          ) -> DatasetSpec:
    return DatasetSpec(name=name, family=family, build=build)


DATASET_SPECS: Dict[str, DatasetSpec] = {
    "doc1": _spec("doc1", "xmark", lambda: generate_xmark(scale=1)),
    "doc2": _spec("doc2", "xmark", lambda: generate_xmark(scale=2)),
    "doc3": _spec("doc3", "xmark", lambda: generate_xmark(scale=4)),
    "doc4": _spec("doc4", "xmark", lambda: generate_xmark(scale=8)),
    "doc5": _spec("doc5", "mondial", lambda: generate_mondial()),
    "doc6": _spec("doc6", "dblp", lambda: generate_dblp()),
}


def dataset_names() -> List[str]:
    """The Table II dataset identifiers, doc1..doc6."""
    return list(DATASET_SPECS)


def make_document(name: str) -> PDocument:
    """Build the probabilistic document for one dataset name."""
    try:
        spec = DATASET_SPECS[name.lower()]
    except KeyError:
        known = ", ".join(DATASET_SPECS)
        raise QueryError(
            f"unknown dataset {name!r}; known: {known}") from None
    deterministic = spec.build()
    return make_probabilistic(
        deterministic,
        distributional_ratio=spec.distributional_ratio,
        seed=spec.seed)


def make_dataset(name: str) -> Database:
    """Build, encode and index one dataset (deterministic, no caching;
    the benchmark harness adds on-disk caching on top)."""
    return Database.from_document(make_document(name))
