"""XMark-like auction-site documents.

Mirrors the XMark benchmark schema (site / regions / categories /
people / open_auctions / closed_auctions) with balanced depth, varied
fan-out and text planted so the Table III queries X1-X5 have realistic
selectivities.  ``scale=1`` yields roughly 40k deterministic nodes; the
node count grows linearly with ``scale``, matching the paper's
10/20/40/80 MB progression at reduced absolute size (see DESIGN.md).
"""

from __future__ import annotations

import random

from repro.datagen import words
from repro.prxml.builder import DocumentBuilder
from repro.prxml.model import PDocument

_REGIONS = ("africa", "asia", "australia", "europe",
            "namerica", "samerica")

# Per-scale-unit entity counts (chosen to land near 40k nodes/unit).
_ITEMS_PER_REGION = 90
_PEOPLE = 420
_OPEN_AUCTIONS = 260
_CLOSED_AUCTIONS = 180
_CATEGORIES = 60


def generate_xmark(scale: int = 1, seed: int = 20110411) -> PDocument:
    """Build a deterministic XMark-like document.

    Args:
        scale: linear size factor (paper uses 1, 2, 4, 8).
        seed: RNG seed; identical arguments give identical documents.
    """
    rng = random.Random((seed, scale).__hash__())
    builder = DocumentBuilder("site")

    with builder.element("regions"):
        for region in _REGIONS:
            with builder.element(region):
                for item_number in range(_ITEMS_PER_REGION * scale):
                    _item(builder, rng, region, item_number)

    with builder.element("categories"):
        for category_number in range(_CATEGORIES * scale):
            with builder.element("category"):
                builder.leaf("name", words.sentence(rng, 2))
                builder.leaf("description", words.sentence(rng, 6))

    with builder.element("people"):
        for person_number in range(_PEOPLE * scale):
            _person(builder, rng, person_number)

    with builder.element("open_auctions"):
        for auction_number in range(_OPEN_AUCTIONS * scale):
            _open_auction(builder, rng, auction_number, scale)

    with builder.element("closed_auctions"):
        for auction_number in range(_CLOSED_AUCTIONS * scale):
            _closed_auction(builder, rng, auction_number, scale)

    return builder.build()


def _item(builder: DocumentBuilder, rng: random.Random, region: str,
          number: int) -> None:
    with builder.element("item"):
        builder.leaf("location", words.skewed_pick(rng, words.COUNTRIES))
        builder.leaf("quantity", str(rng.randint(1, 10)))
        builder.leaf("name", words.sentence(rng, 2))
        builder.leaf("payment",
                     words.skewed_pick(rng, words.PAYMENT_PHRASES))
        with builder.element("description"):
            builder.leaf("text", words.sentence(rng, rng.randint(6, 16)))
        builder.leaf("shipping",
                     words.skewed_pick(rng, words.SHIPPING_PHRASES))
        for _ in range(rng.randint(1, 3)):
            builder.leaf("incategory",
                         f"category{rng.randint(0, 9)}")
        if rng.random() < 0.5:
            with builder.element("mailbox"):
                for _ in range(rng.randint(1, 3)):
                    with builder.element("mail"):
                        builder.leaf("from", words.pick(
                            rng, words.PERSON_NAMES))
                        builder.leaf("date", _date(rng))
                        builder.leaf("text",
                                     words.sentence(rng, rng.randint(4, 10)))


def _person(builder: DocumentBuilder, rng: random.Random,
            number: int) -> None:
    with builder.element("person"):
        builder.leaf("name",
                     f"{words.skewed_pick(rng, words.PERSON_NAMES)} "
                     f"{words.pick(rng, words.FILLER_WORDS)}")
        builder.leaf("emailaddress",
                     f"mailto:person{number}@example.net")
        if rng.random() < 0.6:
            builder.leaf("phone", f"+{rng.randint(1, 99)} "
                                  f"{rng.randint(1000000, 9999999)}")
        if rng.random() < 0.7:
            with builder.element("address"):
                builder.leaf("street",
                             f"{rng.randint(1, 99)} "
                             f"{words.pick(rng, words.FILLER_WORDS)} st")
                builder.leaf("city", words.pick(rng, words.FILLER_WORDS))
                builder.leaf("country",
                             words.skewed_pick(rng, words.COUNTRIES))
        if rng.random() < 0.4:
            builder.leaf("creditcard",
                         " ".join(str(rng.randint(1000, 9999))
                                  for _ in range(4)))
        with builder.element("profile"):
            for _ in range(rng.randint(0, 3)):
                builder.leaf("interest", f"category{rng.randint(0, 9)}")
            if rng.random() < 0.6:
                builder.leaf("education",
                             words.pick(rng, words.EDUCATION_LEVELS))
            builder.leaf("gender", rng.choice(("male", "female")))
            builder.leaf("age", str(rng.randint(18, 80)))


def _open_auction(builder: DocumentBuilder, rng: random.Random,
                  number: int, scale: int) -> None:
    with builder.element("open_auction"):
        builder.leaf("initial", _money(rng))
        for _ in range(rng.randint(0, 4)):
            with builder.element("bidder"):
                builder.leaf("date", _date(rng))
                builder.leaf("increase", _money(rng))
        builder.leaf("current", _money(rng))
        builder.leaf("itemref",
                     f"item{rng.randint(0, _ITEMS_PER_REGION * scale - 1)}")
        builder.leaf("seller", f"person{rng.randint(0, _PEOPLE - 1)}")
        with builder.element("annotation"):
            builder.leaf("author", words.pick(rng, words.PERSON_NAMES))
            builder.leaf("description",
                         words.sentence(rng, rng.randint(4, 12)))
        builder.leaf("quantity", str(rng.randint(1, 5)))
        builder.leaf("type", rng.choice(("regular", "featured")))


def _closed_auction(builder: DocumentBuilder, rng: random.Random,
                    number: int, scale: int) -> None:
    with builder.element("closed_auction"):
        builder.leaf("seller", f"person{rng.randint(0, _PEOPLE - 1)}")
        builder.leaf("buyer", f"person{rng.randint(0, _PEOPLE - 1)}")
        builder.leaf("itemref",
                     f"item{rng.randint(0, _ITEMS_PER_REGION * scale - 1)}")
        builder.leaf("price", _money(rng))
        builder.leaf("date", _date(rng))
        builder.leaf("quantity", str(rng.randint(1, 5)))
        builder.leaf("type", rng.choice(("regular", "featured")))
        with builder.element("annotation"):
            builder.leaf("author", words.pick(rng, words.PERSON_NAMES))
            builder.leaf("description",
                         words.sentence(rng, rng.randint(4, 12)))


def _money(rng: random.Random) -> str:
    return f"{rng.randint(1, 400)}.{rng.randint(0, 99):02d}"


def _date(rng: random.Random) -> str:
    return (f"{rng.randint(1, 12):02d}/{rng.randint(1, 28):02d}/"
            f"{rng.randint(1998, 2010)}")
