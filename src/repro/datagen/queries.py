"""The keyword queries of Table III.

Five queries per dataset: X1-X5 on XMark, M1-M5 on Mondial, D1-D5 on
DBLP, exactly as printed in the paper.  Multi-word entries like
"United States" contribute every word as a required term (AND
semantics), matching the library's tokenizer.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.exceptions import QueryError

#: Table III, verbatim.
QUERIES: Dict[str, Tuple[str, ...]] = {
    "X1": ("United States", "Graduate"),
    "X2": ("United States", "Credit", "ship"),
    "X3": ("Personal", "Check", "alexas"),
    "X4": ("Alexas", "ship"),
    "X5": ("internationally", "ship"),
    "M1": ("muslim", "multiparty"),
    "M2": ("organization", "United States"),
    "M3": ("united states", "islands"),
    "M4": ("organization", "pacific"),
    "M5": ("chinese", "polish"),
    "D1": ("Information", "Retrieval", "Database"),
    "D2": ("XML", "Keyword", "Query"),
    "D3": ("Query", "Relational", "Database"),
    "D4": ("probabilistic", "Query"),
    "D5": ("stream", "Query"),
}

#: Query ids grouped by the dataset family they run on.
QUERY_SETS: Dict[str, Tuple[str, ...]] = {
    "xmark": ("X1", "X2", "X3", "X4", "X5"),
    "mondial": ("M1", "M2", "M3", "M4", "M5"),
    "dblp": ("D1", "D2", "D3", "D4", "D5"),
}


def query_keywords(query_id: str) -> List[str]:
    """Keywords of one Table III query.

    Raises:
        QueryError: for an unknown query id.
    """
    try:
        return list(QUERIES[query_id.upper()])
    except KeyError:
        known = ", ".join(sorted(QUERIES))
        raise QueryError(
            f"unknown query id {query_id!r}; known: {known}") from None


def queries_for_dataset(family: str) -> List[str]:
    """Query ids for a dataset family ("xmark", "mondial", "dblp")."""
    try:
        return list(QUERY_SETS[family.lower()])
    except KeyError:
        known = ", ".join(sorted(QUERY_SETS))
        raise QueryError(
            f"unknown dataset family {family!r}; known: {known}") from None
