"""Random injection of distributional nodes (the paper's procedure).

Section V-A: "We visit the nodes in the original XML tree in pre-order
way.  For each node v visited, we randomly generate some distributional
nodes with IND or MUX types as children of v.  Then, for the original
children of v, we choose some of them as the children of the new
generated distributional nodes and assign random probability
distributions to these children with the restriction that the sum of
them for a MUX node is no greater than 1.  For each dataset, the
percentage of the distributional nodes is controlled in about 10% - 20%
of the total nodes."

:func:`make_probabilistic` reproduces exactly that, deterministically.
"""

from __future__ import annotations

import random
from typing import List

from repro.exceptions import ModelError
from repro.prxml.model import NodeType, PDocument, PNode


def make_probabilistic(document: PDocument,
                       distributional_ratio: float = 0.15,
                       mux_fraction: float = 0.5,
                       exp_fraction: float = 0.0,
                       seed: int = 0) -> PDocument:
    """Return a probabilistic copy of a deterministic document.

    Args:
        document: source tree (left untouched; a deep copy is modified).
        distributional_ratio: target fraction of distributional nodes in
            the result (the paper keeps 10-20%).
        mux_fraction: fraction of injected nodes that are MUX (the rest
            are IND); the paper's Table II has them near 50/50.
        exp_fraction: fraction of injected nodes that are EXP instead
            (random explicit subset distributions) — 0 reproduces the
            paper's PrXML{ind,mux} setup exactly; positive values
            exercise the model extension.
        seed: RNG seed; identical arguments give identical output.

    Raises:
        ModelError: if ``distributional_ratio`` is not in ``[0, 0.5)``
            or the kind fractions exceed 1 combined.
    """
    if not 0.0 <= distributional_ratio < 0.5:
        raise ModelError(
            f"distributional_ratio {distributional_ratio!r} outside [0, 0.5)")
    if exp_fraction < 0.0 or mux_fraction < 0.0 \
            or exp_fraction + mux_fraction > 1.0:
        raise ModelError(
            "mux_fraction and exp_fraction must be non-negative and sum "
            "to at most 1")
    result = document.copy()
    if distributional_ratio == 0.0:
        return result

    rng = random.Random((seed, distributional_ratio, mux_fraction,
                         exp_fraction).__hash__())
    nodes = list(result)  # snapshot: new nodes need no visit
    internal = [node for node in nodes if node.children]
    if not internal:
        return result

    # D distributional nodes among N + D total must hit the ratio.
    target = distributional_ratio * len(nodes) / (1.0 - distributional_ratio)
    rate = target / len(internal)

    for node in internal:
        wraps = int(rate)
        if rng.random() < rate - wraps:
            wraps += 1
        for _ in range(min(wraps, len(node.children))):
            _wrap_some_children(node, rng, mux_fraction, exp_fraction)

    result.refresh()
    return result


def _wrap_some_children(node: PNode, rng: random.Random,
                        mux_fraction: float, exp_fraction: float) -> None:
    """Move a random subset of ``node``'s non-distributional children
    under a fresh IND, MUX or EXP node with random probabilities."""
    eligible = [child for child in node.children
                if not child.is_distributional]
    if not eligible:
        return
    group_size = min(len(eligible), rng.randint(1, 3))
    chosen = rng.sample(eligible, group_size)
    chosen_set = set(map(id, chosen))
    chosen.sort(key=lambda child: node.children.index(child))

    pick = rng.random()
    if pick < mux_fraction:
        kind = NodeType.MUX
    elif pick < mux_fraction + exp_fraction:
        kind = NodeType.EXP
    else:
        kind = NodeType.IND
    wrapper = PNode(kind.name, kind)

    # Replace the first chosen child with the wrapper, drop the rest.
    insert_at = node.children.index(chosen[0])
    node.children = [child for child in node.children
                     if id(child) not in chosen_set]
    node.children.insert(insert_at, wrapper)
    wrapper.parent = node

    if kind is NodeType.EXP:
        for child in chosen:
            child.parent = wrapper
            wrapper.children.append(child)
        wrapper.set_exp_subsets(_random_subsets(rng, len(chosen)))
        return
    probabilities = _random_distribution(rng, len(chosen),
                                         kind is NodeType.MUX)
    for child, probability in zip(chosen, probabilities):
        child.parent = None
        child.edge_prob = probability
        child.parent = wrapper
        wrapper.children.append(child)


def _random_subsets(rng: random.Random, child_count: int):
    """A random explicit subset distribution over ``child_count``
    children with total mass below 1 (residue = no child)."""
    all_subsets = [
        set(position for position in range(1, child_count + 1)
            if mask & (1 << (position - 1)))
        for mask in range(1, 1 << child_count)
    ]
    rng.shuffle(all_subsets)
    picked = all_subsets[:rng.randint(1, min(3, len(all_subsets)))]
    # Every child must appear in some subset (a child with marginal 0
    # would not belong under the EXP node at all).
    for position in range(1, child_count + 1):
        if not any(position in subset for subset in picked):
            rng.choice(picked).add(position)
    picked = _dedupe_subsets(picked)
    weights = [rng.uniform(0.1, 1.0) for _ in picked]
    scale = rng.uniform(0.7, 0.98) / sum(weights)
    return [(tuple(sorted(subset)), round(weight * scale, 6))
            for subset, weight in zip(picked, weights)]


def _dedupe_subsets(picked):
    """Coverage fixing can create duplicate subsets; keep the first."""
    unique = []
    seen = set()
    for subset in picked:
        key = tuple(sorted(subset))
        if key not in seen:
            seen.add(key)
            unique.append(subset)
    return unique


def _random_distribution(rng: random.Random, count: int,
                         mux: bool) -> List[float]:
    """Random edge probabilities: independent draws for IND children,
    weights normalised to a sub-1 total for MUX children."""
    if not mux:
        return [round(rng.uniform(0.2, 0.95), 3) for _ in range(count)]
    weights = [rng.uniform(0.1, 1.0) for _ in range(count)]
    total_mass = rng.uniform(0.75, 0.98)
    scale = total_mass / sum(weights)
    return [round(weight * scale, 6) for weight in weights]
