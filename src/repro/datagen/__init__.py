"""Workload generation for the paper's experiments.

Real XMark/Mondial/DBLP corpora are not redistributable here, so this
subpackage builds deterministic synthetic stand-ins that preserve the
structural signatures the algorithms are sensitive to (see DESIGN.md,
"Substitutions"): XMark-like balanced auction trees of scalable size,
a small-but-deep Mondial-like geography tree, and a huge-but-shallow
DBLP-like bibliography.  :func:`make_probabilistic` then injects IND and
MUX distributional nodes exactly the way the paper describes (random
pre-order injection, 10-20% distributional nodes), and
:mod:`repro.datagen.queries` carries the Table III keyword queries.
"""

from repro.datagen.probabilistic import make_probabilistic
from repro.datagen.xmark import generate_xmark
from repro.datagen.mondial import generate_mondial
from repro.datagen.dblp import generate_dblp
from repro.datagen.queries import (QUERIES, QUERY_SETS, query_keywords,
                                   queries_for_dataset)
from repro.datagen.datasets import (DATASET_SPECS, dataset_names,
                                    make_dataset, make_document)
from repro.datagen.workload import (WorkloadSpec, eligible_terms,
                                    sample_workload)

__all__ = [
    "make_probabilistic",
    "generate_xmark",
    "generate_mondial",
    "generate_dblp",
    "QUERIES",
    "QUERY_SETS",
    "query_keywords",
    "queries_for_dataset",
    "DATASET_SPECS",
    "dataset_names",
    "make_dataset",
    "make_document",
    "WorkloadSpec",
    "eligible_terms",
    "sample_workload",
]
