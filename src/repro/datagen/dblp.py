"""DBLP-like bibliography documents.

DBLP's signature is the opposite of Mondial's: an enormous, flat
sequence of small publication records whose keywords concentrate in
leaf titles.  This is the regime where the paper's D1-D5 queries show
the largest absolute costs (Figure 4(e)) and where EagerTopK's seed +
prune strategy pays off most.  The default build lands near 300k
deterministic nodes with height 3.
"""

from __future__ import annotations

import random

from repro.datagen import words
from repro.prxml.builder import DocumentBuilder
from repro.prxml.model import PDocument

_PUBLICATION_COUNT = 36000


def generate_dblp(publications: int = _PUBLICATION_COUNT,
                  seed: int = 20110101) -> PDocument:
    """Build a deterministic DBLP-like document.

    Args:
        publications: number of article/inproceedings records.
        seed: RNG seed; identical arguments give identical documents.
    """
    rng = random.Random((seed, publications).__hash__())
    builder = DocumentBuilder("dblp")
    for number in range(publications):
        if rng.random() < 0.55:
            _inproceedings(builder, rng, number)
        else:
            _article(builder, rng, number)
    return builder.build()


def _authors(builder: DocumentBuilder, rng: random.Random) -> None:
    for _ in range(rng.randint(1, 4)):
        builder.leaf("author",
                     f"{words.pick(rng, words.PERSON_NAMES)} "
                     f"{words.pick(rng, words.FILLER_WORDS)}")


def _article(builder: DocumentBuilder, rng: random.Random,
             number: int) -> None:
    with builder.element("article"):
        _authors(builder, rng)
        builder.leaf("title", words.title(rng))
        builder.leaf("journal",
                     f"{words.pick(rng, words.FILLER_WORDS)} journal")
        builder.leaf("year", str(rng.randint(1990, 2010)))
        builder.leaf("pages", f"{rng.randint(1, 400)}-"
                              f"{rng.randint(401, 800)}")
        if rng.random() < 0.6:
            builder.leaf("ee", f"db/journals/a{number}")


def _inproceedings(builder: DocumentBuilder, rng: random.Random,
                   number: int) -> None:
    with builder.element("inproceedings"):
        _authors(builder, rng)
        builder.leaf("title", words.title(rng))
        builder.leaf("booktitle", words.pick(rng, words.VENUES))
        builder.leaf("year", str(rng.randint(1990, 2010)))
        builder.leaf("pages", f"{rng.randint(1, 400)}-"
                              f"{rng.randint(401, 800)}")
        if rng.random() < 0.6:
            builder.leaf("ee", f"db/conf/p{number}")
