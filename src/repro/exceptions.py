"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch one type and be sure nothing library-specific escapes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ModelError(ReproError):
    """A probabilistic XML document violates the PrXML{ind,mux} model.

    Examples: an edge probability outside ``(0, 1]``, a MUX node whose
    child probabilities sum to more than 1, or a node attached to two
    parents.
    """


class ParseError(ReproError):
    """A p-document text representation could not be parsed."""


class EncodingError(ReproError):
    """An extended Dewey code is malformed or inconsistent."""


class IndexError_(ReproError):
    """An inverted index is missing, stale, or internally inconsistent.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class QueryError(ReproError):
    """A keyword query is invalid (empty, non-positive ``k``, ...)."""


class StorageError(ReproError):
    """Persisted index data could not be written or read back."""
