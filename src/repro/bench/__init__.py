"""Measurement harness shared by the ``benchmarks/`` suite.

:mod:`repro.bench.runner` measures response time and peak memory of a
query the way Section V reports them; :mod:`repro.bench.tables` formats
figure-like series; :mod:`repro.bench.experiments` regenerates the data
behind every table and figure of the paper.
"""

from repro.bench.runner import Measurement, measure_callable, run_query
from repro.bench.tables import format_series, format_table
from repro.bench.experiments import (table2_rows, table3_rows, vary_k,
                                     vary_query, vary_size)

__all__ = [
    "Measurement",
    "measure_callable",
    "run_query",
    "format_series",
    "format_table",
    "table2_rows",
    "table3_rows",
    "vary_query",
    "vary_k",
    "vary_size",
]
