"""Batched-workload benchmark: QueryService vs. the naive query loop.

Measures a shared-keyword workload (a sampled query set repeated
several times, shuffled) two ways — one fresh :func:`topk_search` per
query, and one :meth:`QueryService.batch_search` over a cold service —
and reports the throughput ratio plus two correctness oracles:

* every batched answer must equal the corresponding naive answer
  exactly (codes and probabilities, no rounding);
* every distinct query re-run through the warm service under the
  runtime sanitizer must equal an uncached sanitized ``topk_search``
  exactly (the cache must never change an answer, and the sanitizer
  must really execute on the cached path's inputs).

``benchmarks/run_batch_benchmark.py`` writes the resulting report to
``BENCH_batch.json``; ``benchmarks/test_batch_service.py`` asserts the
speedup floor in the benchmark suite.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.core.api import topk_search
from repro.datagen.workload import WorkloadSpec, sample_workload
from repro.index.storage import Database
from repro.obs.metrics import Stopwatch
from repro.service.service import QueryService

#: Version tag of the emitted report.
BATCH_SCHEMA_ID = "repro.bench/batch-v1"


def _signature(outcome) -> List[tuple]:
    return [(str(result.code), result.probability)
            for result in outcome.results]


def run_batch_benchmark(database: Database,
                        distinct_queries: int = 15,
                        repetitions: int = 4,
                        k: int = 10,
                        cache_size: int = 256,
                        workers: Optional[int] = None,
                        seed: int = 673) -> Dict[str, object]:
    """One full comparison run; returns the JSON-ready report.

    The workload is ``distinct_queries`` sampled 2-term queries in a
    mid-selectivity band, repeated ``repetitions`` times and shuffled —
    the shared-keyword traffic shape a serving layer exists for.  With
    ``workers`` the batch additionally runs through a thread pool and
    the report gains a ``threads`` block.
    """
    rng = random.Random(seed)
    spec = WorkloadSpec(queries=distinct_queries, terms_per_query=2,
                        min_frequency=20, max_frequency=2000)
    workload = sample_workload(database.index, spec, rng=rng)
    queries: List[List[str]] = [list(query) for query in workload
                                for _ in range(repetitions)]
    rng.shuffle(queries)

    with Stopwatch() as naive_watch:
        naive = [topk_search(database, query, k) for query in queries]

    service = QueryService(database, cache_size=cache_size)
    with Stopwatch() as batch_watch:
        batch = service.batch_search(queries, k=k)

    identical = all(
        _signature(batched) == _signature(plain)
        for batched, plain in zip(batch.outcomes, naive))

    # Sanitized replays on the *warm* service vs. uncached sanitized
    # searches: the caches must be invisible to the answers.
    sanitize_identical = all(
        _signature(service.search(query, k, sanitize=True)) ==
        _signature(topk_search(database, query, k, sanitize=True))
        for query in workload)

    naive_ms = naive_watch.elapsed_ms
    batch_ms = batch.elapsed_ms
    report: Dict[str, object] = {
        "schema": BATCH_SCHEMA_ID,
        "workload": {
            "distinct_queries": len(workload),
            "repetitions": repetitions,
            "queries": len(queries),
            "terms_per_query": spec.terms_per_query,
            "k": k,
            "seed": seed,
        },
        "naive_ms": round(naive_ms, 3),
        "batch_ms": round(batch_ms, 3),
        "speedup": round(naive_ms / batch_ms, 3) if batch_ms else None,
        "naive_qps": round(len(queries) / (naive_ms / 1000.0), 1)
        if naive_ms else None,
        "batch_qps": round(len(queries) / (batch_ms / 1000.0), 1)
        if batch_ms else None,
        "identical_results": identical,
        "sanitize_identical": sanitize_identical,
        "cache": batch.stats["cache"],
    }

    if workers:
        threaded_service = QueryService(database, cache_size=cache_size)
        threaded = threaded_service.batch_search(queries, k=k,
                                                 workers=workers,
                                                 executor="thread")
        report["threads"] = {
            "workers": workers,
            "batch_ms": round(threaded.elapsed_ms, 3),
            "speedup": round(naive_ms / threaded.elapsed_ms, 3)
            if threaded.elapsed_ms else None,
            "identical_results": all(
                _signature(batched) == _signature(plain)
                for batched, plain in zip(threaded.outcomes, naive)),
        }
    return report
