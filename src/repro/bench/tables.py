"""Plain-text rendering of experiment series and tables.

The benchmark suite prints every figure it reproduces as an aligned
text table — one row per x-axis point, one column per series — so the
shape comparison against the paper's charts (who wins, by what factor,
where the crossovers fall) can be read straight off the pytest output
and pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence


def format_table(title: str, header: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned table with a title rule."""
    cells = [[str(cell) for cell in row] for row in rows]
    widths = [len(column) for column in header]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(name.ljust(width)
                           for name, width in zip(header, widths)))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend("  ".join(cell.ljust(width)
                           for cell, width in zip(row, widths))
                 for row in cells)
    return "\n".join(lines)


def format_series(title: str, x_label: str, x_values: Sequence[object],
                  series: Mapping[str, Sequence[float]],
                  unit: str = "") -> str:
    """Render one figure panel: x column plus one column per series."""
    header: List[str] = [x_label]
    header.extend(f"{name}{f' ({unit})' if unit else ''}"
                  for name in series)
    rows = []
    for index, x_value in enumerate(x_values):
        row: List[object] = [x_value]
        row.extend(f"{values[index]:.3f}" for values in series.values())
        rows.append(row)
    return format_table(title, header, rows)
