"""Data generation for every table and figure of Section V.

Each function regenerates the measurements behind one experiment:

* :func:`table2_rows` — dataset properties (Table II);
* :func:`table3_rows` — the keyword queries (Table III);
* :func:`vary_query` — response time & memory per query at fixed k
  (Figure 4, panels a-f);
* :func:`vary_k` — response time & memory as k grows (Figure 5);
* :func:`vary_size` — response time & memory as the document scales
  (Figure 6).

All of them return plain data; the benchmark suite and the
``benchmarks/run_experiments.py`` report script format it with
:mod:`repro.bench.tables`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.bench.runner import Measurement, run_query
from repro.datagen.queries import QUERIES, query_keywords
from repro.index.storage import Database
from repro.prxml.stats import document_stats

ALGORITHMS = ("prstack", "eager")


def table2_rows(databases: Mapping[str, Database]
                ) -> List[Tuple[str, int, int, int, int]]:
    """(name, total, #IND, #MUX, #ordinary) per dataset — Table II."""
    rows = []
    for name, database in databases.items():
        stats = document_stats(database.document)
        rows.append((name, stats.total_nodes, stats.ind_nodes,
                     stats.mux_nodes, stats.ordinary_nodes))
    return rows


def table3_rows() -> List[Tuple[str, str]]:
    """(query id, keywords) — Table III."""
    return [(query_id, ", ".join(keywords))
            for query_id, keywords in QUERIES.items()]


def vary_query(database: Database, query_ids: Sequence[str], k: int = 10,
               repeats: int = 3
               ) -> Dict[str, Dict[str, Measurement]]:
    """Figure 4: one measurement per (query, algorithm) at fixed ``k``."""
    results: Dict[str, Dict[str, Measurement]] = {}
    for query_id in query_ids:
        keywords = query_keywords(query_id)
        results[query_id] = {
            algorithm: run_query(database, keywords, k, algorithm, repeats)
            for algorithm in ALGORITHMS
        }
    return results


def vary_k(database: Database, query_ids: Sequence[str],
           k_values: Iterable[int] = (10, 20, 30, 40),
           repeats: int = 3
           ) -> Dict[str, Dict[int, Dict[str, Measurement]]]:
    """Figure 5: measurements across ``k`` for selected queries."""
    results: Dict[str, Dict[int, Dict[str, Measurement]]] = {}
    for query_id in query_ids:
        keywords = query_keywords(query_id)
        results[query_id] = {
            k: {algorithm: run_query(database, keywords, k, algorithm,
                                     repeats)
                for algorithm in ALGORITHMS}
            for k in k_values
        }
    return results


def vary_size(databases: Mapping[object, Database],
              query_ids: Sequence[str], k: int = 10, repeats: int = 3
              ) -> Dict[str, Dict[object, Dict[str, Measurement]]]:
    """Figure 6: measurements across document sizes for selected queries.

    ``databases`` maps a size label (e.g. the XMark scale) to the
    database of that size.
    """
    results: Dict[str, Dict[object, Dict[str, Measurement]]] = {}
    for query_id in query_ids:
        keywords = query_keywords(query_id)
        results[query_id] = {
            label: {algorithm: run_query(database, keywords, k, algorithm,
                                         repeats)
                    for algorithm in ALGORITHMS}
            for label, database in databases.items()
        }
    return results
