"""Corpus scatter-gather benchmark: speedup, prune rates, identity.

Builds a sharded corpus from many p-documents, then runs one sampled
keyword workload three ways:

* **baseline** — single-document brute force: plain
  :func:`topk_search` over the whole corpus concatenated under one
  synthetic root (no shards, no bounds — the correctness oracle).
* **serial** — :meth:`CorpusService.search` visiting shards one by
  one in bound order, so the k-th-probability prune condition gets
  its best shot (``shards_pruned`` counts how often it fired).
* **thread** — the same search scattered across a thread pool and
  merged; ``scatter_gather_speedup`` is serial wall time over thread
  wall time.

Every corpus answer list — serial, thread, and one process-executor
probe per query — must be bit-identical to the baseline's (after
dropping the synthetic root, the only candidate concatenation adds).
``benchmarks/run_corpus_benchmark.py`` writes the report to
``BENCH_corpus.json``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.core.api import topk_search
from repro.corpus import CorpusService, build_corpus, concat_documents
from repro.datagen.workload import WorkloadSpec, sample_workload
from repro.index.storage import Database
from repro.obs.metrics import MetricsCollector, Stopwatch
from repro.prxml.model import PDocument

#: Version tag of the emitted report.
CORPUS_SCHEMA_ID = "repro.bench/corpus-v1"

_LATENCY_METRIC = "bench.corpus"


def oracle_signature(database: Database, keywords: Sequence[str],
                     k: int) -> List[Tuple[str, float]]:
    """The brute-force answer over the concatenated corpus.

    Searches with ``k + 1`` and drops codes shorter than two
    components — the synthetic concatenation root, which the corpus
    merge filters the same way — then truncates back to ``k``.
    """
    outcome = topk_search(database, list(keywords), k + 1)
    rows = [(str(result.code), result.probability)
            for result in outcome.results
            if len(result.code.positions) >= 2]
    return rows[:k]


def corpus_signature(outcome) -> List[Tuple[str, float]]:
    return [(str(result.code), result.probability)
            for result in outcome.results]


def run_corpus_benchmark(documents: Sequence[Tuple[str, PDocument]],
                         directory: str,
                         shards: int = 4,
                         strategy: str = "hash",
                         distinct_queries: int = 10,
                         k: int = 5,
                         workers: int = 4,
                         seed: int = 673) -> Dict[str, object]:
    """One full corpus measurement; returns the JSON-ready report."""
    rng = random.Random(seed)

    build_watch = Stopwatch().start()
    manifest = build_corpus(documents, directory, shards=shards,
                            strategy=strategy)
    build_ms = build_watch.elapsed * 1000.0

    oracle = Database.from_document(concat_documents(documents))

    # Two workload slices: *common* queries (mid-frequency terms,
    # full k) measure scatter-gather throughput; *selective* queries
    # (rare term pairs, k=1) are the regime where a shard's bound can
    # fall below the k-th probability, so the prune condition
    # demonstrably fires — with answers still bit-identical.
    common_spec = WorkloadSpec(queries=distinct_queries,
                               terms_per_query=2,
                               min_frequency=5, max_frequency=400)
    selective_spec = WorkloadSpec(queries=distinct_queries,
                                  terms_per_query=2,
                                  min_frequency=2, max_frequency=80)
    workload: List[Tuple[List[str], int, str]] = \
        [(list(query), k, "common")
         for query in sample_workload(oracle.index, common_spec,
                                      rng=rng)] + \
        [(list(query), 1, "selective")
         for query in sample_workload(oracle.index, selective_spec,
                                      rng=rng)]

    service = CorpusService(directory)
    latencies = MetricsCollector()

    report: Dict[str, object] = {
        "schema": CORPUS_SCHEMA_ID,
        "workload": {
            "distinct_queries": len(workload),
            "common_queries": distinct_queries,
            "selective_queries": distinct_queries,
            "k": k,
            "seed": seed,
        },
        "corpus": {
            "shards": manifest.shard_count,
            "strategy": manifest.strategy,
            "documents": len(manifest.documents),
            "nodes": sum(doc.nodes for doc in manifest.documents),
            "build_ms": round(build_ms, 3),
        },
    }

    oracle_rows = {}
    identical = True

    # Baseline: brute force over the concatenation, once per query.
    baseline_watch = Stopwatch().start()
    for index, (keywords, query_k, _) in enumerate(workload):
        watch = Stopwatch().start()
        oracle_rows[index] = oracle_signature(oracle, keywords,
                                              query_k)
        latencies.observe(f"{_LATENCY_METRIC}.baseline",
                          watch.elapsed * 1000.0)
    baseline_ms = baseline_watch.elapsed * 1000.0
    report["baseline"] = {
        "total_ms": round(baseline_ms, 3),
        "latency_ms": _quantiles(latencies,
                                 f"{_LATENCY_METRIC}.baseline"),
    }

    executors: Dict[str, Dict[str, object]] = {}
    totals: Dict[str, float] = {}
    for executor in ("serial", "thread"):
        counts = {"searched": 0, "pruned": 0, "no_match": 0,
                  "failed": 0}
        selective_pruned = 0
        metric = f"{_LATENCY_METRIC}.{executor}"
        phase_watch = Stopwatch().start()
        for index, (keywords, query_k, slice_name) \
                in enumerate(workload):
            watch = Stopwatch().start()
            outcome = service.search(keywords, k=query_k,
                                     executor=executor,
                                     workers=workers)
            latencies.observe(metric, watch.elapsed * 1000.0)
            stats = outcome.stats["corpus"]
            for name in counts:
                counts[name] += stats[name]
            if slice_name == "selective":
                selective_pruned += stats["pruned"]
            if corpus_signature(outcome) != oracle_rows[index]:
                identical = False
        total_ms = phase_watch.elapsed * 1000.0
        totals[executor] = total_ms
        visits = len(workload) * manifest.shard_count
        executors[executor] = {
            "total_ms": round(total_ms, 3),
            "latency_ms": _quantiles(latencies, metric),
            "speedup_vs_baseline": _ratio(baseline_ms, total_ms),
            "workers": 1 if executor == "serial" else workers,
            "shards_searched": counts["searched"],
            "shards_pruned": counts["pruned"],
            "shards_pruned_selective": selective_pruned,
            "shards_no_match": counts["no_match"],
            "shards_failed": counts["failed"],
            "shard_visits": visits,
            "prune_rate": _ratio(counts["pruned"], visits),
            "skip_rate": _ratio(counts["pruned"] + counts["no_match"],
                                visits),
        }
    report["executors"] = executors
    report["scatter_gather_speedup"] = _ratio(totals["serial"],
                                              totals["thread"])

    # One process-executor probe per query: identity only (a pool
    # spawn per search would dominate any timing signal).
    for index, (keywords, query_k, _) in enumerate(workload):
        outcome = service.search(keywords, k=query_k,
                                 executor="process",
                                 workers=min(workers, 2))
        if corpus_signature(outcome) != oracle_rows[index]:
            identical = False

    serial = executors["serial"]
    report["identical_results"] = identical
    # The serial executor's counts are deterministic (pool timing can
    # legitimately search a shard the serial plan would have pruned).
    report["prunes_fired"] = bool(serial["shards_pruned"])
    return report


def _quantiles(latencies: MetricsCollector,
               metric: str) -> Dict[str, float]:
    quantile = lambda q: round(  # noqa: E731
        latencies.percentile(metric, q, kind="histograms"), 3)
    return {"p50": quantile(0.5), "p99": quantile(0.99),
            "max": quantile(1.0)}


def _ratio(numerator: float, denominator: float) -> float:
    return round(numerator / denominator, 3) if denominator else 0.0
