"""HTTP serving benchmark: sustained QPS, tail latency, overload.

Drives a real :class:`repro.serve.ServeServer` (ephemeral port,
in-process background thread) with keep-alive ``http.client``
workers, then measures three things:

* **sustained** — several client threads issue a fixed budget of
  ``POST /search`` requests from a shared-keyword workload; wall
  QPS plus p50/p99/mean/max latency out of the locked
  :meth:`~repro.obs.metrics.MetricsCollector.percentile` accessor
  (the same percentile path ``GET /metrics`` serves — the third
  satellite bugfix of the serving PR, exercised from both callers).
* **overload** — a second server with ``max_inflight=1`` and an
  injected ``slow_query`` fault is hit by more concurrent clients
  than it admits; the contract is 429 (with ``Retry-After``) for the
  overflow and a healthy server afterwards — never a crash or a
  silent drop.
* **identical_results** — one served query per workload entry is
  compared against in-process :func:`topk_search`: codes and
  probabilities must match exactly (JSON floats round-trip via
  shortest ``repr``, so "exactly" means bit-identical).

``benchmarks/run_serve_benchmark.py`` writes the report to
``BENCH_serve.json``.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
from typing import Dict, List, Optional, Tuple

from repro.core.api import topk_search
from repro.datagen.workload import WorkloadSpec, sample_workload
from repro.index.storage import Database
from repro.obs.metrics import MetricsCollector, Stopwatch
from repro.resilience import parse_faults
from repro.serve import ServeConfig, start_in_thread
from repro.service.service import QueryService

#: Version tag of the emitted report.
SERVE_SCHEMA_ID = "repro.bench/serve-v1"

#: Histogram the client-side latencies land in.
_LATENCY_METRIC = "serve.client"


def _signature(outcome) -> List[tuple]:
    return [(str(result.code), result.probability)
            for result in outcome.results]


def _wire_signature(payload: Dict[str, object]) -> List[tuple]:
    return [(result["code"], result["probability"])
            for result in payload["results"]]


def _post(connection: http.client.HTTPConnection, path: str,
          payload: Dict[str, object]) -> Tuple[int, Dict[str, object],
                                               Dict[str, str]]:
    body = json.dumps(payload).encode("utf-8")
    connection.request("POST", path, body=body,
                       headers={"Content-Type": "application/json"})
    response = connection.getresponse()
    raw = response.read()
    headers = {name.lower(): value
               for name, value in response.getheaders()}
    return response.status, json.loads(raw), headers


def run_serve_benchmark(database: Database,
                        distinct_queries: int = 10,
                        requests_per_client: int = 30,
                        clients: int = 4,
                        k: int = 10,
                        overload_clients: int = 8,
                        seed: int = 673) -> Dict[str, object]:
    """One full serving measurement; returns the JSON-ready report."""
    rng = random.Random(seed)
    spec = WorkloadSpec(queries=distinct_queries, terms_per_query=2,
                        min_frequency=20, max_frequency=2000)
    workload = [list(query)
                for query in sample_workload(database.index, spec,
                                             rng=rng)]

    report: Dict[str, object] = {
        "schema": SERVE_SCHEMA_ID,
        "workload": {
            "distinct_queries": len(workload),
            "clients": clients,
            "requests_per_client": requests_per_client,
            "k": k,
            "seed": seed,
        },
    }
    report["sustained"], identical = _sustained_phase(
        database, workload, requests_per_client, clients, k, rng)
    report["identical_results"] = identical
    report["overload"] = _overload_phase(database, workload, k,
                                         overload_clients)
    return report


def _sustained_phase(database: Database, workload: List[List[str]],
                     requests_per_client: int, clients: int, k: int,
                     rng: random.Random
                     ) -> Tuple[Dict[str, object], bool]:
    service = QueryService(database)
    handle = start_in_thread(
        service, ServeConfig(max_inflight=max(clients, 2)))
    latencies = MetricsCollector()
    errors: List[str] = []

    # Per-client shuffled request scripts, fixed up front so the
    # measurement loop does no RNG work.
    scripts = [[workload[rng.randrange(len(workload))]
                for _ in range(requests_per_client)]
               for _ in range(clients)]

    def client_loop(script: List[List[str]]) -> None:
        connection = http.client.HTTPConnection("127.0.0.1",
                                                handle.port, timeout=30)
        try:
            for keywords in script:
                watch = Stopwatch().start()
                status, payload, _ = _post(
                    connection, "/search",
                    {"keywords": keywords, "k": k})
                latencies.observe(_LATENCY_METRIC,
                                  watch.elapsed * 1000.0)
                if status != 200:
                    errors.append(f"{status}: {payload}")
        finally:
            connection.close()

    threads = [threading.Thread(target=client_loop, args=(script,))
               for script in scripts]
    wall = Stopwatch().start()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed_ms = wall.elapsed * 1000.0

    # Bit-identical check over one connection, then drain the server.
    identical = True
    connection = http.client.HTTPConnection("127.0.0.1", handle.port,
                                            timeout=30)
    try:
        for keywords in workload:
            _, payload, _ = _post(connection, "/search",
                                  {"keywords": keywords, "k": k})
            local = topk_search(database, keywords, k)
            if _wire_signature(payload) != _signature(local):
                identical = False
    finally:
        connection.close()
    exit_code = handle.stop()

    total = sum(len(script) for script in scripts)
    quantile = lambda q: round(  # noqa: E731
        latencies.percentile(_LATENCY_METRIC, q, kind="histograms"), 3)
    phase: Dict[str, object] = {
        "requests": total,
        "errors": len(errors),
        "error_samples": errors[:3],
        "elapsed_ms": round(elapsed_ms, 3),
        "qps": round(total / (elapsed_ms / 1000.0), 1)
        if elapsed_ms else None,
        "latency_ms": {"p50": quantile(0.5), "p99": quantile(0.99),
                       "max": quantile(1.0)},
        "server_exit": exit_code,
    }
    return phase, identical


def _overload_phase(database: Database, workload: List[List[str]],
                    k: int, overload_clients: int) -> Dict[str, object]:
    service = QueryService(database)
    handle = start_in_thread(
        service,
        ServeConfig(max_inflight=1),
        faults=parse_faults("slow_query:delay_ms=150"))
    statuses: List[int] = []
    retry_after_seen = 0
    lock = threading.Lock()
    keywords = workload[0] if workload else ["a"]

    def one_request() -> None:
        nonlocal retry_after_seen
        connection = http.client.HTTPConnection("127.0.0.1",
                                                handle.port, timeout=30)
        try:
            status, _, headers = _post(connection, "/search",
                                       {"keywords": keywords, "k": k})
            with lock:
                statuses.append(status)
                if status == 429 and "retry-after" in headers:
                    retry_after_seen += 1
        finally:
            connection.close()

    threads = [threading.Thread(target=one_request)
               for _ in range(overload_clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    # The server must still be healthy after shedding the burst.
    connection = http.client.HTTPConnection("127.0.0.1", handle.port,
                                            timeout=30)
    try:
        connection.request("GET", "/health")
        healthy = connection.getresponse().status == 200
    finally:
        connection.close()
    exit_code = handle.stop()

    return {"max_inflight": 1,
            "clients": overload_clients,
            "accepted_200": statuses.count(200),
            "rejected_429": statuses.count(429),
            "other_statuses": sorted(set(statuses) - {200, 429}),
            "retry_after_seen": retry_after_seen,
            "healthy_after": healthy,
            "server_exit": exit_code}
