"""Measuring queries: response time and peak memory.

The paper reports two per-query quantities (Figures 4-6): response
time in milliseconds (seconds for DBLP) and memory usage in MB.  We
measure time as the best of ``repeats`` undisturbed runs of the whole
search call, and peak memory with one additional run under
``tracemalloc`` (instrumented runs are slower, so timing and memory are
never taken from the same run).
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Callable, Iterable, Union

from repro.core.api import Algorithm, topk_search
from repro.core.result import SearchOutcome
from repro.index.inverted import InvertedIndex
from repro.index.storage import Database


@dataclass
class Measurement:
    """One measured query execution."""

    response_time_ms: float
    peak_memory_mb: float
    result_count: int
    stats: dict = field(default_factory=dict)

    def as_row(self) -> str:
        """One-line rendering for ad-hoc printing."""
        return (f"{self.response_time_ms:10.2f} ms  "
                f"{self.peak_memory_mb:8.3f} MB  "
                f"results={self.result_count}")


def measure_callable(call: Callable[[], SearchOutcome],
                     repeats: int = 3) -> Measurement:
    """Measure any zero-argument search callable.

    One untimed warmup call runs first: the first allocation burst
    after building a large dataset triggers a full generational GC pass
    over the document's object graph (hundreds of milliseconds on the
    DBLP corpus), which would otherwise be misattributed to whichever
    query happens to run first.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    call()
    best = float("inf")
    outcome = None
    for _ in range(repeats):
        started = time.perf_counter()
        outcome = call()
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)

    tracemalloc.start()
    try:
        call()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    return Measurement(
        response_time_ms=best * 1000.0,
        peak_memory_mb=peak / (1024.0 * 1024.0),
        result_count=len(outcome),
        stats=dict(outcome.stats),
    )


def run_query(database: Union[Database, InvertedIndex],
              keywords: Iterable[str], k: int,
              algorithm: Union[Algorithm, str],
              repeats: int = 3) -> Measurement:
    """Measure one (dataset, query, k, algorithm) cell of a figure."""
    keywords = list(keywords)
    return measure_callable(
        lambda: topk_search(database, keywords, k, algorithm),
        repeats=repeats)
