"""Measuring queries: response time, peak memory, operation counts.

The paper reports two per-query quantities (Figures 4-6): response
time in milliseconds (seconds for DBLP) and memory usage in MB.  We
measure time as the best of ``repeats`` undisturbed runs of the whole
search call, and peak memory with one additional run under
``tracemalloc`` (instrumented runs are slower, so timing and memory are
never taken from the same run).

For the same reason, operation counts come from yet another run: pass
``instrumented_call`` — a variant of the callable wired to a
:class:`repro.obs.MetricsCollector` — and its metrics snapshot is
attached to the measurement as ``stats["metrics"]``.  ``run_query``
builds that variant automatically, so every benchmark record carries
the counters (frames pushed, candidates pruned, entries scanned, ...)
alongside the wall-clock numbers.
"""

from __future__ import annotations

import tracemalloc
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Union

from repro.core.api import Algorithm, topk_search
from repro.core.result import SearchOutcome
from repro.index.inverted import InvertedIndex
from repro.index.storage import Database
from repro.obs.metrics import MetricsCollector, Stopwatch


@dataclass
class Measurement:
    """One measured query execution."""

    response_time_ms: float
    peak_memory_mb: float
    result_count: int
    stats: dict = field(default_factory=dict)

    @property
    def metrics(self) -> dict:
        """The operation-count snapshot, ``{}`` if none was taken."""
        return self.stats.get("metrics", {})

    def as_row(self) -> str:
        """One-line rendering for ad-hoc printing."""
        return (f"{self.response_time_ms:10.2f} ms  "
                f"{self.peak_memory_mb:8.3f} MB  "
                f"results={self.result_count}")


def measure_callable(call: Callable[[], SearchOutcome],
                     repeats: int = 3,
                     instrumented_call: Optional[
                         Callable[[], SearchOutcome]] = None) -> Measurement:
    """Measure any zero-argument search callable.

    One untimed warmup call runs first: the first allocation burst
    after building a large dataset triggers a full generational GC pass
    over the document's object graph (hundreds of milliseconds on the
    DBLP corpus), which would otherwise be misattributed to whichever
    query happens to run first.

    ``instrumented_call``, when given, runs once more after the timed
    and memory runs; its ``stats["metrics"]`` snapshot is copied onto
    the returned measurement so records carry operation counts without
    the collector overhead polluting the timings.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    call()
    best = float("inf")
    outcome = None
    for _ in range(repeats):
        with Stopwatch() as watch:
            outcome = call()
        best = min(best, watch.elapsed)

    tracemalloc.start()
    try:
        call()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    stats = dict(outcome.stats)
    if instrumented_call is not None:
        metrics = instrumented_call().stats.get("metrics")
        if metrics:
            stats["metrics"] = metrics

    return Measurement(
        response_time_ms=best * 1000.0,
        peak_memory_mb=peak / (1024.0 * 1024.0),
        result_count=len(outcome),
        stats=stats,
    )


def run_query(database: Union[Database, InvertedIndex],
              keywords: Iterable[str], k: int,
              algorithm: Union[Algorithm, str],
              repeats: int = 3,
              collect_metrics: bool = True) -> Measurement:
    """Measure one (dataset, query, k, algorithm) cell of a figure."""
    keywords = list(keywords)
    instrumented = None
    if collect_metrics:
        def instrumented() -> SearchOutcome:
            return topk_search(database, keywords, k, algorithm,
                               collector=MetricsCollector())
    return measure_callable(
        lambda: topk_search(database, keywords, k, algorithm),
        repeats=repeats,
        instrumented_call=instrumented)
