"""Hedged-scatter benchmark: tail latency and availability under
replica faults (``BENCH_chaos.json``).

Replica slowness is *routed around*: after one slow visit the
selector's EWMA steers every later query to the healthy replica, so
in steady state a slow replica barely shows in the percentiles.  The
regime hedging exists to cover is the **cold tail** — the visits that
land on the straggler *before* routing has learned (first contact,
fresh processes, post-deploy cache wipes).  The benchmark therefore
measures four passes over one seeded workload against a replicated
corpus, every answer checked bit-identical to a clean serial oracle:

``cold_unhedged``
    A fresh :class:`~repro.corpus.CorpusService` per query (cold
    router), every primary (``r0``) visit straggling ``slow_ms``.
    Each query eats the full straggle: this is the tail without
    hedging.
``cold_hedged``
    Identical, plus a fixed ``hedge_ms`` hedge trigger.  The hedge
    races the healthy replica, so the tail collapses from ``slow_ms``
    to roughly ``hedge_ms`` — ``p99_speedup`` is the ratio of the two
    passes' p99s, the acceptance number.
``steady_hedged``
    One service across the whole workload (warm router), hedge on.
    Routing learns from the hedged-over stragglers
    (``record_straggler``), so hedge fires decay after the first
    queries — reported as ``hedge.fired`` vs the worst case.
``replica_loss``
    One service, every ``r0`` visit *fails* (``replica_down``), no
    hedge.  Availability must be total: every query answered,
    zero PARTIAL, all answers bit-identical — the replicas-as-
    perfect-substitutes property under the harshest routing input.

``benchmarks/run_chaos_benchmark.py`` writes the report.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.corpus import (CorpusService, HedgePolicy, build_corpus,
                          concat_documents)
from repro.datagen.workload import WorkloadSpec, sample_workload
from repro.index.storage import Database
from repro.obs.metrics import MetricsCollector, Stopwatch
from repro.prxml.model import PDocument
from repro.resilience import Fault, FaultInjector

#: Version tag of the emitted report.
CHAOS_BENCH_SCHEMA_ID = "repro.bench/chaos-v1"

_METRIC = "bench.chaos"


def _signature(outcome) -> List[Tuple[str, float]]:
    return [(str(result.code), result.probability)
            for result in outcome.results]


def _quantiles(latencies: MetricsCollector,
               metric: str) -> Dict[str, float]:
    quantile = lambda q: round(  # noqa: E731
        latencies.percentile(metric, q, kind="histograms"), 3)
    return {"p50": quantile(0.5), "p99": quantile(0.99),
            "max": quantile(1.0)}


def _ratio(numerator: float, denominator: float) -> float:
    return round(numerator / denominator, 3) if denominator else 0.0


def _slow_faults(seed: int, slow_ms: float) -> FaultInjector:
    return FaultInjector(
        [Fault(kind="slow_replica", target="r0", delay_ms=slow_ms)],
        seed=seed)


def run_chaos_benchmark(documents: Sequence[Tuple[str, PDocument]],
                        directory: str,
                        shards: int = 3,
                        replicas: int = 2,
                        distinct_queries: int = 10,
                        k: int = 5,
                        workers: int = 4,
                        slow_ms: float = 120.0,
                        hedge_ms: float = 25.0,
                        seed: int = 673) -> Dict[str, object]:
    """One full hedged-scatter measurement; returns the JSON report."""
    import random
    rng = random.Random(seed)
    manifest = build_corpus(documents, directory, shards=shards,
                            replicas=replicas)
    index_db = Database.from_document(concat_documents(documents))
    spec = WorkloadSpec(queries=distinct_queries, terms_per_query=2,
                        min_frequency=2, max_frequency=800)
    workload = [list(query)
                for query in sample_workload(index_db.index, spec,
                                             rng=rng)]

    oracle_service = CorpusService(directory)
    oracle = [_signature(oracle_service.search(query, k=k))
              for query in workload]

    latencies = MetricsCollector()
    identical = True
    report: Dict[str, object] = {
        "schema": CHAOS_BENCH_SCHEMA_ID,
        "workload": {"distinct_queries": len(workload), "k": k,
                     "seed": seed},
        "corpus": {"shards": manifest.shard_count,
                   "replicas": manifest.replicas,
                   "documents": len(manifest.documents),
                   "nodes": sum(doc.nodes
                                for doc in manifest.documents)},
        "faults": {"slow_ms": slow_ms, "hedge_ms": hedge_ms},
    }

    # -- cold-router passes: the tail hedging exists to cover --------
    for name, hedge in (("cold_unhedged", None),
                        ("cold_hedged", HedgePolicy(hedge_ms))):
        metric = f"{_METRIC}.{name}"
        fired = won = 0
        for index, query in enumerate(workload):
            collector = MetricsCollector()
            service = CorpusService(
                directory, collector=collector,
                faults=_slow_faults(seed, slow_ms), hedge=hedge,
                executor="thread")
            watch = Stopwatch().start()
            outcome = service.search(query, k=k, workers=workers)
            latencies.observe(metric, watch.elapsed * 1000.0)
            if _signature(outcome) != oracle[index]:
                identical = False
            fired += int(collector.counter("corpus.hedge.fired"))
            won += int(collector.counter("corpus.hedge.won"))
        block: Dict[str, object] = {
            "latency_ms": _quantiles(latencies, metric)}
        if hedge is not None:
            block["hedge"] = {"fired": fired, "won": won,
                              "fire_rate": _ratio(fired,
                                                  len(workload))}
        report[name] = block

    cold = report["cold_unhedged"]["latency_ms"]  # type: ignore
    hedged = report["cold_hedged"]["latency_ms"]  # type: ignore
    report["p99_speedup"] = _ratio(cold["p99"], hedged["p99"])

    # -- steady state: one warm router learns around the straggler ---
    metric = f"{_METRIC}.steady_hedged"
    collector = MetricsCollector()
    service = CorpusService(directory, collector=collector,
                            faults=_slow_faults(seed, slow_ms),
                            hedge=HedgePolicy(hedge_ms),
                            executor="thread")
    for index, query in enumerate(workload):
        watch = Stopwatch().start()
        outcome = service.search(query, k=k, workers=workers)
        latencies.observe(metric, watch.elapsed * 1000.0)
        if _signature(outcome) != oracle[index]:
            identical = False
    steady_fired = int(collector.counter("corpus.hedge.fired"))
    worst_case = len(workload) * manifest.shard_count
    report["steady_hedged"] = {
        "latency_ms": _quantiles(latencies, metric),
        "hedge": {"fired": steady_fired,
                  "worst_case": worst_case,
                  # < 1.0 proves record_straggler taught the router.
                  "fire_rate": _ratio(steady_fired, worst_case)},
    }

    # -- availability: every primary dead, zero PARTIAL allowed ------
    collector = MetricsCollector()
    service = CorpusService(
        directory, collector=collector,
        faults=FaultInjector(
            [Fault(kind="replica_down", target="r0",
                   message="bench: primary replica down")],
            seed=seed),
        executor="thread")
    answered = partials = failovers = 0
    for index, query in enumerate(workload):
        outcome = service.search(query, k=k, workers=workers)
        answered += 1
        if outcome.partial:
            partials += 1
        if _signature(outcome) != oracle[index]:
            identical = False
        failovers += int(outcome.stats["corpus"].get("failovers", 0))
    report["replica_loss"] = {
        "queries": len(workload),
        "answered": answered,
        "partial": partials,
        "failovers": failovers,
        "available": partials == 0 and answered == len(workload),
    }

    report["identical_results"] = identical
    report["ok"] = bool(
        identical
        and report["replica_loss"]["available"]  # type: ignore
        and report["p99_speedup"] > 1.0)
    return report
