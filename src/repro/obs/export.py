"""Merged-report construction and the Prometheus text exporter.

PR 3's batch service runs queries in *other processes*, and PR 1's
report schema only ever described one collector.  This module closes
that gap from the export side:

* :func:`build_report_v2` assembles a ``repro.metrics/v2`` document —
  the v1 shape (so every v1 consumer keeps working field-for-field)
  plus three optional blocks: ``spans`` (the exported trace tree),
  ``workers`` (how many process-worker snapshots were merged into the
  ``metrics`` block, by pid), and ``resilience`` (the batch outcome's
  retry/breaker/fault stats).  The ``metrics`` block of a v2 report is
  *merged*: coordinator + every worker, via
  :meth:`repro.obs.metrics.MetricsCollector.merge_snapshot`.
* :func:`render_prometheus` turns any metrics snapshot into Prometheus
  text exposition format (version 0.0.4) — the format the ROADMAP's
  async ``/metrics`` endpoint will serve verbatim.  Counters become
  ``counter`` samples; histogram and timer summaries become a
  ``_count`` / ``_sum`` / ``_min`` / ``_max`` / ``_mean`` gauge family.
  :func:`parse_prometheus` reads that text back (used by the
  round-trip tests and the CI smoke job).

Schema validation for both report versions lives in
:mod:`repro.obs.report` (:func:`~repro.obs.report.validate_report`
accepts v1 and v2); this module only *builds* and *renders*.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.exceptions import ReproError
from repro.obs.report import SCHEMA_ID_V2, build_report

#: Metric name prefix on every exported Prometheus sample.
PROMETHEUS_PREFIX = "repro"

#: Summary fields exported per histogram/timer, in exposition order.
_SUMMARY_FIELDS = ("count", "sum", "min", "max", "mean")


class ExportError(ReproError):
    """A metrics export could not be rendered or parsed."""


def build_report_v2(keywords: List[str], k: int, algorithm: str,
                    semantics: str, outcome, elapsed_ms: float,
                    spans: Optional[List[Dict[str, object]]] = None,
                    workers: Optional[Dict[str, object]] = None,
                    resilience: Optional[Dict[str, object]] = None,
                    ) -> Dict[str, object]:
    """Assemble a ``repro.metrics/v2`` report.

    Arguments mirror :func:`repro.obs.report.build_report` (the v1
    builder this delegates to); the extra blocks are attached only
    when provided, so an un-traced single-process run produces a v2
    report that differs from v1 in nothing but the schema tag.

    ``workers`` is the merge provenance block — see
    :func:`workers_block` for the canonical shape.
    """
    report = build_report(keywords, k, algorithm, semantics, outcome,
                          elapsed_ms)
    report["schema"] = SCHEMA_ID_V2
    if spans is not None:
        report["spans"] = spans
    if workers is not None:
        report["workers"] = workers
    if resilience is not None:
        report["resilience"] = resilience
    return report


def workers_block(pids: List[int],
                  merged_snapshots: int) -> Dict[str, object]:
    """The canonical ``workers`` block of a v2 report.

    ``pids`` lists the distinct process-worker pids whose metric
    snapshots were merged into the report's ``metrics`` block;
    ``merged_snapshots`` counts the merges (one per chunk, so it can
    exceed ``len(pids)`` when a worker served several chunks).
    """
    return {"count": len(set(pids)),
            "pids": sorted(set(pids)),
            "merged_snapshots": merged_snapshots}


# -- Prometheus text exposition ----------------------------------------------


def _sample_name(name: str, prefix: str = PROMETHEUS_PREFIX) -> str:
    """``index.match_entries.hits`` -> ``repro_index_match_entries_hits``.

    Prometheus metric names admit ``[a-zA-Z_:][a-zA-Z0-9_:]*``; every
    other character becomes ``_``.
    """
    cleaned = "".join(char if char.isalnum() or char == "_" else "_"
                      for char in name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return f"{prefix}_{cleaned}" if prefix else cleaned


def _format_value(value: float) -> str:
    """Render a sample value (integers without a trailing ``.0``)."""
    if isinstance(value, bool):  # bool is an int; never a valid sample
        return "1" if value else "0"
    if isinstance(value, int) or (isinstance(value, float)
                                  and value.is_integer()):
        return str(int(value))
    return repr(float(value))


def prometheus_lines(metrics: Dict[str, Dict],
                     prefix: str = PROMETHEUS_PREFIX) -> List[str]:
    """Exposition lines for one metrics snapshot (no trailing newline).

    The snapshot is the ``metrics`` block shape produced by
    :meth:`repro.obs.metrics.MetricsCollector.snapshot`: ``counters``
    map to ``counter`` samples, ``histograms`` and ``timers`` each to a
    five-gauge summary family (timer values are milliseconds, as in
    the JSON report).  An empty snapshot yields no lines.
    """
    if not isinstance(metrics, dict):
        raise ExportError(f"metrics snapshot must be an object, "
                          f"got {type(metrics).__name__}")
    lines: List[str] = []
    counters = metrics.get("counters", {})
    for name in sorted(counters):
        sample = _sample_name(name, prefix)
        lines.append(f"# TYPE {sample} counter")
        lines.append(f"{sample} {_format_value(counters[name])}")
    for block, unit in (("histograms", ""), ("timers", "_ms")):
        summaries = metrics.get(block, {})
        for name in sorted(summaries):
            summary = summaries[name]
            base = _sample_name(name, prefix) + unit
            for field in _SUMMARY_FIELDS:
                sample = f"{base}_{field}"
                lines.append(f"# TYPE {sample} gauge")
                lines.append(
                    f"{sample} {_format_value(summary.get(field, 0))}")
    return lines


def render_prometheus(metrics: Dict[str, Dict],
                      prefix: str = PROMETHEUS_PREFIX) -> str:
    """The full exposition document (trailing newline included)."""
    lines = prometheus_lines(metrics, prefix)
    return "\n".join(lines) + "\n" if lines else ""


def parse_prometheus(text: str) -> Dict[str, float]:
    """Read exposition text back into a flat ``{sample: value}`` map.

    Supports the subset this module emits (no labels, no timestamps,
    ``# TYPE`` / ``# HELP`` comments ignored) — enough for the
    round-trip contract test and the CI smoke check.  Raises
    :class:`ExportError` on a malformed sample line.
    """
    samples: Dict[str, float] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 2:
            raise ExportError(
                f"exposition line {number} is malformed: {line!r}")
        name, raw = parts
        try:
            value = float(raw)
        except ValueError:
            raise ExportError(
                f"exposition line {number} has a non-numeric value: "
                f"{line!r}") from None
        if name in samples:
            raise ExportError(
                f"exposition line {number} repeats sample {name!r}")
        samples[name] = value
    return samples
