"""Merged-report construction and the Prometheus text exporter.

PR 3's batch service runs queries in *other processes*, and PR 1's
report schema only ever described one collector.  This module closes
that gap from the export side:

* :func:`build_report_v2` assembles a ``repro.metrics/v2`` document —
  the v1 shape (so every v1 consumer keeps working field-for-field)
  plus three optional blocks: ``spans`` (the exported trace tree),
  ``workers`` (how many process-worker snapshots were merged into the
  ``metrics`` block, by pid), and ``resilience`` (the batch outcome's
  retry/breaker/fault stats).  The ``metrics`` block of a v2 report is
  *merged*: coordinator + every worker, via
  :meth:`repro.obs.metrics.MetricsCollector.merge_snapshot`.
* :func:`render_prometheus` turns any metrics snapshot into Prometheus
  text exposition format (version 0.0.4) — the format the ROADMAP's
  async ``/metrics`` endpoint will serve verbatim.  Counters become
  ``counter`` samples; histogram and timer summaries become a
  ``_count`` / ``_sum`` / ``_min`` / ``_max`` / ``_mean`` gauge family.
  :func:`parse_prometheus` reads that text back (used by the
  round-trip tests and the CI smoke job).

Schema validation for both report versions lives in
:mod:`repro.obs.report` (:func:`~repro.obs.report.validate_report`
accepts v1 and v2); this module only *builds* and *renders*.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Tuple

from repro.exceptions import ReproError
from repro.obs.report import SCHEMA_ID_V2, build_report

#: Metric name prefix on every exported Prometheus sample.
PROMETHEUS_PREFIX = "repro"

#: Summary fields exported per histogram/timer, in exposition order.
_SUMMARY_FIELDS = ("count", "sum", "min", "max", "mean")


class ExportError(ReproError):
    """A metrics export could not be rendered or parsed."""


def build_report_v2(keywords: List[str], k: int, algorithm: str,
                    semantics: str, outcome, elapsed_ms: float,
                    spans: Optional[List[Dict[str, object]]] = None,
                    workers: Optional[Dict[str, object]] = None,
                    resilience: Optional[Dict[str, object]] = None,
                    ) -> Dict[str, object]:
    """Assemble a ``repro.metrics/v2`` report.

    Arguments mirror :func:`repro.obs.report.build_report` (the v1
    builder this delegates to); the extra blocks are attached only
    when provided, so an un-traced single-process run produces a v2
    report that differs from v1 in nothing but the schema tag.

    ``workers`` is the merge provenance block — see
    :func:`workers_block` for the canonical shape.
    """
    report = build_report(keywords, k, algorithm, semantics, outcome,
                          elapsed_ms)
    report["schema"] = SCHEMA_ID_V2
    if spans is not None:
        report["spans"] = spans
    if workers is not None:
        report["workers"] = workers
    if resilience is not None:
        report["resilience"] = resilience
    return report


def workers_block(pids: List[int],
                  merged_snapshots: int) -> Dict[str, object]:
    """The canonical ``workers`` block of a v2 report.

    ``pids`` lists the distinct process-worker pids whose metric
    snapshots were merged into the report's ``metrics`` block;
    ``merged_snapshots`` counts the merges (one per chunk, so it can
    exceed ``len(pids)`` when a worker served several chunks).
    """
    return {"count": len(set(pids)),
            "pids": sorted(set(pids)),
            "merged_snapshots": merged_snapshots}


# -- Prometheus text exposition ----------------------------------------------


def _sample_name(name: str, prefix: str = PROMETHEUS_PREFIX) -> str:
    """``index.match_entries.hits`` -> ``repro_index_match_entries_hits``.

    Prometheus metric names admit ``[a-zA-Z_:][a-zA-Z0-9_:]*``; every
    other character becomes ``_``.
    """
    cleaned = "".join(char if char.isalnum() or char == "_" else "_"
                      for char in name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return f"{prefix}_{cleaned}" if prefix else cleaned


def _format_value(value: float) -> str:
    """Render a sample value (integers without a trailing ``.0``).

    Non-finite values use the exposition spellings ``+Inf`` / ``-Inf``
    / ``NaN`` — ``repr(float("inf"))`` is ``'inf'``, which Prometheus
    scrapers reject.
    """
    if isinstance(value, bool):  # bool is an int; never a valid sample
        return "1" if value else "0"
    if isinstance(value, float) and not math.isfinite(value):
        if math.isnan(value):
            return "NaN"
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, int) or (isinstance(value, float)
                                  and value.is_integer()):
        return str(int(value))
    return repr(float(value))


def escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format.

    Backslash, double-quote, and line-feed are the three characters
    the format escapes (``\\\\``, ``\\"``, ``\\n``); everything else
    passes through verbatim.
    """
    return (str(value).replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"))


def format_labels(labels: Mapping[str, object]) -> str:
    """``{a="1",b="x"}`` for a label mapping (sorted by name; ``""`` if empty).

    Label *names* are sanitized like metric names; label *values* are
    escaped with :func:`escape_label_value`.
    """
    if not labels:
        return ""
    parts = []
    for name in sorted(labels):
        clean = _sample_name(str(name), prefix="")
        parts.append(f'{clean}="{escape_label_value(str(labels[name]))}"')
    return "{" + ",".join(parts) + "}"


def format_sample(name: str, value: float,
                  labels: Optional[Mapping[str, object]] = None,
                  prefix: str = PROMETHEUS_PREFIX) -> str:
    """One exposition sample line: ``prefix_name{labels} value``."""
    return (f"{_sample_name(name, prefix)}{format_labels(labels or {})} "
            f"{_format_value(value)}")


def prometheus_lines(metrics: Dict[str, Dict],
                     prefix: str = PROMETHEUS_PREFIX) -> List[str]:
    """Exposition lines for one metrics snapshot (no trailing newline).

    The snapshot is the ``metrics`` block shape produced by
    :meth:`repro.obs.metrics.MetricsCollector.snapshot`: ``counters``
    map to ``counter`` samples, ``histograms`` and ``timers`` each to a
    five-gauge summary family (timer values are milliseconds, as in
    the JSON report).  An empty snapshot yields no lines.
    """
    if not isinstance(metrics, dict):
        raise ExportError(f"metrics snapshot must be an object, "
                          f"got {type(metrics).__name__}")
    lines: List[str] = []
    counters = metrics.get("counters", {})
    for name in sorted(counters):
        sample = _sample_name(name, prefix)
        lines.append(f"# TYPE {sample} counter")
        lines.append(f"{sample} {_format_value(counters[name])}")
    for block, unit in (("histograms", ""), ("timers", "_ms")):
        summaries = metrics.get(block, {})
        for name in sorted(summaries):
            summary = summaries[name]
            base = _sample_name(name, prefix) + unit
            for field in _SUMMARY_FIELDS:
                sample = f"{base}_{field}"
                lines.append(f"# TYPE {sample} gauge")
                lines.append(
                    f"{sample} {_format_value(summary.get(field, 0))}")
    return lines


def render_prometheus(metrics: Dict[str, Dict],
                      prefix: str = PROMETHEUS_PREFIX) -> str:
    """The full exposition document (trailing newline included)."""
    lines = prometheus_lines(metrics, prefix)
    return "\n".join(lines) + "\n" if lines else ""


def _unescape_label_value(raw: str, number: int) -> str:
    """Invert :func:`escape_label_value` (raises on a dangling ``\\``)."""
    out: List[str] = []
    index = 0
    while index < len(raw):
        char = raw[index]
        if char == "\\":
            if index + 1 >= len(raw):
                raise ExportError(f"exposition line {number} has a "
                                  f"dangling escape in a label value")
            nxt = raw[index + 1]
            out.append({"\\": "\\", '"': '"', "n": "\n"}.get(nxt, nxt))
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def _parse_labels(body: str, number: int) -> Dict[str, str]:
    """Parse the inside of a ``{...}`` label block, escape-aware."""
    labels: Dict[str, str] = {}
    index = 0
    while index < len(body):
        eq = body.find("=", index)
        if eq < 0:
            raise ExportError(
                f"exposition line {number} has a malformed label block")
        name = body[index:eq].strip().lstrip(",").strip()
        if not name or eq + 1 >= len(body) or body[eq + 1] != '"':
            raise ExportError(
                f"exposition line {number} has a malformed label block")
        cursor = eq + 2  # first char inside the quoted value
        raw: List[str] = []
        while True:
            if cursor >= len(body):
                raise ExportError(f"exposition line {number} has an "
                                  f"unterminated label value")
            char = body[cursor]
            if char == "\\":
                raw.append(body[cursor:cursor + 2])
                cursor += 2
                continue
            if char == '"':
                break
            raw.append(char)
            cursor += 1
        labels[name] = _unescape_label_value("".join(raw), number)
        index = cursor + 1
    return labels


def _split_sample_line(line: str,
                       number: int) -> Tuple[str, Dict[str, str], str]:
    """``name{labels} value`` -> (name, labels, raw value), escape-aware.

    Lines without a label block keep the historical strict contract:
    exactly two whitespace-separated tokens, no timestamps.
    """
    brace = line.find("{")
    if brace < 0:
        parts = line.split()
        if len(parts) != 2:
            raise ExportError(
                f"exposition line {number} is malformed: {line!r}")
        return parts[0], {}, parts[1]
    name = line[:brace]
    if not name or any(ch.isspace() for ch in name):
        raise ExportError(
            f"exposition line {number} is malformed: {line!r}")
    # Scan for the closing brace, honouring escapes inside quotes so a
    # label value containing '}' or '"' cannot derail the split.
    cursor = brace + 1
    in_quotes = False
    while cursor < len(line):
        char = line[cursor]
        if in_quotes and char == "\\":
            cursor += 2
            continue
        if char == '"':
            in_quotes = not in_quotes
        elif char == "}" and not in_quotes:
            break
        cursor += 1
    if cursor >= len(line):
        raise ExportError(
            f"exposition line {number} has an unterminated label block")
    labels = _parse_labels(line[brace + 1:cursor], number)
    raw = line[cursor + 1:].strip()
    if not raw or any(ch.isspace() for ch in raw):
        raise ExportError(
            f"exposition line {number} is malformed: {line!r}")
    return name, labels, raw


def parse_prometheus(text: str) -> Dict[str, float]:
    """Read exposition text back into a flat ``{sample: value}`` map.

    Supports the subset this module emits (``# TYPE`` / ``# HELP``
    comments ignored, no timestamps).  Labelled samples are keyed by
    their canonical rendering — the metric name plus the sorted,
    re-escaped label block — so ``render_prometheus`` output
    round-trips exactly even when label values contain quotes,
    backslashes, newlines, or spaces.  Non-finite values (``+Inf`` /
    ``-Inf`` / ``NaN``) parse back to the corresponding floats.
    Raises :class:`ExportError` on a malformed sample line.
    """
    samples: Dict[str, float] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, labels, raw = _split_sample_line(line, number)
        try:
            value = float(raw)
        except ValueError:
            raise ExportError(
                f"exposition line {number} has a non-numeric value: "
                f"{line!r}") from None
        key = name + format_labels(labels)
        if key in samples:
            raise ExportError(
                f"exposition line {number} repeats sample {key!r}")
        samples[key] = value
    return samples


def quantile_lines(quantiles: Dict[str, Dict[str, Dict[str, float]]],
                   prefix: str = PROMETHEUS_PREFIX) -> List[str]:
    """Exposition lines for a quantile snapshot (no trailing newline).

    ``quantiles`` is the shape produced by
    :meth:`repro.obs.metrics.MetricsCollector.quantile_snapshot`:
    ``{"histograms": {name: {"0.5": v, ...}}, "timers": {...}}``.
    Each metric becomes one gauge family of ``{quantile="..."}``
    labelled samples; timer values are milliseconds (``_ms`` suffix),
    matching :func:`prometheus_lines`.
    """
    lines: List[str] = []
    for block, unit in (("histograms", ""), ("timers", "_ms")):
        families = quantiles.get(block, {})
        for name in sorted(families):
            base = _sample_name(name, prefix) + unit
            lines.append(f"# TYPE {base} gauge")
            family = families[name]
            for q in sorted(family, key=float):
                lines.append(format_sample(
                    name + unit, family[q], {"quantile": q}, prefix))
    return lines
