"""The metrics JSON report: schema, construction, validation.

``repro search ... --metrics-json PATH`` (and any embedding harness)
emits one report per query.  The shape is versioned by the ``schema``
field and documented in docs/OBSERVABILITY.md; :func:`validate_report`
is the machine-checkable form of that document and is what the CI
smoke job runs against a freshly emitted report.

Top-level shape (``repro.metrics/v1``)::

    {
      "schema": "repro.metrics/v1",
      "query": {"keywords": [...], "k": int,
                "algorithm": str, "semantics": str},
      "elapsed_ms": float,
      "result_count": int,
      "results": [{"code": str, "probability": float, "label": str}],
      "stats": {...},              # per-algorithm counters (free-form)
      "metrics": {"counters": {...}, "histograms": {...},
                  "timers": {...}},
      "trace": [{"seq": int, "offset_ms": float, "name": str, ...}]
    }

``trace`` is present only when the query ran with tracing on.

``repro.metrics/v2`` (built by :func:`repro.obs.export
.build_report_v2`) is the same shape with three optional extra
blocks — ``spans`` (exported span tree, validated by
:func:`repro.obs.spans.validate_spans`), ``workers`` (process-worker
merge provenance) and ``resilience`` (retry/breaker/fault stats) —
and, crucially, a ``metrics`` block that has been *merged* across the
coordinator and every process worker.  :func:`validate_report`
accepts both versions; v1 consumers can read a v2 report by ignoring
the extra blocks.
"""

from __future__ import annotations

from numbers import Number
from typing import Dict, List

from repro.exceptions import ReproError

#: Version tag written into (and required from) every report.
SCHEMA_ID = "repro.metrics/v1"

#: The merged/cross-process report version (see repro.obs.export).
SCHEMA_ID_V2 = "repro.metrics/v2"

#: Every schema version :func:`validate_report` accepts.
KNOWN_SCHEMAS = (SCHEMA_ID, SCHEMA_ID_V2)

#: Keys every report must carry.
REQUIRED_KEYS = ("schema", "query", "elapsed_ms", "result_count",
                 "results", "stats", "metrics")

#: Keys every histogram / timer summary must carry.
SUMMARY_KEYS = ("count", "sum", "min", "max", "mean")


class ReportError(ReproError):
    """A metrics report does not conform to the documented schema."""


def build_report(keywords: List[str], k: int, algorithm: str,
                 semantics: str, outcome,
                 elapsed_ms: float) -> Dict[str, object]:
    """Assemble the ``repro.metrics/v1`` report for one query.

    ``outcome`` is a :class:`repro.core.result.SearchOutcome` (typed
    loosely so this package stays dependency-free below the core).

    ``outcome.stats`` is copied minus the non-JSON members the library
    attaches in-process (the metrics snapshot and the live trace
    recorder become the report's own ``metrics`` / ``trace`` blocks;
    Monte-Carlo ``estimates`` objects are summarised by the results).
    """
    stats = {key: value for key, value in outcome.stats.items()
             if key not in ("metrics", "trace", "estimates")}
    report: Dict[str, object] = {
        "schema": SCHEMA_ID,
        "query": {"keywords": list(keywords), "k": k,
                  "algorithm": str(algorithm), "semantics": str(semantics)},
        "elapsed_ms": round(float(elapsed_ms), 6),
        "result_count": len(outcome),
        "results": [{"code": str(result.code),
                     "probability": result.probability,
                     "label": result.label}
                    for result in outcome.results],
        "stats": stats,
        "metrics": outcome.stats.get("metrics", {}),
    }
    trace = outcome.stats.get("trace")
    if trace is not None:
        report["trace"] = trace.as_dicts()
    return report


def validate_report(report: object) -> Dict[str, object]:
    """Check a parsed report against its declared schema (v1 or v2).

    Returns the report (for chaining) or raises :class:`ReportError`
    naming the first violation.  Deliberately dependency-free below
    the obs package — this is the library's own contract check, also
    run by the CI smoke job.
    """
    if not isinstance(report, dict):
        raise ReportError(f"report must be an object, got "
                          f"{type(report).__name__}")
    for key in REQUIRED_KEYS:
        if key not in report:
            raise ReportError(f"report is missing required key {key!r}")
    if report["schema"] not in KNOWN_SCHEMAS:
        choices = ", ".join(repr(schema) for schema in KNOWN_SCHEMAS)
        raise ReportError(f"unknown schema {report['schema']!r}; "
                          f"expected one of: {choices}")

    query = report["query"]
    if not isinstance(query, dict):
        raise ReportError("query must be an object")
    for key, kind in (("keywords", list), ("k", int),
                      ("algorithm", str), ("semantics", str)):
        if not isinstance(query.get(key), kind):
            raise ReportError(f"query.{key} must be a {kind.__name__}")

    _require_number(report, "elapsed_ms")
    _require_number(report, "result_count")
    results = report["results"]
    if not isinstance(results, list):
        raise ReportError("results must be a list")
    for position, result in enumerate(results):
        if not isinstance(result, dict):
            raise ReportError(f"results[{position}] must be an object")
        if not isinstance(result.get("code"), str):
            raise ReportError(f"results[{position}].code must be a string")
        if not _is_number(result.get("probability")):
            raise ReportError(
                f"results[{position}].probability must be a number")
    if len(results) != report["result_count"]:
        raise ReportError(
            f"result_count {report['result_count']} does not match "
            f"{len(results)} results")

    if not isinstance(report["stats"], dict):
        raise ReportError("stats must be an object")
    _validate_metrics(report["metrics"])

    trace = report.get("trace")
    if trace is not None:
        if not isinstance(trace, list):
            raise ReportError("trace must be a list of events")
        for position, event in enumerate(trace):
            if not isinstance(event, dict) \
                    or not isinstance(event.get("name"), str) \
                    or not _is_number(event.get("offset_ms")):
                raise ReportError(
                    f"trace[{position}] must be an object with a "
                    "'name' string and an 'offset_ms' number")

    if report["schema"] == SCHEMA_ID_V2:
        _validate_v2_blocks(report)
    else:
        for block in ("spans", "workers"):
            if block in report:
                raise ReportError(
                    f"{block!r} is a {SCHEMA_ID_V2} block; a "
                    f"{SCHEMA_ID} report must not carry it")
    return report


def _validate_v2_blocks(report: Dict[str, object]) -> None:
    """The v2-only optional blocks: spans, workers, resilience."""
    spans = report.get("spans")
    if spans is not None:
        from repro.obs.spans import SpanError, validate_spans
        try:
            validate_spans(spans)
        except SpanError as error:
            raise ReportError(f"spans block invalid: {error}") \
                from error
    workers = report.get("workers")
    if workers is not None:
        if not isinstance(workers, dict):
            raise ReportError("workers must be an object")
        if not _is_number(workers.get("count")):
            raise ReportError("workers.count must be a number")
        pids = workers.get("pids", [])
        if not isinstance(pids, list) or not all(
                _is_number(pid) for pid in pids):
            raise ReportError("workers.pids must be a list of numbers")
        if not _is_number(workers.get("merged_snapshots")):
            raise ReportError(
                "workers.merged_snapshots must be a number")
    resilience = report.get("resilience")
    if resilience is not None and not isinstance(resilience, dict):
        raise ReportError("resilience must be an object")


def _validate_metrics(metrics: object) -> None:
    if not isinstance(metrics, dict):
        raise ReportError("metrics must be an object")
    if not metrics:
        return  # an uninstrumented run legitimately reports {}
    for block in ("counters", "histograms", "timers"):
        if block not in metrics:
            raise ReportError(f"metrics is missing the {block!r} block")
    counters = metrics["counters"]
    if not isinstance(counters, dict):
        raise ReportError("metrics.counters must be an object")
    for name, value in counters.items():
        if not _is_number(value):
            raise ReportError(f"counter {name!r} must be a number")
    for block in ("histograms", "timers"):
        summaries = metrics[block]
        if not isinstance(summaries, dict):
            raise ReportError(f"metrics.{block} must be an object")
        for name, summary in summaries.items():
            if not isinstance(summary, dict):
                raise ReportError(
                    f"metrics.{block}[{name!r}] must be an object")
            for key in SUMMARY_KEYS:
                if not _is_number(summary.get(key)):
                    raise ReportError(
                        f"metrics.{block}[{name!r}].{key} must be a "
                        "number")


def _is_number(value: object) -> bool:
    return isinstance(value, Number) and not isinstance(value, bool)


def _require_number(report: Dict[str, object], key: str) -> None:
    if not _is_number(report[key]):
        raise ReportError(f"{key} must be a number")
